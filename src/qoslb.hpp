#pragma once

/// Umbrella header for the stable qoslb API.
///
/// Downstream code (examples, benches, external users) should include only
/// this header; the individual headers below remain available but their
/// layout is an implementation detail and may shift between releases. The
/// curated surface:
///
///   - Engine / EngineConfig / EngineResult  — the one way to run a protocol
///     (synchronous rounds, sequential or sharded-parallel, weighted, async)
///   - Protocol + the registry (make_protocol / protocol_registry)
///   - Instance / State and the generator families
///   - the weighted-user model and the async (DES) fault model
///   - the observability layer (MetricsRegistry, TraceSink, Clock/Stopwatch)
///   - RNG (Xoshiro256, Philox substreams) and small table/CSV helpers

#include "core/engine.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/protocol.hpp"
#include "core/protocols/registry.hpp"
#include "core/rate_model.hpp"
#include "core/satisfaction.hpp"
#include "core/state.hpp"
#include "core/async/async_protocols.hpp"
#include "core/weighted/weighted_generators.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "core/weighted/weighted_state.hpp"
#include "net/generators.hpp"
#include "net/graph.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/faults.hpp"
#include "util/table.hpp"
