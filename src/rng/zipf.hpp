#pragma once

#include <cstdint>
#include <vector>

#include "rng/distributions.hpp"

namespace qoslb {

/// Zipf(s, N) sampler over ranks {0, ..., N-1} with exponent s ≥ 0 using a
/// precomputed CDF (binary-search inversion). Zipf-distributed QoS demands
/// model the classic skew of client bitrates / flow sizes.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  /// Probability mass of rank `k`.
  double pmf(std::size_t k) const;

  template <typename Rng>
  std::size_t operator()(Rng& rng) const {
    const double u = uniform_real(rng);
    // First index with cdf >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  double exponent_;
  std::vector<double> cdf_;
};

}  // namespace qoslb
