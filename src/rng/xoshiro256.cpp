#include "rng/xoshiro256.hpp"

#include "rng/splitmix64.hpp"

namespace qoslb {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 expander(seed);
  for (auto& word : s_) word = expander();
  // The all-zero state is a fixed point; SplitMix64 cannot emit four zero
  // words in a row for any seed, so no further handling is required, but we
  // keep a defensive perturbation for safety.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
      0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::split(std::uint64_t stream) const {
  Xoshiro256 out = *this;
  for (std::uint64_t i = 0; i < stream; ++i) out.jump();
  return out;
}

}  // namespace qoslb
