#include "rng/zipf.hpp"

#include <cmath>

#include "util/check.hpp"

namespace qoslb {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  QOSLB_REQUIRE(n > 0, "ZipfSampler needs at least one rank");
  QOSLB_REQUIRE(exponent >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

double ZipfSampler::pmf(std::size_t k) const {
  QOSLB_REQUIRE(k < cdf_.size(), "rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace qoslb
