#pragma once

#include <cstdint>

namespace qoslb {

/// Type-erased UniformRandomBitGenerator facade over any 64-bit engine.
///
/// The sharded round path (Protocol::step_range) must run over *either* the
/// caller's sequential Xoshiro256 (single-shard compatibility path — bit
/// identical to the classic step()) or a per-shard counter-based
/// PhiloxEngine substream (parallel path). Virtual member templates don't
/// exist, so the hook takes this thin facade instead: one indirect call per
/// draw, no allocation, no ownership. The referenced engine must outlive
/// the facade.
class AnyRng {
 public:
  using result_type = std::uint64_t;

  template <typename Rng>
  explicit AnyRng(Rng& rng)
      : state_(&rng),
        next_([](void* state) { return (*static_cast<Rng*>(state))(); }) {}

  std::uint64_t operator()() { return next_(state_); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

 private:
  void* state_;
  std::uint64_t (*next_)(void*);
};

}  // namespace qoslb
