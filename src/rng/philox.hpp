#pragma once

#include <array>
#include <cstdint>

namespace qoslb {

/// Philox4x32-10 counter-based generator (Salmon et al., SC'11).
/// Counter-based RNGs give O(1) random access into the stream: agent `k` in
/// replication `r` can draw value `i` without any sequential state, which
/// makes massively parallel simulations bit-reproducible regardless of the
/// execution order of agents across threads.
class Philox4x32 {
 public:
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  /// Encrypts `counter` under `key` with 10 rounds.
  static counter_type block(counter_type counter, key_type key);

  /// Convenience: 64-bit output for (key, index); consumes the block's first
  /// two lanes.
  static std::uint64_t at(std::uint64_t key, std::uint64_t index);
};

/// Sequential engine facade over Philox: UniformRandomBitGenerator-compliant,
/// with the (stream, position) pair explicit so streams never overlap.
class PhiloxEngine {
 public:
  using result_type = std::uint64_t;

  explicit PhiloxEngine(std::uint64_t key, std::uint64_t start_index = 0)
      : key_(key), index_(start_index) {}

  std::uint64_t operator()() { return Philox4x32::at(key_, index_++); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t key() const { return key_; }
  std::uint64_t position() const { return index_; }
  void seek(std::uint64_t index) { index_ = index; }

 private:
  std::uint64_t key_;
  std::uint64_t index_;
};

}  // namespace qoslb
