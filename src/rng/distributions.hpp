#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace qoslb {

/// Distribution helpers over any UniformRandomBitGenerator with 64-bit output.
/// Implemented by hand (Lemire bounded integers, inversion methods) so that
/// results are identical across standard libraries and platforms — std::
/// distributions are not reproducible across implementations.

/// Uniform integer in [0, bound) via Lemire's multiply-shift rejection method.
template <typename Rng>
std::uint64_t uniform_u64_below(Rng& rng, std::uint64_t bound);

/// Uniform integer in [lo, hi] inclusive.
template <typename Rng>
std::int64_t uniform_int(Rng& rng, std::int64_t lo, std::int64_t hi);

/// Uniform double in [0, 1) with 53 bits of precision.
template <typename Rng>
double uniform_real(Rng& rng);

/// Uniform double in [lo, hi).
template <typename Rng>
double uniform_real(Rng& rng, double lo, double hi);

/// Bernoulli trial with success probability p (clamped to [0,1]).
template <typename Rng>
bool bernoulli(Rng& rng, double p);

/// Geometric: number of failures before the first success, p in (0,1].
template <typename Rng>
std::uint64_t geometric(Rng& rng, double p);

/// Exponential with rate lambda > 0.
template <typename Rng>
double exponential(Rng& rng, double lambda);

/// Poisson via inversion (suitable for small/moderate mean).
template <typename Rng>
std::uint64_t poisson(Rng& rng, double mean);

/// Samples an index proportional to non-negative weights (linear scan; the
/// callers' weight vectors are small). Throws if all weights are zero.
template <typename Rng>
std::size_t discrete(Rng& rng, std::span<const double> weights);

/// In-place Fisher–Yates shuffle.
template <typename Rng, typename T>
void shuffle(Rng& rng, std::vector<T>& items);

/// Samples k distinct indices from [0, n) (Floyd's algorithm), ascending order
/// not guaranteed.
template <typename Rng>
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k);

// ---- implementation ----

template <typename Rng>
std::uint64_t uniform_u64_below(Rng& rng, std::uint64_t bound) {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  if (bound == 0) return 0;
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

template <typename Rng>
std::int64_t uniform_int(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64_below(rng, span));
}

template <typename Rng>
double uniform_real(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

template <typename Rng>
double uniform_real(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * uniform_real(rng);
}

template <typename Rng>
bool bernoulli(Rng& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real(rng) < p;
}

template <typename Rng>
std::uint64_t geometric(Rng& rng, double p) {
  std::uint64_t failures = 0;
  while (!bernoulli(rng, p)) {
    ++failures;
    if (failures > (1ULL << 32)) break;  // guard against p ~ 0
  }
  return failures;
}

template <typename Rng>
double exponential(Rng& rng, double lambda) {
  // -log(1-U)/lambda; 1-U in (0,1] so the log argument never hits zero.
  double u = uniform_real(rng);
  return -std::log(1.0 - u) / lambda;
}

template <typename Rng>
std::uint64_t poisson(Rng& rng, double mean) {
  // Knuth inversion: product of uniforms until below exp(-mean).
  const double limit = std::exp(-mean);
  double product = 1.0;
  std::uint64_t count = 0;
  while (true) {
    product *= uniform_real(rng);
    if (product <= limit) return count;
    ++count;
  }
}

template <typename Rng>
std::size_t discrete(Rng& rng, std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("discrete(): all weights zero");
  double point = uniform_real(rng) * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallback
}

template <typename Rng, typename T>
void shuffle(Rng& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = uniform_u64_below(rng, i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

template <typename Rng>
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k) {
  // Floyd's algorithm: k iterations, O(k) extra space.
  if (k > n) k = n;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform_u64_below(rng, j + 1);
    bool present = false;
    for (const std::size_t v : out)
      if (v == t) { present = true; break; }
    out.push_back(present ? j : t);
  }
  return out;
}

}  // namespace qoslb
