#pragma once

#include <array>
#include <cstdint>

namespace qoslb {

/// xoshiro256++ 1.0 (Blackman & Vigna). The workhorse generator of the
/// simulator: fast, 256-bit state, UniformRandomBitGenerator-compliant, with
/// jump() for 2^128 non-overlapping subsequences.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via SplitMix64 expansion (never produces the all-zero state).
  explicit Xoshiro256(std::uint64_t seed = 0xD1B54A32D192ED03ULL);

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Advances the state by 2^128 steps.
  void jump();

  /// Returns a generator jumped `stream` times ahead of *this.
  Xoshiro256 split(std::uint64_t stream) const;

  std::array<std::uint64_t, 4> state() const { return s_; }

  friend bool operator==(const Xoshiro256& a, const Xoshiro256& b) {
    return a.s_ == b.s_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace qoslb
