#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"

namespace qoslb {

/// Per-(seed, round, user) counter-based substreams for synchronous rounds
/// (docs/performance.md). Each user of each round owns a private Philox
/// stream reachable in O(1):
///
///   key(user) = derive_seed(derive_seed(master_seed, round), user)
///
/// Because a user's draws depend only on (seed, round, user) — never on which
/// shard, thread, or iteration set the user was visited through — dense
/// scans, active-set scans, and any thread count all produce bit-identical
/// realizations. Copy-cheap (a single 64-bit key).
class RoundRng {
 public:
  RoundRng() = default;
  RoundRng(std::uint64_t master_seed, std::uint64_t round)
      : round_key_(derive_seed(master_seed, round)) {}

  /// User u's private engine for this round, positioned at index 0. The
  /// stream is exclusively the user's, so bounded rejection sampling
  /// (Lemire) is safe — draws never interleave with another user's.
  PhiloxEngine user_stream(std::uint64_t user) const {
    return PhiloxEngine(derive_seed(round_key_, user));
  }

  std::uint64_t round_key() const { return round_key_; }

 private:
  std::uint64_t round_key_ = 0;
};

}  // namespace qoslb
