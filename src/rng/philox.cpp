#include "rng/philox.hpp"

namespace qoslb {
namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

inline std::uint32_t mulhi32(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
}

inline std::uint32_t mullo32(std::uint32_t a, std::uint32_t b) {
  return a * b;
}

}  // namespace

Philox4x32::counter_type Philox4x32::block(counter_type ctr, key_type key) {
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = mulhi32(kPhiloxM0, ctr[0]);
    const std::uint32_t lo0 = mullo32(kPhiloxM0, ctr[0]);
    const std::uint32_t hi1 = mulhi32(kPhiloxM1, ctr[2]);
    const std::uint32_t lo1 = mullo32(kPhiloxM1, ctr[2]);
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

std::uint64_t Philox4x32::at(std::uint64_t key, std::uint64_t index) {
  const counter_type ctr = {
      static_cast<std::uint32_t>(index), static_cast<std::uint32_t>(index >> 32),
      0u, 0u};
  const key_type k = {static_cast<std::uint32_t>(key),
                      static_cast<std::uint32_t>(key >> 32)};
  const counter_type out = block(ctr, k);
  return (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
}

}  // namespace qoslb
