// distributions.hpp is header-only (templates over the generator type); this
// translation unit exists to give the templates one explicit compile check
// against both engines so template errors surface at library build time.
#include "rng/distributions.hpp"

#include <cmath>

#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

template <typename Rng>
double touch_all(Rng& rng) {
  double acc = 0;
  acc += static_cast<double>(uniform_u64_below(rng, 10));
  acc += static_cast<double>(uniform_int(rng, -3, 3));
  acc += uniform_real(rng);
  acc += bernoulli(rng, 0.5) ? 1 : 0;
  acc += static_cast<double>(geometric(rng, 0.5));
  acc += exponential(rng, 1.0);
  acc += static_cast<double>(poisson(rng, 2.0));
  const double w[] = {1.0, 2.0};
  acc += static_cast<double>(discrete(rng, std::span<const double>(w, 2)));
  return acc;
}

}  // namespace

// Referenced from tests to defeat dead-stripping; not part of the public API.
double rng_instantiation_smoke() {
  Xoshiro256 a(1);
  PhiloxEngine b(1);
  return touch_all(a) + touch_all(b);
}

}  // namespace qoslb
