#pragma once

#include <cstdint>

namespace qoslb {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand seeds and to derive
/// statistically independent child seeds; also a valid generator on its own.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// One-shot avalanche mix of a 64-bit value (the SplitMix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives a child seed from (root, stream). Streams with distinct ids yield
/// decorrelated generators; used to give every agent / replication its own
/// deterministic stream.
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  return mix64(root ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
}

}  // namespace qoslb
