#pragma once

// The qoslb-report analysis library (docs/observability.md). Ingests the
// repo's three telemetry artifact shapes — metrics JSONL (obs/metrics.cpp),
// per-round trace JSONL (obs/trace_sink.cpp), and decision/span/diag JSONL
// (obs/decision_sink.cpp) — schema-checks every line against the emitter
// catalogs, and renders a merged Markdown/JSON report: convergence curves,
// phase/perf breakdowns, herding findings, and cross-run A/B deltas.
//
// The library is deliberately separate from the qoslb-report CLI so the
// golden tests can drive ingestion and rendering in-process on checked-in
// fixture artifacts.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qoslb::report {

/// One line of a metrics JSONL artifact ("counter" | "gauge" | "histogram";
/// for histograms `value` carries the sample total).
struct MetricRow {
  std::string name;
  std::string type;
  double value = 0.0;
};

struct MetricsArtifact {
  std::string path;
  std::vector<MetricRow> rows;
};

/// Run header + per-round series from a trace JSONL artifact.
struct TraceArtifact {
  std::string path;
  std::string protocol;
  std::string mode;
  std::uint64_t users = 0;
  std::uint64_t resources = 0;
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;
  std::vector<std::uint64_t> round_ids;  // includes the round-0 snapshot
  std::vector<std::uint64_t> unsatisfied;
  std::vector<std::uint64_t> migrations;
  std::vector<std::uint64_t> messages;
  std::vector<double> potential;
  bool saw_end = false;

  std::size_t rows() const { return unsatisfied.size(); }
  std::uint64_t last_round() const;
  std::uint64_t total_migrations() const;
  std::uint64_t total_messages() const;
  /// Round id of the first traced row with zero unsatisfied users; 0 when
  /// never reached.
  std::uint64_t rounds_to_satisfied() const;
};

struct HerdingFinding {
  std::string path;
  std::uint64_t round = 0;
  std::int64_t resource = -1;
  std::uint64_t inflow = 0;
  std::uint64_t outflow = 0;
  double ratio = 0.0;
};

/// Run header + aggregates from a decision/span/diag JSONL artifact.
struct DecisionsArtifact {
  std::string path;
  std::string protocol;
  std::string mode;
  std::uint64_t users = 0;
  std::uint64_t resources = 0;
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;
  std::uint64_t sample_every = 1;
  std::uint64_t decisions = 0;
  std::uint64_t spans = 0;
  std::uint64_t requested = 0;
  std::uint64_t granted = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  double max_herding_ratio = 0.0;
  double final_l_inf = 0.0;
  double final_l2 = 0.0;
  std::vector<HerdingFinding> findings;
  bool saw_end = false;
  /// Bench artifacts hold one begin/end block per (rep, mode); aggregates
  /// span the whole file, while the end-count cross-check is per block.
  std::uint64_t block_start_decisions = 0;
};

/// One schema-drift observation: a line that failed to parse, carried an
/// unexpected key, or dropped a required one. Any issue makes exit_code 2.
struct SchemaIssue {
  std::string path;
  std::size_t line = 0;  // 1-based; 0 = whole-file problem
  std::string message;
};

struct Report {
  std::vector<MetricsArtifact> metrics;
  std::vector<TraceArtifact> traces;
  std::vector<DecisionsArtifact> decisions;
  std::vector<SchemaIssue> schema_issues;

  std::size_t total_findings() const;
};

/// Ingests one JSONL artifact, classifying it by its first line (a "metric"
/// key → metrics, "event"/"round" → trace, "kind" → decisions). Malformed
/// lines and unknown shapes append SchemaIssues instead of throwing; an
/// unreadable file is a whole-file SchemaIssue.
void ingest_file(const std::string& path, Report& report);

/// Same, from in-memory text; `path_label` names the artifact in output.
void ingest_text(const std::string& path_label, const std::string& text,
                 Report& report);

std::string render_markdown(const Report& report);
std::string render_json(const Report& report);

/// 0 clean · 1 detector findings · 2 schema drift (drift dominates).
int exit_code(const Report& report);

}  // namespace qoslb::report
