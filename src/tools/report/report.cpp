#include "tools/report/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/json.hpp"

namespace qoslb::report {
namespace {

using qoslb::json::Value;

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void issue(Report& report, const std::string& path, std::size_t line,
           std::string message) {
  report.schema_issues.push_back(SchemaIssue{path, line, std::move(message)});
}

/// Exact key-set check: every listed key present, nothing else. Unknown keys
/// are the load-bearing half — they are how schema drift in an emitter shows
/// up before any consumer starts silently ignoring data.
bool check_keys(const Value& obj, const std::vector<std::string>& expected,
                Report& report, const std::string& path, std::size_t line,
                const char* what) {
  bool ok = true;
  std::set<std::string> seen;
  for (const auto& [key, value] : obj.members()) seen.insert(key);
  for (const std::string& key : expected) {
    if (seen.erase(key) == 0) {
      issue(report, path, line,
            std::string(what) + " line missing key \"" + key + '"');
      ok = false;
    }
  }
  for (const std::string& key : seen) {
    issue(report, path, line,
          std::string(what) + " line has unexpected key \"" + key + '"');
    ok = false;
  }
  return ok;
}

double num(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

std::uint64_t unum(const Value& obj, const char* key) {
  const double v = num(obj, key);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::int64_t inum(const Value& obj, const char* key) {
  return static_cast<std::int64_t>(num(obj, key));
}

bool flag(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is_bool() && v->as_bool();
}

std::string str(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

// ---- per-shape line handlers ----

void metrics_line(const Value& obj, MetricsArtifact& artifact, Report& report,
                  std::size_t line) {
  const std::string type = str(obj, "type");
  if (type == "counter" || type == "gauge") {
    check_keys(obj, {"metric", "type", "value"}, report, artifact.path, line,
               "metric");
    artifact.rows.push_back(MetricRow{str(obj, "metric"), type,
                                      num(obj, "value")});
    return;
  }
  if (type == "histogram") {
    check_keys(obj,
               {"metric", "type", "total", "underflow", "overflow", "buckets"},
               report, artifact.path, line, "histogram");
    const Value* buckets = obj.find("buckets");
    if (buckets != nullptr && buckets->is_array())
      for (const Value& bucket : buckets->items())
        check_keys(bucket, {"lo", "hi", "count"}, report, artifact.path, line,
                   "histogram bucket");
    artifact.rows.push_back(
        MetricRow{str(obj, "metric"), type, num(obj, "total")});
    return;
  }
  issue(report, artifact.path, line,
        "metric line has unknown type \"" + type + '"');
}

void trace_line(const Value& obj, TraceArtifact& artifact, Report& report,
                std::size_t line) {
  if (obj.find("event") != nullptr) {
    const std::string event = str(obj, "event");
    if (event == "begin") {
      check_keys(obj,
                 {"event", "protocol", "users", "resources", "seed", "threads",
                  "mode"},
                 report, artifact.path, line, "trace begin");
      artifact.protocol = str(obj, "protocol");
      artifact.mode = str(obj, "mode");
      artifact.users = unum(obj, "users");
      artifact.resources = unum(obj, "resources");
      artifact.seed = unum(obj, "seed");
      artifact.threads = unum(obj, "threads");
    } else if (event == "end") {
      check_keys(obj, {"event"}, report, artifact.path, line, "trace end");
      artifact.saw_end = true;
    } else {
      issue(report, artifact.path, line,
            "trace line has unknown event \"" + event + '"');
    }
    return;
  }
  check_keys(obj,
             {"round", "unsatisfied", "migrations", "messages", "max_load",
              "potential", "active_size"},
             report, artifact.path, line, "trace row");
  artifact.round_ids.push_back(unum(obj, "round"));
  artifact.unsatisfied.push_back(unum(obj, "unsatisfied"));
  artifact.migrations.push_back(unum(obj, "migrations"));
  artifact.messages.push_back(unum(obj, "messages"));
  artifact.potential.push_back(num(obj, "potential"));
}

void decisions_line(const Value& obj, DecisionsArtifact& artifact,
                    Report& report, std::size_t line) {
  const std::string kind = str(obj, "kind");
  if (kind == "begin") {
    check_keys(obj,
               {"kind", "protocol", "users", "resources", "seed", "threads",
                "mode", "sample_every"},
               report, artifact.path, line, "decisions begin");
    artifact.protocol = str(obj, "protocol");
    artifact.mode = str(obj, "mode");
    artifact.users = unum(obj, "users");
    artifact.resources = unum(obj, "resources");
    artifact.seed = unum(obj, "seed");
    artifact.threads = unum(obj, "threads");
    artifact.sample_every = std::max<std::uint64_t>(1, unum(obj, "sample_every"));
    artifact.block_start_decisions = artifact.decisions;
  } else if (kind == "decision") {
    check_keys(obj,
               {"kind", "round", "user", "from", "probe", "target", "to",
                "threshold", "requested", "granted", "satisfied_before",
                "satisfied_after"},
               report, artifact.path, line, "decision");
    ++artifact.decisions;
    if (flag(obj, "requested")) ++artifact.requested;
    if (flag(obj, "granted")) ++artifact.granted;
  } else if (kind == "span") {
    check_keys(obj, {"kind", "span", "user", "op", "msg", "target", "seq",
                     "time"},
               report, artifact.path, line, "span");
    ++artifact.spans;
    const std::string op = str(obj, "op");
    if (op == "retry") ++artifact.retries;
    if (op == "timeout") ++artifact.timeouts;
  } else if (kind == "diag") {
    check_keys(obj,
               {"kind", "round", "migrations", "inflow_max", "inflow_argmax",
                "outflow_at_argmax", "herding_ratio", "l_inf", "l2"},
               report, artifact.path, line, "diag");
    artifact.max_herding_ratio =
        std::max(artifact.max_herding_ratio, num(obj, "herding_ratio"));
    artifact.final_l_inf = num(obj, "l_inf");
    artifact.final_l2 = num(obj, "l2");
  } else if (kind == "finding") {
    check_keys(obj, {"kind", "detector", "round", "resource", "inflow",
                     "outflow", "ratio"},
               report, artifact.path, line, "finding");
    artifact.findings.push_back(HerdingFinding{
        artifact.path, unum(obj, "round"), inum(obj, "resource"),
        unum(obj, "inflow"), unum(obj, "outflow"), num(obj, "ratio")});
  } else if (kind == "end") {
    check_keys(obj, {"kind", "decisions", "spans", "findings"}, report,
               artifact.path, line, "decisions end");
    artifact.saw_end = true;
    if (unum(obj, "decisions") !=
        artifact.decisions - artifact.block_start_decisions)
      issue(report, artifact.path, line,
            "decisions end count disagrees with the stream");
  } else {
    issue(report, artifact.path, line,
          "decisions line has unknown kind \"" + kind + '"');
  }
}

// ---- rendering helpers ----

/// Downsampled ASCII sparkline ("@" high, "." low) of a series; the report
/// embeds it in a code span so monospace alignment holds in Markdown.
std::string sparkline(const std::vector<std::uint64_t>& series,
                      std::size_t width = 60) {
  static const char kLevels[] = " .:-=+*#%@";
  if (series.empty()) return std::string();
  std::uint64_t peak = 1;
  for (const std::uint64_t v : series) peak = std::max(peak, v);
  const std::size_t points = std::min(width, series.size());
  std::string out;
  for (std::size_t i = 0; i < points; ++i) {
    // Max over the chunk, not a mean: a one-round herding spike must stay
    // visible after downsampling.
    const std::size_t begin = i * series.size() / points;
    const std::size_t end =
        std::max(begin + 1, (i + 1) * series.size() / points);
    std::uint64_t chunk = 0;
    for (std::size_t j = begin; j < end; ++j) chunk = std::max(chunk, series[j]);
    const std::size_t level = chunk == 0 ? 0 : 1 + chunk * 8 / peak;
    out += kLevels[std::min<std::size_t>(level, 9)];
  }
  return out;
}

std::string percent(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "n/a";
  std::ostringstream out;
  out.precision(3);
  out << 100.0 * static_cast<double>(part) / static_cast<double>(whole) << '%';
  return out.str();
}

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

std::uint64_t TraceArtifact::last_round() const {
  return round_ids.empty() ? 0 : round_ids.back();
}

std::uint64_t TraceArtifact::total_migrations() const {
  std::uint64_t total = 0;
  for (const std::uint64_t v : migrations) total += v;
  return total;
}

std::uint64_t TraceArtifact::total_messages() const {
  std::uint64_t total = 0;
  for (const std::uint64_t v : messages) total += v;
  return total;
}

std::uint64_t TraceArtifact::rounds_to_satisfied() const {
  for (std::size_t i = 0; i < unsatisfied.size(); ++i)
    if (unsatisfied[i] == 0) return round_ids[i];
  return 0;
}

std::size_t Report::total_findings() const {
  std::size_t total = 0;
  for (const DecisionsArtifact& artifact : decisions)
    total += artifact.findings.size();
  return total;
}

void ingest_text(const std::string& path_label, const std::string& text,
                 Report& report) {
  enum class Shape { kUndecided, kMetrics, kTrace, kDecisions };
  Shape shape = Shape::kUndecided;
  MetricsArtifact metrics{path_label, {}};
  TraceArtifact trace;
  trace.path = path_label;
  DecisionsArtifact decisions;
  decisions.path = path_label;

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool any = false;        // at least one line classified
  bool saw_content = false;  // at least one non-empty line (even if broken)
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    saw_content = true;
    Value obj;
    try {
      obj = json::parse(line);
    } catch (const std::exception& error) {
      issue(report, path_label, lineno, error.what());
      continue;
    }
    if (!obj.is_object()) {
      issue(report, path_label, lineno, "artifact line is not a JSON object");
      continue;
    }
    any = true;
    if (shape == Shape::kUndecided) {
      if (obj.find("metric") != nullptr) shape = Shape::kMetrics;
      else if (obj.find("kind") != nullptr) shape = Shape::kDecisions;
      else if (obj.find("event") != nullptr || obj.find("round") != nullptr)
        shape = Shape::kTrace;
      else {
        issue(report, path_label, lineno,
              "unrecognized artifact shape (no metric/event/round/kind key)");
        return;
      }
    }
    switch (shape) {
      case Shape::kMetrics: metrics_line(obj, metrics, report, lineno); break;
      case Shape::kTrace: trace_line(obj, trace, report, lineno); break;
      case Shape::kDecisions:
        decisions_line(obj, decisions, report, lineno);
        break;
      case Shape::kUndecided: break;
    }
  }
  if (!any) {
    // Broken lines were already reported one by one; only a genuinely blank
    // file earns the catch-all.
    if (!saw_content) issue(report, path_label, 0, "artifact is empty");
    return;
  }
  switch (shape) {
    case Shape::kMetrics: report.metrics.push_back(std::move(metrics)); break;
    case Shape::kTrace:
      if (!trace.saw_end)
        issue(report, path_label, lineno, "trace stream has no end marker");
      report.traces.push_back(std::move(trace));
      break;
    case Shape::kDecisions:
      if (!decisions.saw_end)
        issue(report, path_label, lineno,
              "decisions stream has no end marker");
      report.decisions.push_back(std::move(decisions));
      break;
    case Shape::kUndecided: break;
  }
}

void ingest_file(const std::string& path, Report& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    issue(report, path, 0, "cannot open artifact");
    return;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ingest_text(path, text.str(), report);
}

std::string render_markdown(const Report& report) {
  std::ostringstream out;
  out << "# qoslb-report\n\n";
  out << "Artifacts: " << report.metrics.size() << " metrics, "
      << report.traces.size() << " trace, " << report.decisions.size()
      << " decisions. Findings: " << report.total_findings()
      << ". Schema issues: " << report.schema_issues.size() << ".\n";

  if (!report.schema_issues.empty()) {
    out << "\n## Schema drift\n\n";
    for (const SchemaIssue& problem : report.schema_issues) {
      out << "- `" << problem.path << '`';
      if (problem.line != 0) out << " line " << problem.line;
      out << ": " << problem.message << '\n';
    }
  }

  if (!report.traces.empty()) {
    out << "\n## Convergence\n\n";
    for (const TraceArtifact& trace : report.traces) {
      out << "### " << trace.protocol << " (`" << trace.path << "`)\n\n";
      out << "- n=" << trace.users << " m=" << trace.resources
          << " seed=" << trace.seed << " threads=" << trace.threads
          << " mode=" << trace.mode << '\n';
      out << "- rounds: " << trace.last_round() << " (" << trace.rows()
          << " traced rows)";
      if (const std::uint64_t hit = trace.rounds_to_satisfied())
        out << ", all satisfied at round " << hit;
      else if (!trace.unsatisfied.empty())
        out << ", still " << trace.unsatisfied.back()
            << " unsatisfied at the end";
      out << '\n';
      out << "- migrations: " << trace.total_migrations()
          << ", messages: " << trace.total_messages() << '\n';
      if (!trace.potential.empty())
        out << "- potential: " << fmt(trace.potential.front()) << " -> "
            << fmt(trace.potential.back()) << '\n';
      if (!trace.unsatisfied.empty())
        out << "- unsatisfied curve: `" << sparkline(trace.unsatisfied)
            << "`\n";
      if (!trace.migrations.empty())
        out << "- migration curve:   `" << sparkline(trace.migrations)
            << "`\n";
      out << '\n';
    }
    if (report.traces.size() >= 2) {
      const TraceArtifact& a = report.traces[0];
      const TraceArtifact& b = report.traces[1];
      out << "### A/B delta (`" << a.path << "` vs `" << b.path << "`)\n\n";
      out << "| series | A | B | delta |\n|---|---|---|---|\n";
      const auto row = [&out](const char* label, double va, double vb) {
        out << "| " << label << " | " << fmt(va) << " | " << fmt(vb) << " | "
            << fmt(vb - va) << " |\n";
      };
      row("rounds", static_cast<double>(a.last_round()),
          static_cast<double>(b.last_round()));
      row("rounds to satisfied", static_cast<double>(a.rounds_to_satisfied()),
          static_cast<double>(b.rounds_to_satisfied()));
      row("migrations", static_cast<double>(a.total_migrations()),
          static_cast<double>(b.total_migrations()));
      row("messages", static_cast<double>(a.total_messages()),
          static_cast<double>(b.total_messages()));
      if (!a.potential.empty() && !b.potential.empty())
        row("final potential", a.potential.back(), b.potential.back());
    }
  }

  if (!report.metrics.empty()) {
    out << "\n## Phase & perf breakdown\n\n";
    for (const MetricsArtifact& artifact : report.metrics) {
      out << "### `" << artifact.path << "`\n\n";
      bool any = false;
      for (const MetricRow& row : artifact.rows) {
        if (!starts_with(row.name, "phase/") &&
            !starts_with(row.name, "perf/"))
          continue;
        if (!any) out << "| metric | value |\n|---|---|\n";
        any = true;
        out << "| " << row.name << " | " << fmt(row.value) << " |\n";
      }
      if (!any) out << "(no phase/perf metrics in this artifact)\n";
      out << '\n';
    }
    if (report.metrics.size() >= 2) {
      const MetricsArtifact& a = report.metrics[0];
      const MetricsArtifact& b = report.metrics[1];
      out << "### A/B delta (`" << a.path << "` vs `" << b.path << "`)\n\n";
      out << "| metric | A | B | delta |\n|---|---|---|---|\n";
      for (const MetricRow& row : a.rows) {
        for (const MetricRow& other : b.rows) {
          if (other.name != row.name || other.type != row.type) continue;
          if (other.value == row.value) break;
          out << "| " << row.name << " | " << fmt(row.value) << " | "
              << fmt(other.value) << " | " << fmt(other.value - row.value)
              << " |\n";
          break;
        }
      }
    }
  }

  if (!report.decisions.empty()) {
    out << "\n## Decisions\n\n";
    for (const DecisionsArtifact& artifact : report.decisions) {
      out << "### " << artifact.protocol << " (`" << artifact.path << "`)\n\n";
      out << "- sampling 1/" << artifact.sample_every << ", "
          << artifact.decisions << " decisions, " << artifact.spans
          << " spans\n";
      out << "- requested " << artifact.requested << ", granted "
          << artifact.granted << " ("
          << percent(artifact.granted, artifact.requested)
          << " of requests)\n";
      if (artifact.spans > 0)
        out << "- retries " << artifact.retries << ", timeouts "
            << artifact.timeouts << '\n';
      out << "- max herding ratio " << fmt(artifact.max_herding_ratio)
          << ", final imbalance l_inf=" << fmt(artifact.final_l_inf)
          << " l2=" << fmt(artifact.final_l2) << '\n';
      out << '\n';
    }
  }

  if (report.total_findings() != 0) {
    out << "\n## Findings\n\n";
    out << "| artifact | detector | round | resource | inflow | outflow | "
           "ratio |\n|---|---|---|---|---|---|---|\n";
    for (const DecisionsArtifact& artifact : report.decisions)
      for (const HerdingFinding& finding : artifact.findings)
        out << "| `" << finding.path << "` | herding | " << finding.round
            << " | " << finding.resource << " | " << finding.inflow << " | "
            << finding.outflow << " | " << fmt(finding.ratio) << " |\n";
  }

  const int code = exit_code(report);
  out << "\nVerdict: "
      << (code == 0 ? "CLEAN"
                    : code == 1 ? "FINDINGS" : "SCHEMA DRIFT")
      << " (exit " << code << ")\n";
  return out.str();
}

std::string render_json(const Report& report) {
  std::ostringstream out;
  out << "{\"schema_issues\":[";
  for (std::size_t i = 0; i < report.schema_issues.size(); ++i) {
    const SchemaIssue& problem = report.schema_issues[i];
    if (i != 0) out << ',';
    out << "{\"path\":\"" << escape(problem.path) << "\",\"line\":"
        << problem.line << ",\"message\":\"" << escape(problem.message)
        << "\"}";
  }
  out << "],\"traces\":[";
  for (std::size_t i = 0; i < report.traces.size(); ++i) {
    const TraceArtifact& trace = report.traces[i];
    if (i != 0) out << ',';
    out << "{\"path\":\"" << escape(trace.path) << "\",\"protocol\":\""
        << escape(trace.protocol) << "\",\"rounds\":" << trace.last_round()
        << ",\"rounds_to_satisfied\":" << trace.rounds_to_satisfied()
        << ",\"migrations\":" << trace.total_migrations()
        << ",\"messages\":" << trace.total_messages() << '}';
  }
  out << "],\"decisions\":[";
  for (std::size_t i = 0; i < report.decisions.size(); ++i) {
    const DecisionsArtifact& artifact = report.decisions[i];
    if (i != 0) out << ',';
    out << "{\"path\":\"" << escape(artifact.path) << "\",\"protocol\":\""
        << escape(artifact.protocol)
        << "\",\"sample_every\":" << artifact.sample_every
        << ",\"decisions\":" << artifact.decisions
        << ",\"spans\":" << artifact.spans
        << ",\"requested\":" << artifact.requested
        << ",\"granted\":" << artifact.granted
        << ",\"retries\":" << artifact.retries
        << ",\"timeouts\":" << artifact.timeouts
        << ",\"max_herding_ratio\":" << fmt(artifact.max_herding_ratio)
        << ",\"findings\":" << artifact.findings.size() << '}';
  }
  out << "],\"metrics_artifacts\":" << report.metrics.size()
      << ",\"findings\":" << report.total_findings()
      << ",\"exit\":" << exit_code(report) << "}\n";
  return out.str();
}

int exit_code(const Report& report) {
  if (!report.schema_issues.empty()) return 2;
  if (report.total_findings() != 0) return 1;
  return 0;
}

}  // namespace qoslb::report
