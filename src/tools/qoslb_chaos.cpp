// qoslb-chaos — deterministic kill/restore harness (docs/faults.md).
//
// For every protocol × thread-count × engine-mode combination the harness
// runs an uninterrupted baseline, captures checkpoints at the --kill round
// boundaries, round-trips each checkpoint through the SnapshotV1 text
// format on disk, resumes the run from the restored checkpoint, and diffs
// the continuation against the baseline: final state hash, round count,
// every counter, satisfaction, and the churn degradation metrics must all
// be bit-identical. Any divergence is reported and the exit code is 1.
//
//   qoslb-chaos --n=100000 --m=64 --kill=1,5,25 --fail=3:10 --recover=3:40 \
//               --threads=1,2,4,8 --modes=dense,active --check-every=8 \
//               --out=chaos-out
//
// Options:
//   --n, --m, --seed      world size and master seed (uniform feasible family)
//   --slack               capacity headroom of the generated world (default
//                         0.15 — tight enough that failures visibly dip)
//   --rate-model          uniform (default) | matrix | bipartite: the world's
//                         rate model (docs/heterogeneity.md). matrix uses
//                         make_zipf_rates, bipartite make_clustered_bipartite;
//                         non-uniform worlds start from State::random because
//                         all-on-0 may be unreachable under restriction
//   --protocols           CSV of sharded protocol kinds, or "all" (default)
//   --threads             CSV of worker counts (default 1,2,4,8)
//   --modes               CSV from {dense,active} (default both)
//   --rounds              round cap per run (default 2000)
//   --shard-size          users per shard (default 256 so small runs shard)
//   --kill=R1,R2,...      checkpoint/kill round boundaries (default 1,5,25)
//   --fail=R:ROUND,...    churn plan: fail resource R at round ROUND
//   --recover=R:ROUND,... churn plan: recover resource R at round ROUND
//   --check-every=K       State::check_invariants() audit period (default 8)
//   --out=DIR             snapshot + report directory (default chaos-out)
//
// The report (DIR/invariant-report.txt) carries one line per verified
// restore plus the per-combo baseline summary, and is uploaded as a CI
// artifact by the chaos-smoke job.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/generators.hpp"
#include "core/protocols/registry.hpp"
#include "core/snapshot.hpp"
#include "net/generators.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

using namespace qoslb;

namespace {

struct ChaosKind {
  std::string kind;
  double lambda;
};

std::vector<ChaosKind> parse_protocols(const std::string& spec) {
  const std::vector<ChaosKind> all = {
      {"uniform", 0.5},      {"adaptive", 1.0},      {"admission", 1.0},
      {"nbr-uniform", 0.5},  {"nbr-admission", 1.0}, {"berenbrink", 1.0},
  };
  if (spec == "all") return all;
  std::vector<ChaosKind> out;
  for (const std::string& kind : split(spec, ',')) {
    if (kind.empty()) continue;
    bool known = false;
    for (const ChaosKind& candidate : all) {
      if (candidate.kind == kind) {
        out.push_back(candidate);
        known = true;
        break;
      }
    }
    if (!known)
      throw std::invalid_argument("--protocols: unknown sharded kind '" +
                                  kind + "'");
  }
  if (out.empty()) throw std::invalid_argument("--protocols selected nothing");
  return out;
}

std::vector<std::uint64_t> parse_rounds_csv(const std::string& spec,
                                            const char* flag) {
  std::vector<std::uint64_t> out;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    out.push_back(static_cast<std::uint64_t>(std::stoull(item)));
  }
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i] <= out[i - 1])
      throw std::invalid_argument(std::string(flag) +
                                  " rounds must be strictly increasing");
  return out;
}

/// Parses "R:ROUND,R:ROUND,..." into (resource, round) churn entries.
void parse_churn_csv(const std::string& spec, ChurnKind kind,
                     std::vector<ChurnEvent>& events) {
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> parts = split(item, ':');
    if (parts.size() != 2)
      throw std::invalid_argument("churn entry expects R:ROUND, got '" + item +
                                  "'");
    ChurnEvent event;
    event.resource = static_cast<ResourceId>(std::stoul(parts[0]));
    event.round = static_cast<std::uint64_t>(std::stoull(parts[1]));
    event.kind = kind;
    events.push_back(event);
  }
}

EngineMode parse_mode(const std::string& name) {
  if (name == "dense") return EngineMode::kDense;
  if (name == "active") return EngineMode::kActive;
  throw std::invalid_argument("unknown engine mode '" + name +
                              "' (dense|active)");
}

/// Field-by-field counter diff; empty result means bit-identical.
std::vector<std::string> diff_counters(const Counters& a, const Counters& b) {
  std::vector<std::string> out;
  const auto check = [&](const char* name, std::uint64_t x, std::uint64_t y) {
    if (x != y)
      out.push_back(std::string(name) + " baseline=" + std::to_string(x) +
                    " resumed=" + std::to_string(y));
  };
  check("probes", a.probes, b.probes);
  check("migrate_requests", a.migrate_requests, b.migrate_requests);
  check("grants", a.grants, b.grants);
  check("rejects", a.rejects, b.rejects);
  check("migrations", a.migrations, b.migrations);
  check("rounds", a.rounds, b.rounds);
  check("events", a.events, b.events);
  check("timeouts", a.timeouts, b.timeouts);
  check("retries", a.retries, b.retries);
  check("stale_drops", a.stale_drops, b.stale_drops);
  return out;
}

std::vector<std::string> diff_results(const EngineResult& base,
                                      const EngineResult& resumed) {
  std::vector<std::string> out = diff_counters(base.counters, resumed.counters);
  const auto check_u64 = [&](const char* name, std::uint64_t x,
                             std::uint64_t y) {
    if (x != y)
      out.push_back(std::string(name) + " baseline=" + std::to_string(x) +
                    " resumed=" + std::to_string(y));
  };
  check_u64("result.rounds", base.rounds, resumed.rounds);
  check_u64("final_satisfied", base.final_satisfied, resumed.final_satisfied);
  check_u64("converged", base.converged ? 1 : 0, resumed.converged ? 1 : 0);
  check_u64("churn.failures", base.churn.failures, resumed.churn.failures);
  check_u64("churn.recoveries", base.churn.recoveries,
            resumed.churn.recoveries);
  check_u64("churn.evicted", base.churn.evicted, resumed.churn.evicted);
  check_u64("churn.max_recovery_rounds", base.churn.max_recovery_rounds,
            resumed.churn.max_recovery_rounds);
  if (base.churn.max_dip_depth != resumed.churn.max_dip_depth)
    out.push_back("churn.max_dip_depth baseline=" +
                  std::to_string(base.churn.max_dip_depth) + " resumed=" +
                  std::to_string(resumed.churn.max_dip_depth));
  return out;
}

int run_chaos(ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 4096));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double slack = args.get_double("slack", 0.15);
  const std::vector<ChaosKind> kinds =
      parse_protocols(args.get_string("protocols", "all"));
  const std::string threads_spec = args.get_string("threads", "1,2,4,8");
  const std::string modes_spec = args.get_string("modes", "dense,active");
  const auto max_rounds =
      static_cast<std::uint64_t>(args.get_int("rounds", 2000));
  const auto shard_size =
      static_cast<std::size_t>(args.get_int("shard-size", 256));
  const std::vector<std::uint64_t> kill_rounds =
      parse_rounds_csv(args.get_string("kill", "1,5,25"), "--kill");
  const std::string fail_spec = args.get_string("fail", "");
  const std::string recover_spec = args.get_string("recover", "");
  const auto check_every =
      static_cast<std::uint32_t>(args.get_int("check-every", 8));
  const std::string out_dir = args.get_string("out", "chaos-out");
  const std::string rate_model = args.get_string("rate-model", "uniform");
  args.finish();

  if (rate_model != "uniform" && rate_model != "matrix" &&
      rate_model != "bipartite")
    throw std::invalid_argument("unknown --rate-model '" + rate_model +
                                "' (uniform|matrix|bipartite)");

  if (kill_rounds.empty())
    throw std::invalid_argument("--kill must name at least one round");

  // Churn plan: merge the fail/recover entries in round order (stable, so
  // same-round fails apply before recoveries, matching list-order replay).
  ChurnPlan plan;
  std::vector<ChurnEvent> fails, recovers;
  parse_churn_csv(fail_spec, ChurnKind::kFail, fails);
  parse_churn_csv(recover_spec, ChurnKind::kRecover, recovers);
  std::size_t fi = 0, ri = 0;
  while (fi < fails.size() || ri < recovers.size()) {
    const bool take_fail =
        ri >= recovers.size() ||
        (fi < fails.size() && fails[fi].round <= recovers[ri].round);
    plan.events.push_back(take_fail ? fails[fi++] : recovers[ri++]);
  }
  plan.validate(m);

  std::vector<std::size_t> thread_counts;
  for (const std::string& item : split(threads_spec, ','))
    if (!item.empty())
      thread_counts.push_back(static_cast<std::size_t>(std::stoul(item)));
  std::vector<EngineMode> modes;
  std::vector<std::string> mode_names;
  for (const std::string& item : split(modes_spec, ','))
    if (!item.empty()) {
      modes.push_back(parse_mode(item));
      mode_names.push_back(item);
    }

  std::filesystem::create_directories(out_dir);
  std::ofstream report(out_dir + "/invariant-report.txt");
  if (!report)
    throw std::runtime_error("cannot open report in --out '" + out_dir + "'");

  const Graph ring = make_ring(static_cast<Vertex>(m));
  std::size_t restores = 0, skipped = 0, divergences = 0;

  for (const ChaosKind& kind : kinds) {
    for (std::size_t mode_idx = 0; mode_idx < modes.size(); ++mode_idx) {
      for (const std::size_t threads : thread_counts) {
        const std::string combo = kind.kind + " mode=" + mode_names[mode_idx] +
                                  " threads=" + std::to_string(threads);

        // World + baseline run (uninterrupted, capturing checkpoints).
        Xoshiro256 world_rng(seed);
        const Instance instance =
            rate_model == "matrix"
                ? make_zipf_rates(n, m, slack, 1.1, world_rng)
            : rate_model == "bipartite"
                ? make_clustered_bipartite(n, m, 8, 2, slack, world_rng)
                : make_uniform_feasible(n, m, slack, 1.5, world_rng);
        State state = instance.rate_model().is_uniform()
                          ? State::all_on(instance, 0)
                          : State::random(instance, world_rng);
        ProtocolSpec spec;
        spec.kind = kind.kind;
        spec.lambda = kind.lambda;
        spec.graph = &ring;
        const auto protocol = make_protocol(spec);

        EngineConfig config;
        config.max_rounds = max_rounds;
        config.threads = threads;
        config.mode = modes[mode_idx];
        config.shard_size = shard_size;
        config.seed = seed;
        config.churn = plan;
        config.invariant_check_period = check_every;
        std::vector<SnapshotV1> snapshots;
        config.snapshot_rounds = kill_rounds;
        config.snapshot_sink = [&snapshots](const SnapshotV1& snapshot) {
          snapshots.push_back(snapshot);
        };
        Xoshiro256 run_rng(seed);
        const EngineResult baseline =
            Engine(config).run(*protocol, state, run_rng);
        const std::uint64_t baseline_hash = state_hash(state);
        state.check_invariants();

        report << "baseline " << combo << " rounds=" << baseline.rounds
               << " converged=" << (baseline.converged ? "yes" : "no")
               << " satisfied=" << baseline.final_satisfied
               << " hash=" << baseline_hash
               << " evicted=" << baseline.churn.evicted
               << " max_dip_depth=" << baseline.churn.max_dip_depth
               << " recovery_rounds=" << baseline.churn.max_recovery_rounds
               << '\n';
        skipped += kill_rounds.size() - snapshots.size();

        // Kill/restore each checkpoint through the on-disk format.
        EngineConfig resume_config = config;
        resume_config.snapshot_rounds.clear();
        resume_config.snapshot_sink = nullptr;
        for (const SnapshotV1& snapshot : snapshots) {
          const std::string path =
              out_dir + "/" + kind.kind + "_" + mode_names[mode_idx] + "_t" +
              std::to_string(threads) + "_r" +
              std::to_string(snapshot.next_round) + ".snap";
          {
            std::ofstream file(path);
            if (!file)
              throw std::runtime_error("cannot write snapshot '" + path + "'");
            write_snapshot(file, snapshot);
          }
          std::ifstream file(path);
          if (!file)
            throw std::runtime_error("cannot reopen snapshot '" + path + "'");
          const SnapshotV1 restored = read_snapshot(file);

          const Instance resumed_instance = restored.make_instance();
          State resumed_state = restored.make_state(resumed_instance);
          const auto resumed_protocol = make_protocol(spec);
          const EngineResult resumed = Engine(resume_config)
                                           .resume(*resumed_protocol, restored,
                                                   resumed_state);
          resumed_state.check_invariants();
          ++restores;

          std::vector<std::string> diffs = diff_results(baseline, resumed);
          const std::uint64_t resumed_hash = state_hash(resumed_state);
          if (resumed_hash != baseline_hash)
            diffs.push_back("state hash baseline=" +
                            std::to_string(baseline_hash) + " resumed=" +
                            std::to_string(resumed_hash));
          if (diffs.empty()) {
            report << "restore " << combo << " kill=" << snapshot.next_round
                   << " OK hash=" << resumed_hash << '\n';
          } else {
            ++divergences;
            report << "restore " << combo << " kill=" << snapshot.next_round
                   << " DIVERGED\n";
            for (const std::string& diff : diffs) {
              report << "  " << diff << '\n';
              std::cerr << "qoslb-chaos: " << combo
                        << " kill=" << snapshot.next_round << ": " << diff
                        << '\n';
            }
          }
        }
      }
    }
  }

  report << "summary restores=" << restores << " skipped=" << skipped
         << " divergences=" << divergences << '\n';
  std::cout << "qoslb-chaos: " << restores << " kill/restore cycles, "
            << skipped << " skipped (run ended before the kill round), "
            << divergences << " divergences; report in " << out_dir
            << "/invariant-report.txt\n";
  return divergences == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    return run_chaos(args);
  } catch (const std::exception& error) {
    std::cerr << "qoslb-chaos: " << error.what() << '\n';
    return 2;
  }
}
