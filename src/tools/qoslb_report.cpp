// qoslb-report — offline analyzer for the repo's telemetry artifacts
// (docs/observability.md).
//
// Ingests any mix of metrics / trace / decision JSONL files, schema-checks
// every line against the emitter catalogs, and writes a merged report:
// convergence curves, phase/perf breakdowns, herding findings, and A/B
// deltas between the first two runs of each shape.
//
// Usage:
//   qoslb-report [--out=report.md] [--json=report.json] artifact.jsonl ...
//
// Without --out the Markdown report goes to stdout. Exit code: 0 clean,
// 1 detector findings, 2 schema drift or usage error — CI treats any
// non-zero exit as a gate failure.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/report/report.hpp"

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string json_path;
  std::vector<std::string> artifacts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qoslb-report [--out=report.md] "
                   "[--json=report.json] artifact.jsonl ...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "qoslb-report: unknown flag " << arg << "\n";
      return 2;
    } else {
      artifacts.push_back(arg);
    }
  }
  if (artifacts.empty()) {
    std::cerr << "usage: qoslb-report [--out=report.md] [--json=report.json] "
                 "artifact.jsonl ...\n";
    return 2;
  }

  qoslb::report::Report report;
  for (const std::string& path : artifacts)
    qoslb::report::ingest_file(path, report);

  const std::string markdown = qoslb::report::render_markdown(report);
  if (out_path.empty()) {
    std::cout << markdown;
  } else if (!write_file(out_path, markdown)) {
    std::cerr << "qoslb-report: cannot write " << out_path << "\n";
    return 2;
  }
  if (!json_path.empty() &&
      !write_file(json_path, qoslb::report::render_json(report))) {
    std::cerr << "qoslb-report: cannot write " << json_path << "\n";
    return 2;
  }

  const int code = qoslb::report::exit_code(report);
  if (code != 0)
    std::cerr << "qoslb-report: " << report.total_findings() << " findings, "
              << report.schema_issues.size() << " schema issues (exit "
              << code << ")\n";
  return code;
}
