// qoslb-lint — the determinism-contract static-analysis pass.
//
// Scans a source tree for violations of the conventions the engine's
// bit-identical-replay guarantee rests on (see docs/static-analysis.md) and
// exits non-zero when any are found, so it can gate CI alongside the build
// and sanitizer jobs. Deliberately standalone: std library only, no libclang,
// no dependency on the simulation targets.
//
// Usage:
//   qoslb_lint [--root DIR] [--fix-list] [--list-rules] [--sarif PATH]
//              [--graph-dump] [--why QLxxx:file:line]
//
//   --root DIR    tree to scan (default: current directory)
//   --fix-list    machine-consumable output: rule<TAB>file<TAB>line
//   --list-rules  print the rule table and exit
//   --sarif PATH  additionally write the findings as a SARIF 2.1.0 log
//   --graph-dump  print the include graph and call graph instead of findings
//   --why SPEC    explain one finding (QLxxx:file:line): print its message
//                 and, for call-graph rules, the root-to-site call chain
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: qoslb_lint [--root DIR] [--fix-list] [--list-rules]\n"
         "                  [--sarif PATH] [--graph-dump] "
         "[--why QLxxx:file:line]\n";
  return code;
}

/// Parses `QLxxx:file:line` (line optional: `QLxxx:file` matches any line).
bool parse_why(const std::string& spec, std::string& rule, std::string& file,
               int& line) {
  const std::size_t first = spec.find(':');
  if (first == std::string::npos) return false;
  rule = spec.substr(0, first);
  const std::size_t last = spec.rfind(':');
  line = 0;
  if (last != first) {
    try {
      line = std::stoi(spec.substr(last + 1));
    } catch (...) {
      return false;
    }
    file = spec.substr(first + 1, last - first - 1);
  } else {
    file = spec.substr(first + 1);
  }
  return !rule.empty() && !file.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  std::string why_spec;
  bool fix_list = false;
  bool graph_dump = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      for (const qoslb::lint::RuleInfo& rule : qoslb::lint::rules())
        std::cout << rule.id << "  " << rule.summary << "\n";
      return 0;
    } else if (arg == "--fix-list") {
      fix_list = true;
    } else if (arg == "--graph-dump") {
      graph_dump = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--why" && i + 1 < argc) {
      why_spec = argv[++i];
    } else if (arg.rfind("--why=", 0) == 0) {
      why_spec = arg.substr(6);
    } else {
      std::cerr << "qoslb_lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "qoslb_lint: '" << root << "' is not a directory\n";
    return 2;
  }

  qoslb::lint::Analysis analysis;
  try {
    analysis = qoslb::lint::analyze({root});
  } catch (const std::exception& e) {
    std::cerr << "qoslb_lint: " << e.what() << "\n";
    return 2;
  }
  const std::vector<qoslb::lint::Finding>& findings = analysis.findings;

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "qoslb_lint: cannot write '" << sarif_path << "'\n";
      return 2;
    }
    out << qoslb::lint::sarif(findings);
  }

  if (graph_dump) {
    std::cout << "# include graph\n"
              << analysis.include_graph_dump << "# call graph\n"
              << analysis.call_graph_dump;
    return findings.empty() ? 0 : 1;
  }

  if (!why_spec.empty()) {
    std::string rule;
    std::string file;
    int line = 0;
    if (!parse_why(why_spec, rule, file, line)) {
      std::cerr << "qoslb_lint: --why expects QLxxx:file[:line], got '"
                << why_spec << "'\n";
      return 2;
    }
    bool found = false;
    for (const qoslb::lint::Finding& f : findings) {
      if (f.rule != rule || f.file != file || (line != 0 && f.line != line))
        continue;
      found = true;
      std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (f.why.empty()) {
        std::cout << "  (token-level finding: no call path)\n";
      } else {
        std::cout << "  call path (root first):\n";
        for (const std::string& step : f.why)
          std::cout << "    " << step << "\n";
      }
    }
    if (!found) {
      std::cerr << "qoslb_lint: no finding matches '" << why_spec << "'\n";
      return 2;
    }
    return 1;  // a matched finding means the tree is not clean
  }

  std::cout << qoslb::lint::format(findings, fix_list);
  if (findings.empty()) {
    std::cerr << "qoslb-lint: clean\n";
    return 0;
  }
  std::cerr << "qoslb-lint: " << findings.size()
            << " finding(s); suppress a deliberate exception with "
               "'// qoslb-lint: allow(QLxxx)'\n";
  return 1;
}
