// qoslb-lint — the determinism-contract static-analysis pass.
//
// Scans a source tree for violations of the conventions the engine's
// bit-identical-replay guarantee rests on (see docs/static-analysis.md) and
// exits non-zero when any are found, so it can gate CI alongside the build
// and sanitizer jobs. Deliberately standalone: std library only, no libclang,
// no dependency on the simulation targets.
//
// Usage:
//   qoslb_lint [--root DIR] [--fix-list] [--list-rules]
//
//   --root DIR    tree to scan (default: current directory)
//   --fix-list    machine-consumable output: rule<TAB>file<TAB>line
//   --list-rules  print the rule table and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: qoslb_lint [--root DIR] [--fix-list] [--list-rules]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool fix_list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--list-rules") {
      for (const qoslb::lint::RuleInfo& rule : qoslb::lint::rules())
        std::cout << rule.id << "  " << rule.summary << "\n";
      return 0;
    } else if (arg == "--fix-list") {
      fix_list = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else {
      std::cerr << "qoslb_lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "qoslb_lint: '" << root << "' is not a directory\n";
    return 2;
  }

  std::vector<qoslb::lint::Finding> findings;
  try {
    findings = qoslb::lint::run({root});
  } catch (const std::exception& e) {
    std::cerr << "qoslb_lint: " << e.what() << "\n";
    return 2;
  }
  std::cout << qoslb::lint::format(findings, fix_list);
  if (findings.empty()) {
    std::cerr << "qoslb-lint: clean\n";
    return 0;
  }
  std::cerr << "qoslb-lint: " << findings.size()
            << " finding(s); suppress a deliberate exception with "
               "'// qoslb-lint: allow(QLxxx)'\n";
  return 1;
}
