#pragma once

#include <vector>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/include_graph.hpp"
#include "tools/lint/lint.hpp"
#include "tools/lint/symbols.hpp"

// The rule layer: every QLxxx check, grouped by the analysis pass it runs
// on. Each group appends raw findings; the orchestrator (lint.cpp) applies
// suppressions and sorts.
namespace qoslb::lint {

/// Everything a rule may consult, built once per run by the orchestrator.
struct Context {
  const Tree& tree;
  const IncludeGraph& includes;
  const SymbolIndex& symbols;
  const CallGraph& calls;
};

/// QL001/QL002/QL003/QL005/QL007/QL010 — per-file token scans over the
/// blanked code view.
void rules_tokens(const Context& ctx, std::vector<Finding>& out);

/// QL004/QL006/QL008/QL009/QL016 — cross-file contract checks (protocol
/// registry, CMake reachability, allowlist staleness, snapshot field
/// pairing, telemetry schema catalog).
void rules_contracts(const Context& ctx, std::vector<Finding>& out);

/// QL011 — include-graph layering over the declared layer map.
void rules_layering(const Context& ctx, std::vector<Finding>& out);

/// QL012/QL013/QL015 — call-graph reachability rules (shared-state writes in
/// the step path, RNG key discipline, hot-path hygiene).
void rules_callgraph(const Context& ctx, std::vector<Finding>& out);

/// QL014 — snapshot coverage audit (struct fields vs serializer field lists).
void rules_snapshot(const Context& ctx, std::vector<Finding>& out);

}  // namespace qoslb::lint
