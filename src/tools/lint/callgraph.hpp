#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/symbols.hpp"

// Pass 4 of the analyzer: a conservative name-based call graph over the
// symbol index. An identifier followed by `(` inside a function body is an
// edge to *every* project function with that name — no overload resolution,
// no virtual dispatch analysis. That over-approximation is exactly what the
// reachability rules (QL012/QL013/QL015) want: a finding is suppressed only
// when no name-plausible path exists, never because dispatch was guessed.
// Calls qualified with `std::` (or any non-project qualifier) are skipped.
namespace qoslb::lint {

class CallGraph {
 public:
  static CallGraph build(const Tree& tree, const SymbolIndex& index);

  /// Callee function indices of `fn` (indices into SymbolIndex::functions()).
  const std::vector<std::size_t>& callees_of(std::size_t fn) const {
    return edges_[fn];
  }

  /// BFS over the call graph from every function whose *name* is in
  /// `root_names`. Returns a parent array sized like functions(): npos for
  /// unreachable functions, the predecessor index for reached ones, and the
  /// function's own index for roots. Reached-ness is `parent[i] != npos`.
  std::vector<std::size_t> reachable_from(
      const SymbolIndex& index,
      const std::vector<std::string>& root_names) const;

  /// Root-to-`fn` call path (function indices) out of a parent array from
  /// reachable_from(); empty when `fn` was not reached.
  static std::vector<std::size_t> path_to(
      const std::vector<std::size_t>& parents, std::size_t fn);

  /// Human-readable `caller -> callee` adjacency (the --graph-dump output).
  std::string dump(const Tree& tree, const SymbolIndex& index) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<std::vector<std::size_t>> edges_;
};

}  // namespace qoslb::lint
