#include "tools/lint/include_graph.hpp"

#include <map>
#include <regex>
#include <sstream>

namespace qoslb::lint {

IncludeGraph IncludeGraph::build(const Tree& tree) {
  // Quoted includes only: angle brackets are system headers, which carry no
  // layering information. The path is read from the raw view — include
  // directives never span lines, and the code view blanks string contents.
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < tree.files.size(); ++i)
    by_rel.emplace(tree.files[i].rel, i);

  IncludeGraph graph;
  graph.edges_.resize(tree.files.size());
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const SourceFile& f = tree.files[i];
    for (std::size_t line = 0; line < f.raw.size(); ++line) {
      std::smatch m;
      if (!std::regex_search(f.raw[line], m, kInclude)) continue;
      IncludeEdge edge;
      edge.line = static_cast<int>(line) + 1;
      edge.target = m[1].str();
      // Resolve against the source root (the repo compiles with src/ as the
      // one include dir, so "core/state.hpp" means src/core/state.hpp).
      const auto it = by_rel.find("src/" + edge.target);
      if (it != by_rel.end()) edge.resolved = it->second;
      graph.edges_[i].push_back(std::move(edge));
    }
  }
  return graph;
}

std::string IncludeGraph::dump(const Tree& tree) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    for (const IncludeEdge& e : edges_[i]) {
      out << tree.files[i].rel << " -> " << e.target << " [line " << e.line
          << (e.resolved == static_cast<std::size_t>(-1) ? ", external" : "")
          << "]\n";
    }
  }
  return out.str();
}

}  // namespace qoslb::lint
