#include <map>
#include <set>
#include <string>

#include "tools/lint/rules.hpp"

namespace qoslb::lint {

namespace {

/// First path segment after src/ — the file's layer ("core", "sim", ...).
/// Empty for files directly under src/ (the umbrella header) and for files
/// outside src/ entirely.
std::string layer_of(const std::string& rel) {
  if (!starts_with(rel, "src/")) return {};
  const std::size_t begin = 4;
  const std::size_t slash = rel.find('/', begin);
  if (slash == std::string::npos) return {};
  return rel.substr(begin, slash - begin);
}

/// Layer of an include target ("core/state.hpp" -> "core"). Targets with no
/// directory component carry no layer information.
std::string target_layer(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return {};
  return target.substr(0, slash);
}

/// The declared layer map: which layers each layer may include. The
/// direction encodes the dependency architecture docs/engine.md describes —
/// the deterministic core sits above the leaf utilities and below the
/// drivers; observation (obs) and the simulation harness (sim) wrap the
/// core from outside, so the core must not reach back into them.
const std::map<std::string, std::set<std::string>>& layer_map() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util", "rng"}},
      {"rng", {"rng", "util"}},
      {"stats", {"stats", "rng", "util"}},
      {"net", {"net", "rng", "util"}},
      {"opt", {"opt", "util"}},
      {"obs", {"obs", "stats", "util"}},
      {"sim", {"sim", "obs", "rng", "util"}},
      {"core", {"core", "net", "rng", "stats", "util"}},
      // tools are drivers: they may include anything.
  };
  return kAllowed;
}

/// The one sanctioned hole in the map: the engine is the orchestration
/// seam where the deterministic core meets the fault/churn harness (sim)
/// and telemetry (obs). Only the engine TU pair and the async engine
/// variants get the wider allowance — core algorithm files do not.
bool engine_exception(const std::string& rel) {
  return rel == "src/core/engine.hpp" || rel == "src/core/engine.cpp" ||
         starts_with(rel, "src/core/async/");
}

std::string format_allowed(const std::set<std::string>& allowed) {
  std::string out;
  for (const std::string& a : allowed) {
    if (!out.empty()) out += ", ";
    out += a;
  }
  return out;
}

}  // namespace

void rules_layering(const Context& ctx, std::vector<Finding>& out) {
  const auto& map = layer_map();
  for (std::size_t i = 0; i < ctx.tree.files.size(); ++i) {
    const SourceFile& f = ctx.tree.files[i];
    const std::string layer = layer_of(f.rel);
    if (layer.empty() || layer == "tools") continue;
    const auto it = map.find(layer);
    if (it == map.end()) continue;  // unmapped layer: no contract declared
    for (const IncludeEdge& e : ctx.includes.edges_of(i)) {
      const std::string to = target_layer(e.target);
      // Only src-relative include paths whose first segment is a known
      // layer participate; quoted system or third-party includes don't.
      if (to.empty() || (map.find(to) == map.end() && to != "tools")) continue;
      std::set<std::string> allowed = it->second;
      if (engine_exception(f.rel)) {
        allowed.insert("sim");
        allowed.insert("obs");
      }
      if (allowed.count(to) != 0) continue;
      out.push_back({"QL011", f.rel, e.line,
                     "include of \"" + e.target + "\" breaks the layer map — " +
                         layer + "/ may include only {" +
                         format_allowed(allowed) +
                         "}; inverted edges let harness state leak into the "
                         "deterministic core (docs/static-analysis.md)"});
    }
  }
}

}  // namespace qoslb::lint
