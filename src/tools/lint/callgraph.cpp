#include "tools/lint/callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <regex>
#include <set>
#include <sstream>

namespace qoslb::lint {

namespace {

/// Call-site candidates share the definition scanner's shape: an optional
/// qualifier, a name, an opening paren.
const std::regex& candidate_regex() {
  static const std::regex kCandidate(
      R"((?:([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_]\w*)\s*\()");
  return kCandidate;
}

/// Member calls spelled like the std container vocabulary (`events.size()`,
/// `buckets_.find(k)`) are overwhelmingly std calls, not calls into project
/// functions that happen to share the name (Value::find and friends). Edges
/// for them would stitch unrelated subsystems into every hot-path walk, so
/// the builder drops member-style calls to these names. The cost is a missed
/// edge if a hot path ever invokes a project method through one of them —
/// acceptable for rules whose findings a human reviews with --why.
bool is_std_container_method(const std::string& name) {
  static const std::set<std::string> kNames = {
      "assign", "at",     "back",    "begin",        "c_str",  "capacity",
      "cbegin", "cend",   "clear",   "count",        "data",   "emplace",
      "emplace_back",     "empty",   "end",          "erase",  "fill",
      "find",   "front",  "insert",  "length",       "load",   "pop",
      "pop_back",         "push",    "push_back",    "rbegin", "rend",
      "reserve", "reset", "resize",  "size",         "store",  "str",
      "substr", "swap",   "top",     "value"};
  return kNames.count(name) != 0;
}

/// True when the candidate at `pos` is written as a member access
/// (`recv.name(` or `recv->name(`).
bool is_member_call(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
  if (i == 0) return false;
  if (text[i - 1] == '.') return true;
  return i >= 2 && text[i - 1] == '>' && text[i - 2] == '-';
}

}  // namespace

CallGraph CallGraph::build(const Tree& tree, const SymbolIndex& index) {
  (void)tree;
  CallGraph graph;
  graph.edges_.resize(index.functions().size());
  for (std::size_t caller = 0; caller < index.functions().size(); ++caller) {
    const FunctionDef& fn = index.functions()[caller];
    const std::string text = index.body(fn);
    std::set<std::size_t> callees;
    const std::regex& re = candidate_regex();
    for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
         it != std::sregex_iterator(); ++it) {
      if ((*it)[1].matched && (*it)[1].str() == "std") continue;
      const std::string name = (*it)[2].str();
      if (name == fn.name) continue;  // self-recursion adds nothing to BFS
      if (is_std_container_method(name) &&
          is_member_call(text, static_cast<std::size_t>(it->position())))
        continue;
      for (const std::size_t callee : index.functions_named(name))
        callees.insert(callee);
    }
    graph.edges_[caller].assign(callees.begin(), callees.end());
  }
  return graph;
}

std::vector<std::size_t> CallGraph::reachable_from(
    const SymbolIndex& index, const std::vector<std::string>& root_names) const {
  std::vector<std::size_t> parents(index.functions().size(), npos);
  std::deque<std::size_t> queue;
  for (const std::string& root : root_names) {
    for (const std::size_t fn : index.functions_named(root)) {
      if (parents[fn] != npos) continue;
      parents[fn] = fn;
      queue.push_back(fn);
    }
  }
  while (!queue.empty()) {
    const std::size_t fn = queue.front();
    queue.pop_front();
    for (const std::size_t callee : edges_[fn]) {
      if (parents[callee] != npos) continue;
      parents[callee] = fn;
      queue.push_back(callee);
    }
  }
  return parents;
}

std::vector<std::size_t> CallGraph::path_to(
    const std::vector<std::size_t>& parents, std::size_t fn) {
  std::vector<std::size_t> path;
  if (fn >= parents.size() || parents[fn] == npos) return path;
  std::size_t cur = fn;
  while (true) {
    path.push_back(cur);
    if (parents[cur] == cur) break;
    cur = parents[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string CallGraph::dump(const Tree& tree, const SymbolIndex& index) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const FunctionDef& fn = index.functions()[i];
    for (const std::size_t callee : edges_[i]) {
      const FunctionDef& to = index.functions()[callee];
      out << tree.files[fn.file].rel << ":" << fn.begin_line << " "
          << (fn.qualifier.empty() ? "" : fn.qualifier + "::") << fn.name
          << " -> " << (to.qualifier.empty() ? "" : to.qualifier + "::")
          << to.name << " [" << tree.files[to.file].rel << ":" << to.begin_line
          << "]\n";
    }
  }
  return out.str();
}

}  // namespace qoslb::lint
