#include <cctype>
#include <regex>
#include <set>
#include <string>

#include "tools/lint/rules.hpp"

namespace qoslb::lint {

namespace {

// The parallel step path: functions the sharded round engine may run
// concurrently against a shared const State. step_users()/step_range() are
// the Protocol hooks; decide_range() is the dense parallel protocol's
// per-chunk worker. commit_round() joins them for QL015 only — it runs
// single-threaded but inside the round loop, so it shares the hot-path
// hygiene contract while legitimately owning the State mutations QL012
// polices.
const std::vector<std::string>& step_roots() {
  static const std::vector<std::string> kRoots = {"step_users", "step_range",
                                                  "decide_range"};
  return kRoots;
}

const std::vector<std::string>& hot_roots() {
  static const std::vector<std::string> kRoots = {
      "step_users", "step_range", "decide_range", "commit_round"};
  return kRoots;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Splits an argument/parameter list at top-level commas (nesting-aware for
/// parens, braces, brackets, and template angle lists).
std::vector<std::string> split_top_level(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  int round = 0;
  int curly = 0;
  int square = 0;
  int angle = 0;
  for (const char c : text) {
    switch (c) {
      case '(': ++round; break;
      case ')': --round; break;
      case '{': ++curly; break;
      case '}': --curly; break;
      case '[': ++square; break;
      case ']': --square; break;
      case '<': ++angle; break;
      case '>':
        if (angle > 0) --angle;
        break;
      default: break;
    }
    if (c == ',' && round == 0 && curly == 0 && square == 0 && angle == 0) {
      parts.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!trim(current).empty() || !parts.empty()) parts.push_back(trim(current));
  return parts;
}

/// The call chain behind a reachability finding, rendered one step per entry.
std::vector<std::string> render_path(const Context& ctx,
                                     const std::vector<std::size_t>& parents,
                                     std::size_t fn) {
  std::vector<std::string> out;
  for (const std::size_t step : CallGraph::path_to(parents, fn)) {
    const FunctionDef& def = ctx.symbols.functions()[step];
    out.push_back(ctx.tree.files[def.file].rel + ":" +
                  std::to_string(def.begin_line) + " " +
                  (def.qualifier.empty() ? "" : def.qualifier + "::") +
                  def.name);
  }
  return out;
}

// ---------------------------------------------------------------------------
// QL012 — shared-state writes inside the parallel step path
// ---------------------------------------------------------------------------

void rule_ql012(const Context& ctx, std::vector<Finding>& out) {
  // Mutation shapes on a State (or raw SoA array) receiver. `.move(` can
  // never be std::move — that call is `::`-qualified, not member access.
  static const std::vector<std::pair<std::regex, const char*>> kMutations = {
      {std::regex(R"(\.\s*move\s*\()"), "State::move()"},
      {std::regex(R"(\.\s*set_resource_live\s*\()"),
       "State::set_resource_live()"},
      {std::regex(R"(\.\s*enable_satisfaction_tracking\s*\()"),
       "State::enable_satisfaction_tracking()"},
      {std::regex(R"(\.\s*loads\s*\[[^\]]*\]\s*=[^=])"),
       "raw write to the loads array"},
      {std::regex(R"(\.\s*assignment\s*\[[^\]]*\]\s*=[^=])"),
       "raw write to the assignment array"},
  };
  const std::vector<std::size_t> parents =
      ctx.calls.reachable_from(ctx.symbols, step_roots());
  for (std::size_t i = 0; i < ctx.symbols.functions().size(); ++i) {
    if (parents[i] == CallGraph::npos) continue;
    const FunctionDef& fn = ctx.symbols.functions()[i];
    const std::vector<std::string>* lines = ctx.symbols.scan_lines(fn.file);
    if (lines == nullptr) continue;
    for (int line = fn.begin_line; line <= fn.end_line; ++line) {
      if (line < 1 || static_cast<std::size_t>(line) > lines->size()) continue;
      const std::string& text = (*lines)[static_cast<std::size_t>(line) - 1];
      for (const auto& [re, what] : kMutations) {
        if (!std::regex_search(text, re)) continue;
        Finding finding{"QL012", ctx.tree.files[fn.file].rel, line,
                        std::string(what) +
                            " reached from the parallel step path "
                            "(step_users/step_range run shard-concurrently "
                            "against a shared State) — stage the change in "
                            "the shard's MigrationBuffer and apply it in "
                            "commit_round()"};
        finding.why = render_path(ctx, parents, i);
        out.push_back(std::move(finding));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL013 — Philox key discipline outside src/rng/
// ---------------------------------------------------------------------------

/// Tokens that mark a key expression as flowing through the keyed-stream
/// helpers. round_rng covers both the RoundRng type's factories and the
/// conventional variable name for one.
bool sanctioned_expr(const std::string& expr) {
  static const std::regex kSanctioned(
      R"(\b(derive_seed|user_stream|substream_key|mix64|round_key|round_rng|RoundRng)\b)");
  return std::regex_search(expr, kSanctioned);
}

/// 0-based position of parameter `id` in a parameter list, or npos.
std::size_t param_position(const std::string& params, const std::string& id) {
  static const std::regex kLastWord(R"(([A-Za-z_]\w*)\s*$)");
  const std::vector<std::string> parts = split_top_level(params);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::string p = parts[i];
    const std::size_t eq = p.find('=');  // default argument
    if (eq != std::string::npos) p = trim(p.substr(0, eq));
    std::smatch m;
    if (std::regex_search(p, m, kLastWord) && m[1].str() == id) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// True when `expr`, evaluated inside function `fn_idx`, provably flows
/// through a sanctioned keying helper: the expression mentions one directly,
/// or it is an identifier whose local initializer does, or it is a parameter
/// whose every discovered call-site argument does (recursing up to `depth`
/// caller hops). Anything unresolvable is NOT sanctioned — the rule is
/// conservative in the flagging direction.
bool key_is_sanctioned(const Context& ctx, std::size_t fn_idx,
                       const std::string& raw_expr, int depth) {
  const std::string expr = trim(raw_expr);
  if (expr.empty()) return false;
  if (sanctioned_expr(expr)) return true;
  static const std::regex kIdent(R"(^[A-Za-z_]\w*$)");
  if (!std::regex_match(expr, kIdent)) return false;
  const FunctionDef& fn = ctx.symbols.functions()[fn_idx];
  const std::string body = ctx.symbols.body(fn);
  // Local initializer: `id = ...;` / `id(...)` / `id{...}` after the
  // declaration's type.
  const std::regex init("\\b" + expr + R"(\s*([=({]))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), init);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    std::string value;
    if (body[at] == '=') {
      const std::size_t semi = body.find(';', at);
      value = body.substr(at + 1, semi == std::string::npos
                                      ? std::string::npos
                                      : semi - at - 1);
    } else {
      const char close = body[at] == '(' ? ')' : '}';
      int nest = 0;
      std::size_t end = at;
      for (; end < body.size(); ++end) {
        if (body[end] == body[at]) ++nest;
        if (body[end] == close && --nest == 0) break;
      }
      if (end < body.size()) value = body.substr(at + 1, end - at - 1);
    }
    if (sanctioned_expr(value)) return true;
  }
  // Parameter: chase the argument at this position through every caller.
  const std::size_t pos = param_position(fn.params, expr);
  if (pos == static_cast<std::size_t>(-1)) return false;
  if (depth <= 0) return false;
  const std::regex call("\\b" + fn.name + R"(\s*\()");
  bool found_site = false;
  for (std::size_t g = 0; g < ctx.symbols.functions().size(); ++g) {
    if (g == fn_idx) continue;
    const auto& callees = ctx.calls.callees_of(g);
    bool calls_fn = false;
    for (const std::size_t c : callees) calls_fn = calls_fn || c == fn_idx;
    if (!calls_fn) continue;
    const std::string caller_body = ctx.symbols.body(ctx.symbols.functions()[g]);
    for (auto it = std::sregex_iterator(caller_body.begin(), caller_body.end(),
                                        call);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open =
          static_cast<std::size_t>(it->position() + it->length()) - 1;
      const std::size_t close = match_paren(caller_body, open);
      if (close == std::string::npos) continue;
      const std::vector<std::string> args =
          split_top_level(caller_body.substr(open + 1, close - open - 1));
      if (pos >= args.size()) continue;
      found_site = true;
      if (!key_is_sanctioned(ctx, g, args[pos], depth - 1)) return false;
    }
  }
  return found_site;
}

void rule_ql013(const Context& ctx, std::vector<Finding>& out) {
  static const std::regex kCtor(R"(\bPhiloxEngine\b\s*(\w+)?\s*\()");
  for (std::size_t fi = 0; fi < ctx.tree.files.size(); ++fi) {
    const SourceFile& f = ctx.tree.files[fi];
    if (!starts_with(f.rel, "src/") || starts_with(f.rel, "src/rng/"))
      continue;
    const std::vector<std::string>* lines = ctx.symbols.scan_lines(fi);
    if (lines == nullptr) continue;
    const std::string text = join(*lines);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCtor);
         it != std::sregex_iterator(); ++it) {
      const int line = line_of(text, static_cast<std::size_t>(it->position()));
      // `PhiloxEngine name(...)` at a definition start is a function
      // returning an engine, not a construction.
      if ((*it)[1].matched) {
        bool is_def = false;
        for (const std::size_t cand :
             ctx.symbols.functions_named((*it)[1].str())) {
          const FunctionDef& d = ctx.symbols.functions()[cand];
          is_def = is_def || (d.file == fi && d.begin_line == line);
        }
        if (is_def) continue;
      }
      const std::size_t open =
          static_cast<std::size_t>(it->position() + it->length()) - 1;
      const std::size_t close = match_paren(text, open);
      if (close == std::string::npos) continue;
      const std::vector<std::string> args =
          split_top_level(text.substr(open + 1, close - open - 1));
      if (args.empty() || args[0].empty()) continue;  // default-constructed
      const FunctionDef* enclosing = ctx.symbols.enclosing_function(fi, line);
      const bool ok =
          enclosing == nullptr
              ? sanctioned_expr(args[0])
              : key_is_sanctioned(
                    ctx,
                    static_cast<std::size_t>(enclosing -
                                             ctx.symbols.functions().data()),
                    args[0], 4);
      if (ok) continue;
      Finding finding{
          "QL013", f.rel, line,
          "PhiloxEngine keyed with '" + args[0] +
              "', which does not flow through derive_seed()/user_stream()/"
              "substream_key()/mix64() — ad-hoc keys collide across "
              "(seed, round, user) substreams and break replay"};
      if (enclosing != nullptr) {
        finding.why = {f.rel + ":" + std::to_string(enclosing->begin_line) +
                       " " + enclosing->name};
      }
      out.push_back(std::move(finding));
    }
  }
}

// ---------------------------------------------------------------------------
// QL015 — hot-path hygiene
// ---------------------------------------------------------------------------

void rule_ql015(const Context& ctx, std::vector<Finding>& out) {
  static const std::vector<std::pair<std::regex, const char*>> kBanned = {
      {std::regex(
           R"(\bstd::(mutex|shared_mutex|recursive_mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b)"),
       "lock acquisition"},
      {std::regex(R"(\bstd::make_unique\b|\bstd::make_shared\b|\bnew\b|\bmalloc\s*\()"),
       "heap allocation"},
      {std::regex(R"(\bthrow\b)"), "throw"},
  };
  const std::vector<std::size_t> parents =
      ctx.calls.reachable_from(ctx.symbols, hot_roots());
  for (std::size_t i = 0; i < ctx.symbols.functions().size(); ++i) {
    if (parents[i] == CallGraph::npos) continue;
    const FunctionDef& fn = ctx.symbols.functions()[i];
    const std::vector<std::string>* lines = ctx.symbols.scan_lines(fn.file);
    if (lines == nullptr) continue;
    for (int line = fn.begin_line; line <= fn.end_line; ++line) {
      if (line < 1 || static_cast<std::size_t>(line) > lines->size()) continue;
      const std::string& text = (*lines)[static_cast<std::size_t>(line) - 1];
      for (const auto& [re, what] : kBanned) {
        if (!std::regex_search(text, re)) continue;
        Finding finding{"QL015", ctx.tree.files[fn.file].rel, line,
                        std::string(what) +
                            " reachable from the per-round hot path "
                            "(step_users/commit_round) — locks serialize the "
                            "shards, allocation and exceptions stall the "
                            "round loop; hoist it to setup or annotate the "
                            "call site with allow(QL015)"};
        finding.why = render_path(ctx, parents, i);
        out.push_back(std::move(finding));
      }
    }
  }
}

}  // namespace

void rules_callgraph(const Context& ctx, std::vector<Finding>& out) {
  rule_ql012(ctx, out);
  rule_ql013(ctx, out);
  rule_ql015(ctx, out);
}

}  // namespace qoslb::lint
