#pragma once

#include <string>
#include <vector>

// qoslb-lint: the repo's determinism-contract static-analysis pass.
//
// The engine's headline guarantee — bit-identical trajectories across
// dense/active execution modes and any thread count — rests on source-level
// conventions (all randomness through per-(seed, round, user) Philox
// substreams, no order-dependent container walks in hot paths, no wall-clock
// reads in the simulation core). This pass encodes those conventions as
// machine-checked rules over the source tree.
//
// v2 grew the single token scanner into a whole-program pipeline:
//   pass 1  lexer.hpp          file discovery + three lexed views per file
//   pass 2  include_graph.hpp  quoted-include graph (QL011 layering)
//   pass 3  symbols.hpp        function/struct index over src/**
//   pass 4  callgraph.hpp      conservative name-based call graph
//   rules   rules.hpp          QL001..QL016 over the four passes
// No libclang: the passes are deliberately simple enough to run anywhere the
// repo builds. See docs/static-analysis.md for the full contract.
namespace qoslb::lint {

/// One registered rule: stable ID (QLxxx) plus a one-line summary.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule, in ID order.
const std::vector<RuleInfo>& rules();

/// One violation. `file` is relative to the scanned root with '/' separators;
/// `line` is 1-based (0 for tree-level findings with no anchor line). For
/// call-graph rules (QL012/QL013/QL015), `why` holds the root-to-finding
/// call chain, one `file:line function` step per entry; empty otherwise.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  std::vector<std::string> why;
};

struct Options {
  /// Root of the tree to scan. Scans *.cpp/*.hpp/*.h/*.cc under it,
  /// skipping build trees (build*, bench-build, CMakeFiles, _deps, .git)
  /// and the checked-in violation fixtures (tests/lint_fixtures).
  std::string root;
};

/// Full analyzer output: the findings plus the graph dumps backing the
/// --graph-dump / --why explainers.
struct Analysis {
  std::vector<Finding> findings;
  std::string include_graph_dump;
  std::string call_graph_dump;
};

/// Runs every pass and every rule over the tree at options.root. Findings
/// are unsuppressed ones only, sorted by (file, line, rule, message). A
/// finding on line L is suppressed by a `// qoslb-lint: allow(QLxxx)`
/// comment on line L or on a directly preceding run of comment-only lines;
/// `// qoslb-lint: allow-file(QLxxx)` anywhere in a file suppresses the rule
/// for the whole file.
Analysis analyze(const Options& options);

/// Findings-only convenience wrapper around analyze().
std::vector<Finding> run(const Options& options);

/// Renders findings in the human `file:line: [QLxxx] message` form, or the
/// machine-consumable `rule<TAB>file<TAB>line` form when `fix_list` is set.
std::string format(const std::vector<Finding>& findings, bool fix_list);

/// Renders findings as a SARIF 2.1.0 log (one run, one result per finding,
/// rule metadata from rules(); artifact URIs are root-relative paths).
std::string sarif(const std::vector<Finding>& findings);

}  // namespace qoslb::lint
