#pragma once

#include <string>
#include <vector>

// qoslb-lint: the repo's determinism-contract static-analysis pass.
//
// The engine's headline guarantee — bit-identical trajectories across
// dense/active execution modes and any thread count — rests on source-level
// conventions (all randomness through per-(seed, round, user) Philox
// substreams, no order-dependent container walks in hot paths, no wall-clock
// reads in the simulation core). This pass encodes those conventions as
// machine-checked rules over the source tree: a token-level scan (comments
// and string literals stripped) plus lightweight cross-file contract checks.
// No libclang: the rules are deliberately simple enough to run anywhere the
// repo builds. See docs/static-analysis.md for the full contract.
namespace qoslb::lint {

/// One registered rule: stable ID (QLxxx) plus a one-line summary.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule, in ID order.
const std::vector<RuleInfo>& rules();

/// One violation. `file` is relative to the scanned root with '/' separators;
/// `line` is 1-based (0 for tree-level findings with no anchor line).
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct Options {
  /// Root of the tree to scan. Scans *.cpp/*.hpp/*.h/*.cc under it,
  /// skipping build trees (build*, bench-build, CMakeFiles, _deps, .git)
  /// and the checked-in violation fixtures (tests/lint_fixtures).
  std::string root;
};

/// Scans the tree and returns all unsuppressed findings sorted by
/// (file, line, rule). A finding on line L is suppressed by a
/// `// qoslb-lint: allow(QLxxx)` comment on line L or on a directly
/// preceding comment-only line; `// qoslb-lint: allow-file(QLxxx)` anywhere
/// in a file suppresses the rule for the whole file.
std::vector<Finding> run(const Options& options);

/// Renders findings in the human `file:line: [QLxxx] message` form, or the
/// machine-consumable `rule<TAB>file<TAB>line` form when `fix_list` is set.
std::string format(const std::vector<Finding>& findings, bool fix_list);

}  // namespace qoslb::lint
