#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tools/lint/lexer.hpp"

// Pass 3 of the analyzer: the symbol index. Scans the blanked code view of
// every src/** file for function definitions and struct/class field lists —
// no libclang, just the same balanced-delimiter heuristics the QL008 snapshot
// checker has always used, generalized to the whole tree. Preprocessor lines
// are blanked before scanning, so macro *bodies* (QOSLB_REQUIRE and friends)
// are invisible: a macro-mediated throw is part of the check-macro contract,
// not of the function that invokes it (docs/static-analysis.md).
namespace qoslb::lint {

/// One function (or method) definition: a name, a balanced parameter list,
/// and a `{` before any `;`. `qualifier` is the class for out-of-line
/// `Class::method` definitions, empty otherwise. Lines are 1-based and
/// inclusive; the range covers signature through closing brace.
struct FunctionDef {
  std::string name;
  std::string qualifier;
  std::size_t file = 0;  // index into Tree::files
  int begin_line = 0;
  int end_line = 0;
  std::string params;  // parameter list text, parens stripped
};

/// One data member of a struct/class body, with its snapshot-coverage
/// annotations (`// qoslb-snapshot: transient` / `// qoslb-snapshot:
/// as(field)` on the member's line or a directly preceding comment line).
struct FieldDef {
  std::string name;
  int line = 0;
  bool transient = false;
  std::string serialized_as;  // from as(...); empty = derive from the name
};

/// One struct/class definition with its parsed field list. Only plain data
/// members parse as fields; anything with a parameter list (after blanking
/// template argument lists) is a method and is skipped.
struct StructDef {
  std::string name;
  std::size_t file = 0;
  int begin_line = 0;
  int end_line = 0;
  std::vector<FieldDef> fields;
};

/// Blanks preprocessor lines (`#...` plus backslash continuations) out of a
/// code view, preserving line count. The def/call scanners run on this, so
/// `#define` bodies never register as definitions or call sites.
std::vector<std::string> strip_preprocessor(
    const std::vector<std::string>& code);

class SymbolIndex {
 public:
  /// Scans every file under src/ in the tree (fixture trees ship their own
  /// src/; the real tests/ and bench/ trees are deliberately out of scope —
  /// the symbol rules guard the library, not its harnesses).
  static SymbolIndex build(const Tree& tree);

  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<StructDef>& structs() const { return structs_; }

  /// Indices of every function named `name` (conservative name-based
  /// resolution: overloads and same-named methods all match).
  std::vector<std::size_t> functions_named(const std::string& name) const;

  const StructDef* struct_named(const std::string& name) const;

  /// The preprocessor-stripped code view of a scanned file, or nullptr when
  /// the file was outside the index's scope.
  const std::vector<std::string>* scan_lines(std::size_t file) const;

  /// Joined scan-view text of a definition, signature through closing brace.
  std::string body(const FunctionDef& fn) const;

  /// The innermost definition in `file` whose line range contains `line`,
  /// or nullptr.
  const FunctionDef* enclosing_function(std::size_t file, int line) const;

  /// The struct in `file` whose body contains `line`, or nullptr.
  const StructDef* enclosing_struct(std::size_t file, int line) const;

 private:
  std::vector<FunctionDef> functions_;
  std::vector<StructDef> structs_;
  std::map<std::size_t, std::vector<std::string>> scan_;
  std::multimap<std::string, std::size_t> by_name_;
};

}  // namespace qoslb::lint
