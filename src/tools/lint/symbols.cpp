#include "tools/lint/symbols.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace qoslb::lint {

namespace {

/// Names that look like `name (...)` in code but never start a definition.
bool is_control_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",   "switch",        "return",
      "catch",    "sizeof",   "alignof", "decltype",      "noexcept",
      "new",      "delete",   "throw",   "static_assert", "alignas",
      "defined",  "typeid",   "assert",  "co_await",      "co_return",
      "co_yield", "requires", "else",    "case",          "do",
  };
  return kKeywords.count(name) != 0;
}

bool is_access_specifier(const std::string& word) {
  return word == "public" || word == "private" || word == "protected";
}

/// True when the candidate at `pos` sits in a constructor member-init list
/// (`: member_(...)` / `, member_(...)`) rather than starting a definition.
/// A lone `:` is allowed only when it closes an access specifier.
bool in_member_init_list(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
  if (i == 0) return false;
  const char prev = text[i - 1];
  if (prev == ',') return true;
  if (prev != ':') return false;
  if (i >= 2 && text[i - 2] == ':') return false;  // `::` — qualified name
  std::size_t w = i - 1;
  while (w > 0 && std::isspace(static_cast<unsigned char>(text[w - 1]))) --w;
  std::size_t begin = w;
  while (begin > 0 &&
         (std::isalnum(static_cast<unsigned char>(text[begin - 1])) ||
          text[begin - 1] == '_'))
    --begin;
  return !is_access_specifier(text.substr(begin, w - begin));
}

/// Advances past a balanced `(...)` group starting at `open`; returns the
/// index of the closing paren, or npos.
std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_brace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Blanks balanced template argument lists (`<...>`) so a `(` inside one —
/// e.g. `std::function<void(const SnapshotV1&)>` — cannot make a data
/// member look like a method declaration. Conservative: an unbalanced `<`
/// (a real less-than) leaves the text untouched past it.
std::string blank_template_args(const std::string& text) {
  std::string out = text;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (c == '<') {
      stack.push_back(i);
    } else if (c == '>') {
      if (!stack.empty()) {
        const std::size_t open = stack.back();
        stack.pop_back();
        if (stack.empty())
          for (std::size_t j = open; j <= i; ++j) out[j] = ' ';
      }
    } else if (c == ';' || c == '=') {
      stack.clear();
    }
  }
  return out;
}

/// Statement-level annotation lookup: scans the comments view on `line` and
/// directly preceding comment-only lines for `qoslb-snapshot:` directives.
void read_snapshot_annotation(const SourceFile& f, int line, FieldDef& field) {
  static const std::regex kDirective(
      R"(qoslb-snapshot:\s*(transient|as\(\s*(\w+)\s*\)))");
  const auto apply = [&](const std::string& comment) {
    std::smatch m;
    if (!std::regex_search(comment, m, kDirective)) return false;
    if (m[1].str() == "transient")
      field.transient = true;
    else
      field.serialized_as = m[2].str();
    return true;
  };
  if (line < 1 || static_cast<std::size_t>(line) > f.comments.size()) return;
  std::size_t i = static_cast<std::size_t>(line) - 1;
  if (apply(f.comments[i])) return;
  const auto blank = [&](std::size_t k) {
    const std::string& s = f.code[k];
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isspace(c) != 0;
    });
  };
  while (i > 0 && blank(i - 1)) {
    --i;
    if (apply(f.comments[i])) return;
  }
}

/// Parses the data members out of one class body (text between the class's
/// braces, exclusive). Statements accumulate at body depth 0 and are
/// classified at their `;`; a brace at depth 0 (an inline method body or a
/// nested type) poisons the current statement, which is discarded when the
/// brace closes. Access-specifier labels stay in the buffer and are stripped
/// at classification time.
void parse_fields(const SourceFile& f, const std::string& body_text,
                  int body_begin_line, StructDef& out) {
  static const std::regex kName(R"(([A-Za-z_]\w*)\s*$)");
  std::string statement;
  int depth = 0;
  int line = body_begin_line;
  for (const char c : body_text) {
    if (c == '\n') ++line;
    if (depth > 0) {
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) statement.clear();
      continue;
    }
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c != ';') {
      if (!std::isspace(static_cast<unsigned char>(c)) || !statement.empty())
        statement += c;
      continue;
    }
    std::string decl = statement;
    statement.clear();
    const int at = line;
    for (const char* label : {"public:", "private:", "protected:"}) {
      const std::size_t p = decl.rfind(label);
      if (p != std::string::npos)
        decl = decl.substr(p + std::string(label).size());
    }
    const std::size_t eq = decl.find('=');
    if (eq != std::string::npos) decl = decl.substr(0, eq);
    decl = blank_template_args(decl);
    // Anything with a parameter list, a destructor tilde, or a non-member
    // keyword is not a plain data member.
    if (decl.find('(') != std::string::npos) continue;
    if (decl.find('~') != std::string::npos) continue;
    bool skip = false;
    for (const char* kw : {"using ", "typedef ", "static ", "friend ",
                           "enum ", "struct ", "class ", "operator"})
      if (decl.find(kw) != std::string::npos) skip = true;
    if (skip) continue;
    while (!decl.empty() &&
           std::isspace(static_cast<unsigned char>(decl.back())))
      decl.pop_back();
    // The final identifier is the member name; require a preceding type.
    std::smatch m;
    if (!std::regex_search(decl, m, kName)) continue;
    if (m.position() == 0) continue;
    const std::string head = decl.substr(0, static_cast<std::size_t>(m.position()));
    if (head.find_first_not_of(" \t\n&*") == std::string::npos) continue;
    FieldDef field;
    field.name = m[1].str();
    field.line = at;
    read_snapshot_annotation(f, at, field);
    out.fields.push_back(std::move(field));
  }
}

}  // namespace

std::vector<std::string> strip_preprocessor(
    const std::vector<std::string>& code) {
  std::vector<std::string> out = code;
  bool continued = false;
  for (std::string& s : out) {
    const bool is_directive = [&] {
      for (const char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        return c == '#';
      }
      return false;
    }();
    const bool blank_it = continued || is_directive;
    continued = blank_it && !s.empty() && s.back() == '\\';
    if (blank_it) s.assign(s.size(), ' ');
  }
  return out;
}

SymbolIndex SymbolIndex::build(const Tree& tree) {
  static const std::regex kCandidate(
      R"((?:([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_]\w*)\s*\()");
  static const std::regex kStruct(
      R"((\benum\s+)?\b(?:struct|class)\s+([A-Za-z_]\w*)\b([^;{}()]*)\{)");
  SymbolIndex index;
  for (std::size_t fi = 0; fi < tree.files.size(); ++fi) {
    const SourceFile& f = tree.files[fi];
    if (!starts_with(f.rel, "src/")) continue;
    std::vector<std::string> scan = strip_preprocessor(f.code);
    const std::string text = join(scan);

    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCandidate);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[2].str();
      if (is_control_keyword(name)) continue;
      const auto pos = static_cast<std::size_t>(it->position());
      if (in_member_init_list(text, pos)) continue;
      const std::size_t open = pos + it->length() - 1;
      const std::size_t close = match_paren(text, open);
      if (close == std::string::npos) continue;
      // A definition has `{` before `;` after its parameter list (possibly
      // through const/noexcept/override/trailing-return/init-list tokens).
      std::size_t i = close + 1;
      bool body = false;
      for (; i < text.size(); ++i) {
        if (text[i] == '{') {
          body = true;
          break;
        }
        if (text[i] == ';' || text[i] == '}') break;
        // A bare `)` means the candidate's parens were nested inside an
        // enclosing group — `while (!q.empty()) {` is not a definition of
        // `empty` — because match_paren consumed every balanced group.
        if (text[i] == ')') break;
        if (text[i] == '(') {  // init-list member: skip its argument group
          const std::size_t inner = match_paren(text, i);
          if (inner == std::string::npos) break;
          i = inner;
        }
      }
      if (!body) continue;
      const std::size_t end = match_brace(text, i);
      if (end == std::string::npos) continue;
      FunctionDef def;
      def.name = name;
      def.qualifier = (*it)[1].matched ? (*it)[1].str() : "";
      def.file = fi;
      def.begin_line = line_of(text, pos);
      def.end_line = line_of(text, end);
      def.params = text.substr(open + 1, close - open - 1);
      index.by_name_.emplace(def.name, index.functions_.size());
      index.functions_.push_back(std::move(def));
    }

    for (auto it = std::sregex_iterator(text.begin(), text.end(), kStruct);
         it != std::sregex_iterator(); ++it) {
      if ((*it)[1].matched) continue;  // enum class
      const auto open =
          static_cast<std::size_t>(it->position() + it->length() - 1);
      const std::size_t close = match_brace(text, open);
      if (close == std::string::npos) continue;
      StructDef def;
      def.name = (*it)[2].str();
      def.file = fi;
      def.begin_line = line_of(text, it->position());
      def.end_line = line_of(text, close);
      parse_fields(f, text.substr(open + 1, close - open - 1),
                   line_of(text, open + 1), def);
      index.structs_.push_back(std::move(def));
    }

    index.scan_.emplace(fi, std::move(scan));
  }
  return index;
}

std::vector<std::size_t> SymbolIndex::functions_named(
    const std::string& name) const {
  std::vector<std::size_t> out;
  const auto [begin, end] = by_name_.equal_range(name);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

const StructDef* SymbolIndex::struct_named(const std::string& name) const {
  for (const StructDef& s : structs_)
    if (s.name == name) return &s;
  return nullptr;
}

const std::vector<std::string>* SymbolIndex::scan_lines(
    std::size_t file) const {
  const auto it = scan_.find(file);
  return it == scan_.end() ? nullptr : &it->second;
}

std::string SymbolIndex::body(const FunctionDef& fn) const {
  const std::vector<std::string>* lines = scan_lines(fn.file);
  if (lines == nullptr) return {};
  return join_range(*lines, DefRange{fn.begin_line, fn.end_line});
}

const FunctionDef* SymbolIndex::enclosing_function(std::size_t file,
                                                   int line) const {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : functions_) {
    if (fn.file != file || line < fn.begin_line || line > fn.end_line)
      continue;
    if (best == nullptr || fn.begin_line > best->begin_line) best = &fn;
  }
  return best;
}

const StructDef* SymbolIndex::enclosing_struct(std::size_t file,
                                               int line) const {
  const StructDef* best = nullptr;
  for (const StructDef& s : structs_) {
    if (s.file != file || line < s.begin_line || line > s.end_line) continue;
    if (best == nullptr || s.begin_line > best->begin_line) best = &s;
  }
  return best;
}

}  // namespace qoslb::lint
