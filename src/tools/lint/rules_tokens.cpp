#include <filesystem>
#include <regex>
#include <set>
#include <utility>

#include "tools/lint/rules.hpp"

namespace qoslb::lint {

namespace {

namespace fs = std::filesystem;

struct Pattern {
  std::regex re;
  std::string what;  // human name of the banned construct
};

void scan_patterns(const SourceFile& f, const std::vector<Pattern>& patterns,
                   const char* rule, const std::string& message_suffix,
                   std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Pattern& p : patterns) {
      if (std::regex_search(f.code[i], p.re)) {
        out.push_back({rule, f.rel, static_cast<int>(i) + 1,
                       p.what + message_suffix});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL001 — unkeyed randomness outside src/rng/
// ---------------------------------------------------------------------------

void rule_ql001(const SourceFile& f, std::vector<Finding>& out) {
  if (starts_with(f.rel, "src/rng/")) return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bstd::mt19937)"), "std::mt19937"},
      {std::regex(R"(\bstd::random_device\b)"), "std::random_device"},
      {std::regex(R"(\bstd::default_random_engine\b)"),
       "std::default_random_engine"},
      {std::regex(R"(\bstd::minstd_rand)"), "std::minstd_rand"},
      {std::regex(R"(\bstd::shuffle\b)"), "std::shuffle"},
      {std::regex(R"(\bstd::sample\b)"), "std::sample"},
      {std::regex(R"((^|[^:\w])s?rand\s*\()"), "rand()/srand()"},
  };
  scan_patterns(f, kBanned, "QL001",
                " outside src/rng/ — draw from the per-(seed, round, user) "
                "Philox substreams (rng/round_rng.hpp) instead",
                out);
}

// ---------------------------------------------------------------------------
// QL002 — unordered-container iteration in determinism-critical files
// ---------------------------------------------------------------------------

bool ql002_applies(const std::string& rel) {
  return starts_with(rel, "src/core/protocols/") ||
         rel == "src/core/engine.cpp" || rel == "src/core/engine.hpp" ||
         rel == "src/sim/parallel_round_engine.hpp" ||
         rel == "src/sim/parallel_round_engine.cpp" ||
         rel == "src/core/satisfaction_index.hpp";
}

void rule_ql002(const SourceFile& f, std::vector<Finding>& out) {
  if (!ql002_applies(f.rel)) return;
  // Pass 1: names declared (or bound) as unordered containers in this file.
  static const std::regex kDecl(
      R"((?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;={(])");
  std::set<std::string> unordered_names;
  for (const std::string& line : f.code) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      unordered_names.insert((*it)[1].str());
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for over, or begin()/end() on, any of those names. Bucket
  // order is implementation- and size-defined, so any walk is a
  // platform-dependent result order in a file that must replay exactly.
  static const std::regex kRangeFor(R"(for\s*\([^;:()]*:\s*(\w+)\s*\))");
  static const std::regex kBegin(R"((\w+)\s*\.\s*c?(?:begin|end|rbegin)\s*\()");
  const std::string suffix =
      "' — hash-order walk in a determinism-critical file; use a sorted "
      "container or an index-ordered vector";
  const std::vector<std::pair<const std::regex*, const char*>> kIteration = {
      {&kRangeFor, "range-for over unordered '"},
      {&kBegin, "iterator walk of unordered '"},
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const auto& [re, what] : kIteration) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), *re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name)) {
          out.push_back({"QL002", f.rel, static_cast<int>(i) + 1,
                         what + name + suffix});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL003 — wall-clock and environment reads in src/core/ and src/sim/
// ---------------------------------------------------------------------------

void rule_ql003(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "std::chrono::high_resolution_clock"},
      {std::regex(R"((^|[^:\w])time\s*\()"), "time()"},
      {std::regex(R"(\bgettimeofday\b)"), "gettimeofday()"},
      {std::regex(R"(\bclock_gettime\b)"), "clock_gettime()"},
      {std::regex(R"(\bgetenv\s*\()"), "getenv()"},
  };
  scan_patterns(f, kBanned, "QL003",
                " in the simulation core — results must be a pure function "
                "of (instance, seed, config); timing belongs in bench/",
                out);
  // A deprecated shim under util/ once re-exported the steady-clock
  // Stopwatch; the rule keeps rejecting the include path so the shim can
  // never quietly come back.
  static const std::regex kTimerInclude(
      R"(#\s*include\s*[<"]util/timer\.hpp[>"])");
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (std::regex_search(f.raw[i], kTimerInclude)) {
      out.push_back({"QL003", f.rel, static_cast<int>(i) + 1,
                     "util/timer.hpp included in the simulation core — "
                     "timing belongs in bench/"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL005 — float accumulation in the potential / satisfaction accounting
// ---------------------------------------------------------------------------

bool ql005_applies(const std::string& rel) {
  if (!starts_with(rel, "src/")) return false;
  const std::string base = fs::path(rel).filename().string();
  return starts_with(base, "potential.") || starts_with(base, "satisfaction");
}

void rule_ql005(const SourceFile& f, std::vector<Finding>& out) {
  if (!ql005_applies(f.rel)) return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bfloat\b)"), "float"},
  };
  scan_patterns(f, kBanned, "QL005",
                " in potential/satisfaction accounting — 24-bit mantissas "
                "drift under reordering; use double or std::int64_t",
                out);
}

// ---------------------------------------------------------------------------
// QL007 — steady-clock reads outside src/obs/
// ---------------------------------------------------------------------------

void rule_ql007(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/")) return;
  if (starts_with(f.rel, "src/obs/")) return;
  // obs::SteadyClock::now() is the single sanctioned steady-clock read in
  // src/; every other layer takes an injected obs::Clock* so telemetry can
  // be timed without the simulation path ever touching a real clock.
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bsteady_clock\b)"), "std::chrono::steady_clock"},
  };
  scan_patterns(f, kBanned, "QL007",
                " outside src/obs/ — read time through an injected "
                "obs::Clock (obs/clock.hpp) so telemetry stays off the "
                "simulation path",
                out);
  // Stricter inside the deterministic core: even the obs wrapper may not be
  // *constructed* there — the core receives its Clock via
  // EngineConfig::telemetry, injected by a tool or bench.
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  static const std::vector<Pattern> kBannedCore = {
      {std::regex(R"(\bSteadyClock\b)"), "obs::SteadyClock"},
  };
  scan_patterns(f, kBannedCore, "QL007",
                " named in the simulation core — the core must receive its "
                "Clock through EngineConfig::telemetry, never instantiate a "
                "wall clock itself",
                out);
}

// ---------------------------------------------------------------------------
// QL010 — thread spawning inside the simulation core
// ---------------------------------------------------------------------------

void rule_ql010(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  // The persistent pool is the single sanctioned spawn site: it creates its
  // workers once and parks them between rounds, which is exactly the
  // per-round spawn cost this rule exists to keep out of the round loop.
  const std::string base = fs::path(f.rel).filename().string();
  if (starts_with(base, "worker_pool.")) return;
  // `std::thread` followed by `::` is a static member access
  // (std::thread::hardware_concurrency, std::thread::id) — reading those is
  // fine; constructing a thread is not. `std::this_thread` never matches
  // (the literal is `std::thread`).
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bstd::thread\b(?!\s*::))"), "std::thread construction"},
      {std::regex(R"(\bstd::jthread\b)"), "std::jthread"},
      {std::regex(R"(\bstd::async\b)"), "std::async"},
      {std::regex(R"(\bpthread_create\b)"), "pthread_create"},
  };
  scan_patterns(f, kBanned, "QL010",
                " in the simulation core — per-round code must hand work to "
                "the persistent RoundWorkerPool (sim/worker_pool.hpp); "
                "spawning threads per round is the dispatch overhead the "
                "pool exists to eliminate",
                out);
}

}  // namespace

void rules_tokens(const Context& ctx, std::vector<Finding>& out) {
  for (const SourceFile& f : ctx.tree.files) {
    rule_ql001(f, out);
    rule_ql002(f, out);
    rule_ql003(f, out);
    rule_ql005(f, out);
    rule_ql007(f, out);
    rule_ql010(f, out);
  }
}

}  // namespace qoslb::lint
