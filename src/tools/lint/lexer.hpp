#pragma once

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

// Pass 1 of the analyzer (docs/static-analysis.md): file discovery and
// lexing. One walk of the tree produces every artifact the later passes
// share — the lexed source files *and* the CMakeLists.txt list — so the
// include-graph builder and QL004's reachability scan can never disagree
// about which files exist or scan a build tree twice.
namespace qoslb::lint {

/// A scanned source file. `code` is the file with comments and string/char
/// literal contents blanked (delimiters kept), so token rules never fire on
/// prose or on a pattern quoted inside a string; `comments` holds the
/// comment text per line, which is where suppression directives and
/// `qoslb-snapshot:` annotations live; `raw` is the file verbatim, used by
/// rules that must see `#include` paths and serialized-field string
/// literals.
struct SourceFile {
  std::string rel;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comments;
  std::set<std::string> allow_file;          // rules allowed file-wide
  std::vector<std::set<std::string>> allow;  // rules allowed per line
};

/// Everything one discovery pass found: the lexed sources (sorted by rel
/// path) plus every CMakeLists.txt. Built once per run; every later pass —
/// include graph, symbol index, call graph, token rules — reads this.
struct Tree {
  std::filesystem::path root;
  std::vector<SourceFile> files;
  std::vector<std::filesystem::path> cmake_lists;
};

/// Walks `root` collecting the Tree: *.cpp/*.hpp/*.h/*.cc/*.cxx/*.hh files,
/// skipping build trees (build*, bench-build, CMakeFiles, _deps, .git) and
/// the checked-in violation fixtures (tests/lint_fixtures).
Tree collect_tree(const std::filesystem::path& root);

/// Single-pass lexer producing the code/comment views. Handles //, /* */,
/// "..." and '...' with escapes, and R"delim(...)delim" raw strings.
void lex(const std::string& text, std::string& code_out,
         std::string& comments_out);

std::vector<std::string> split_lines(const std::string& text);
std::string read_file(const std::filesystem::path& p);
std::string to_rel(const std::filesystem::path& p,
                   const std::filesystem::path& root);

bool starts_with(const std::string& s, const std::string& prefix);
std::string join(const std::vector<std::string>& lines);
int line_of(const std::string& text, std::size_t pos);

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& rel);

/// True when a finding at 1-based `line` for `rule` is suppressed: the rule
/// is allowed file-wide, on the line itself, or on a directly preceding run
/// of comment-only lines.
bool suppressed(const SourceFile& f, int line, const std::string& rule);

/// 1-based inclusive line range of a function definition's full text.
struct DefRange {
  int begin_line = 0;
  int end_line = 0;
};

/// Locates the first *definition* (not declaration or call) of `fn_name` in
/// the blanked code text: the name, a balanced parameter list, then a `{`
/// before any `;`. String contents are already blanked, so brace matching
/// cannot be confused by quoted braces.
std::optional<DefRange> find_definition(const std::string& code_text,
                                        const std::string& fn_name);

std::string join_range(const std::vector<std::string>& lines,
                       const DefRange& range);

/// Serialized field names mentioned in a raw text span: every string literal
/// (comments and char literals skipped) whose content — after trimming a
/// trailing separator space — is a single lowercase identifier.
/// `"assignment "` names the field `assignment`; prose never matches.
std::set<std::string> string_literal_fields(const std::string& raw_span);

}  // namespace qoslb::lint
