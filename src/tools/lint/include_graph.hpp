#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/lexer.hpp"

// Pass 2 of the analyzer: the quoted-include graph over the scanned tree.
// Built from the same Tree the file-discovery pass produced (so it can
// never disagree with QL004's CMake reachability scan about which files
// exist), it feeds the QL011 layering rule and the --graph-dump explainer.
namespace qoslb::lint {

/// One `#include "..."` directive. `target` is the include path verbatim
/// (e.g. "core/state.hpp"); `resolved` is the index of the matching
/// SourceFile in the tree (npos when the include names a file outside the
/// scanned tree, e.g. a system header spelled with quotes).
struct IncludeEdge {
  int line = 0;
  std::string target;
  std::size_t resolved = static_cast<std::size_t>(-1);
};

/// Per-file quoted-include edges, indexed parallel to Tree::files.
class IncludeGraph {
 public:
  static IncludeGraph build(const Tree& tree);

  const std::vector<IncludeEdge>& edges_of(std::size_t file) const {
    return edges_[file];
  }
  std::size_t num_files() const { return edges_.size(); }

  /// Human-readable edge list: one `file -> target [line N]` row per edge,
  /// sorted by file then line (the --graph-dump output).
  std::string dump(const Tree& tree) const;

 private:
  std::vector<std::vector<IncludeEdge>> edges_;
};

}  // namespace qoslb::lint
