#include <map>
#include <set>
#include <string>

#include "tools/lint/rules.hpp"

namespace qoslb::lint {

namespace {

/// Structs serialized by the free checkpoint functions
/// (write_snapshot/read_snapshot in core/snapshot.cpp) rather than by member
/// hooks of their own. Their field vocabulary is the union of every field
/// keyword those functions emit.
const std::set<std::string>& table_audited() {
  static const std::set<std::string> kStructs = {
      "State",      "EngineConfig", "ChurnTracker",
      "SnapshotV1", "Counters",     "ChurnStats",
  };
  return kStructs;
}

/// Field keywords written/read inside one function definition, off the raw
/// view (string literals carry the on-disk field names).
std::set<std::string> def_fields(const Context& ctx, const FunctionDef& fn) {
  const SourceFile& f = ctx.tree.files[fn.file];
  return string_literal_fields(
      join_range(f.raw, DefRange{fn.begin_line, fn.end_line}));
}

/// The serialized name a member maps to: the as(...) annotation if present,
/// else the member name with one trailing underscore stripped.
std::string serialized_key(const FieldDef& field) {
  if (!field.serialized_as.empty()) return field.serialized_as;
  std::string key = field.name;
  if (!key.empty() && key.back() == '_') key.pop_back();
  return key;
}

void audit_struct(const Context& ctx, const StructDef& s,
                  const std::set<std::string>& vocabulary,
                  const std::string& serializer_desc,
                  std::vector<Finding>& out) {
  for (const FieldDef& field : s.fields) {
    if (field.transient) continue;
    const std::string key = serialized_key(field);
    if (vocabulary.count(key) != 0) continue;
    out.push_back(
        {"QL014", ctx.tree.files[s.file].rel, field.line,
         "member '" + field.name + "' of " + s.name + " is not written by " +
             serializer_desc + " (no '" + key +
             "' field) and not annotated '// qoslb-snapshot: transient' — a "
             "checkpoint restore would silently lose it (use "
             "'// qoslb-snapshot: as(name)' when the on-disk field is named "
             "differently)"});
  }
}

}  // namespace

void rules_snapshot(const Context& ctx, std::vector<Finding>& out) {
  // Member-hook serializers: struct S is audited against its own
  // S::snapshot_write/snapshot_read pair (out-of-line via the qualifier, or
  // inline via line containment).
  std::map<std::string, std::set<std::string>> member_vocab;
  std::set<std::string> member_audited;
  for (const FunctionDef& fn : ctx.symbols.functions()) {
    if (fn.name != "snapshot_write" && fn.name != "snapshot_read") continue;
    std::string owner = fn.qualifier;
    if (owner.empty()) {
      const StructDef* s =
          ctx.symbols.enclosing_struct(fn.file, fn.begin_line);
      if (s == nullptr) continue;
      owner = s->name;
    }
    member_audited.insert(owner);
    const std::set<std::string> fields = def_fields(ctx, fn);
    member_vocab[owner].insert(fields.begin(), fields.end());
  }

  // Free-function vocabulary for the table-audited structs.
  std::set<std::string> free_vocab;
  bool free_serializer_seen = false;
  for (const FunctionDef& fn : ctx.symbols.functions()) {
    if (fn.name != "write_snapshot" && fn.name != "read_snapshot") continue;
    free_serializer_seen = true;
    const std::set<std::string> fields = def_fields(ctx, fn);
    free_vocab.insert(fields.begin(), fields.end());
  }

  for (const StructDef& s : ctx.symbols.structs()) {
    if (member_audited.count(s.name) != 0) {
      audit_struct(ctx, s, member_vocab[s.name],
                   s.name + "::snapshot_write/snapshot_read", out);
    } else if (free_serializer_seen && table_audited().count(s.name) != 0) {
      audit_struct(ctx, s, free_vocab, "write_snapshot/read_snapshot", out);
    }
  }
}

}  // namespace qoslb::lint
