#include "tools/lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/lint/callgraph.hpp"
#include "tools/lint/include_graph.hpp"
#include "tools/lint/rules.hpp"
#include "tools/lint/symbols.hpp"

// The orchestrator: one file-discovery pass builds the Tree, the three
// derived passes (include graph, symbol index, call graph) build on it, and
// every rule group runs over the shared Context. Suppression filtering and
// canonical ordering happen here, once, for all rules.
namespace qoslb::lint {

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"QL001",
       "unkeyed randomness (rand, mt19937, random_device, shuffle, sample) "
       "outside src/rng/"},
      {"QL002",
       "unordered_map/set iteration in determinism-critical files "
       "(protocols, engine, parallel round engine, satisfaction index)"},
      {"QL003",
       "wall-clock or environment reads (system_clock, time(), getenv) in "
       "src/core/ or src/sim/"},
      {"QL004",
       "cross-file contract: registry active_set entries must define "
       "step_users()/active_set_compatible(); every src/**/*.cpp must be "
       "reachable from a CMakeLists.txt"},
      {"QL005",
       "float arithmetic in potential.* / satisfaction* accounting"},
      {"QL006", "stale paths in .clang-format-allowlist"},
      {"QL007",
       "steady-clock reads outside src/obs/ (and obs::SteadyClock "
       "instantiation anywhere in src/core/ or src/sim/)"},
      {"QL008",
       "snapshot serializer/deserializer field-list contract: every field "
       "written by snapshot_write/write_snapshot must be read by its "
       "snapshot_read/read_snapshot counterpart, and vice versa"},
      {"QL009",
       "cross-file contract: registry restricted entries must construct "
       "classes whose restricted_assignment_compatible() returns true (and "
       "vice versa), and restricted step_users() protocols must sample via "
       "sample_reachable()/reachable_target()"},
      {"QL010",
       "thread spawning (std::thread construction, std::jthread, std::async, "
       "pthread_create) in src/core/ or src/sim/ outside "
       "sim/worker_pool.* — rounds must run on the persistent worker pool"},
      {"QL011",
       "include-graph layering: each src/ layer may include only the layers "
       "below it in the declared map (engine.{hpp,cpp} and core/async/ are "
       "the sanctioned core->sim/obs orchestration seam)"},
      {"QL012",
       "shared-state write reachable from the parallel step path "
       "(step_users/step_range) — migrations must stage in MigrationBuffer "
       "and apply in commit_round()"},
      {"QL013",
       "PhiloxEngine construction outside src/rng/ whose key does not flow "
       "through derive_seed()/user_stream()/substream_key()/mix64()"},
      {"QL014",
       "snapshot coverage: every persistent member of a serialized struct "
       "must be written by its serializer or annotated "
       "'// qoslb-snapshot: transient' / 'as(name)'"},
      {"QL015",
       "hot-path hygiene: no locks, heap allocation, or throw reachable from "
       "step_users/step_range/commit_round (suppress per call site with "
       "allow(QL015))"},
      {"QL016",
       "telemetry schema catalog: every metric/gauge/histogram name "
       "registered in src/** and every JSONL key emitted by src/obs/** must "
       "appear backticked in docs/observability.md"},
  };
  return kRules;
}

Analysis analyze(const Options& options) {
  const std::filesystem::path root =
      std::filesystem::path(options.root).lexically_normal();
  const Tree tree = collect_tree(root);
  const IncludeGraph includes = IncludeGraph::build(tree);
  const SymbolIndex symbols = SymbolIndex::build(tree);
  const CallGraph calls = CallGraph::build(tree, symbols);
  const Context ctx{tree, includes, symbols, calls};

  std::vector<Finding> findings;
  rules_tokens(ctx, findings);
  rules_contracts(ctx, findings);
  rules_layering(ctx, findings);
  rules_callgraph(ctx, findings);
  rules_snapshot(ctx, findings);

  Analysis analysis;
  for (Finding& fd : findings) {
    const SourceFile* f = find_file(tree.files, fd.file);
    if (f != nullptr && suppressed(*f, fd.line, fd.rule)) continue;
    analysis.findings.push_back(std::move(fd));
  }
  std::sort(analysis.findings.begin(), analysis.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  analysis.findings.erase(
      std::unique(analysis.findings.begin(), analysis.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return std::tie(a.file, a.line, a.rule, a.message) ==
                           std::tie(b.file, b.line, b.rule, b.message);
                  }),
      analysis.findings.end());
  analysis.include_graph_dump = includes.dump(tree);
  analysis.call_graph_dump = calls.dump(tree, symbols);
  return analysis;
}

std::vector<Finding> run(const Options& options) {
  return std::move(analyze(options).findings);
}

std::string format(const std::vector<Finding>& findings, bool fix_list) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (fix_list)
      out << f.rule << '\t' << f.file << '\t' << f.line << '\n';
    else
      out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
          << '\n';
  }
  return out.str();
}

}  // namespace qoslb::lint
