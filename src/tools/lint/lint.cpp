#include "tools/lint/lint.hpp"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace qoslb::lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Scanning and lexing
// ---------------------------------------------------------------------------

/// A scanned source file. `code` is the file with comments and string/char
/// literal contents blanked (delimiters kept), so token rules never fire on
/// prose or on a pattern quoted inside a string; `comments` holds the
/// comment text per line, which is where suppression directives live; `raw`
/// is the file verbatim, used by rules that must see `#include` paths and by
/// the registry parser (which needs the `/*active_set=*/` marker comments).
struct SourceFile {
  std::string rel;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comments;
  std::set<std::string> allow_file;              // rules allowed file-wide
  std::vector<std::set<std::string>> allow;      // rules allowed per line
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

/// Single-pass lexer producing the code/comment views. Handles //, /* */,
/// "..." and '...' with escapes, and R"delim(...)delim" raw strings.
void lex(const std::string& text, std::string& code_out,
         std::string& comments_out) {
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRaw: the ")delim\"" terminator
  code_out.clear();
  comments_out.clear();
  code_out.reserve(text.size());
  comments_out.reserve(text.size());
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {  // newlines survive in both views, in every mode
      code_out += '\n';
      comments_out += '\n';
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      continue;
    }
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"') {
          // R"delim( ... )delim" — find the delimiter.
          std::size_t open = text.find('(', i + 2);
          if (open == std::string::npos) {
            code_out += c;
            break;
          }
          raw_delim = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
          code_out += "R\"\"";
          mode = Mode::kRaw;
          i = open;  // consume through the opening '('
        } else if (c == '"') {
          code_out += c;
          mode = Mode::kString;
        } else if (c == '\'') {
          code_out += c;
          mode = Mode::kChar;
        } else {
          code_out += c;
        }
        break;
      case Mode::kLineComment:
        comments_out += c;
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        } else {
          comments_out += c;
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          code_out += c;
          mode = Mode::kCode;
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          code_out += c;
          mode = Mode::kCode;
        }
        break;
      case Mode::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          mode = Mode::kCode;
        }
        break;
    }
  }
}

/// Parses `qoslb-lint: allow(QL001, QL002)` / `allow-file(QLxxx)` directives
/// out of the per-line comment text.
void parse_suppressions(SourceFile& f) {
  static const std::regex kDirective(
      R"(qoslb-lint:\s*allow(-file)?\(([^)]*)\))");
  static const std::regex kRuleId(R"(QL\d{3})");
  f.allow.assign(f.comments.size(), {});
  for (std::size_t i = 0; i < f.comments.size(); ++i) {
    auto begin = std::sregex_iterator(f.comments[i].begin(),
                                      f.comments[i].end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const bool file_wide = (*it)[1].matched;
      const std::string ids = (*it)[2].str();
      auto id_begin = std::sregex_iterator(ids.begin(), ids.end(), kRuleId);
      for (auto id = id_begin; id != std::sregex_iterator(); ++id) {
        if (file_wide)
          f.allow_file.insert(id->str());
        else
          f.allow[i].insert(id->str());
      }
    }
  }
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

/// True when the finding at 1-based `line` is suppressed: the rule is allowed
/// file-wide, on the line itself, or on a directly preceding run of
/// comment-only lines (so a suppression comment can sit above the flagged
/// statement).
bool suppressed(const SourceFile& f, int line, const std::string& rule) {
  if (f.allow_file.count(rule)) return true;
  if (line < 1 || static_cast<std::size_t>(line) > f.allow.size()) return false;
  std::size_t i = static_cast<std::size_t>(line) - 1;
  if (f.allow[i].count(rule)) return true;
  while (i > 0 && is_blank(f.code[i - 1])) {
    --i;
    if (f.allow[i].count(rule)) return true;
  }
  return false;
}

bool has_extension(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".cxx", ".hh"};
  return kExts.count(p.extension().string()) != 0;
}

bool skipped_dir(const std::string& name) {
  return name == ".git" || name == "CMakeFiles" || name == "_deps" ||
         name == "bench-build" || name.rfind("build", 0) == 0;
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Walks the tree collecting lexed source files plus the paths of every
/// CMakeLists.txt (for the reachability half of QL004).
void collect(const fs::path& root, std::vector<SourceFile>& files,
             std::vector<fs::path>& cmake_lists) {
  std::vector<fs::path> stack = {root};
  while (!stack.empty()) {
    const fs::path dir = stack.back();
    stack.pop_back();
    for (const auto& entry : fs::directory_iterator(dir)) {
      const fs::path& p = entry.path();
      if (entry.is_directory()) {
        if (skipped_dir(p.filename().string())) continue;
        if (to_rel(p, root) == "tests/lint_fixtures") continue;
        stack.push_back(p);
      } else if (entry.is_regular_file()) {
        if (p.filename() == "CMakeLists.txt") {
          cmake_lists.push_back(p);
        } else if (has_extension(p)) {
          SourceFile f;
          f.rel = to_rel(p, root);
          const std::string text = read_file(p);
          std::string code;
          std::string comments;
          lex(text, code, comments);
          f.raw = split_lines(text);
          f.code = split_lines(code);
          f.comments = split_lines(comments);
          parse_suppressions(f);
          files.push_back(std::move(f));
        }
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  std::sort(cmake_lists.begin(), cmake_lists.end());
}

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct Pattern {
  std::regex re;
  std::string what;  // human name of the banned construct
};

void scan_patterns(const SourceFile& f, const std::vector<Pattern>& patterns,
                   const char* rule, const std::string& message_suffix,
                   std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Pattern& p : patterns) {
      if (std::regex_search(f.code[i], p.re)) {
        out.push_back({rule, f.rel, static_cast<int>(i) + 1,
                       p.what + message_suffix});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL001 — unkeyed randomness outside src/rng/
// ---------------------------------------------------------------------------

void rule_ql001(const SourceFile& f, std::vector<Finding>& out) {
  if (starts_with(f.rel, "src/rng/")) return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bstd::mt19937)"), "std::mt19937"},
      {std::regex(R"(\bstd::random_device\b)"), "std::random_device"},
      {std::regex(R"(\bstd::default_random_engine\b)"),
       "std::default_random_engine"},
      {std::regex(R"(\bstd::minstd_rand)"), "std::minstd_rand"},
      {std::regex(R"(\bstd::shuffle\b)"), "std::shuffle"},
      {std::regex(R"(\bstd::sample\b)"), "std::sample"},
      {std::regex(R"((^|[^:\w])s?rand\s*\()"), "rand()/srand()"},
  };
  scan_patterns(f, kBanned, "QL001",
                " outside src/rng/ — draw from the per-(seed, round, user) "
                "Philox substreams (rng/round_rng.hpp) instead",
                out);
}

// ---------------------------------------------------------------------------
// QL002 — unordered-container iteration in determinism-critical files
// ---------------------------------------------------------------------------

bool ql002_applies(const std::string& rel) {
  return starts_with(rel, "src/core/protocols/") ||
         rel == "src/core/engine.cpp" || rel == "src/core/engine.hpp" ||
         rel == "src/sim/parallel_round_engine.hpp" ||
         rel == "src/sim/parallel_round_engine.cpp" ||
         rel == "src/core/satisfaction_index.hpp";
}

void rule_ql002(const SourceFile& f, std::vector<Finding>& out) {
  if (!ql002_applies(f.rel)) return;
  // Pass 1: names declared (or bound) as unordered containers in this file.
  static const std::regex kDecl(
      R"((?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;={(])");
  std::set<std::string> unordered_names;
  for (const std::string& line : f.code) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      unordered_names.insert((*it)[1].str());
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for over, or begin()/end() on, any of those names. Bucket
  // order is implementation- and size-defined, so any walk is a
  // platform-dependent result order in a file that must replay exactly.
  static const std::regex kRangeFor(R"(for\s*\([^;:()]*:\s*(\w+)\s*\))");
  static const std::regex kBegin(R"((\w+)\s*\.\s*c?(?:begin|end|rbegin)\s*\()");
  const std::string suffix =
      "' — hash-order walk in a determinism-critical file; use a sorted "
      "container or an index-ordered vector";
  const std::vector<std::pair<const std::regex*, const char*>> kIteration = {
      {&kRangeFor, "range-for over unordered '"},
      {&kBegin, "iterator walk of unordered '"},
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const auto& [re, what] : kIteration) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), *re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name)) {
          out.push_back({"QL002", f.rel, static_cast<int>(i) + 1,
                         what + name + suffix});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL003 — wall-clock and environment reads in src/core/ and src/sim/
// ---------------------------------------------------------------------------

void rule_ql003(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "std::chrono::high_resolution_clock"},
      {std::regex(R"((^|[^:\w])time\s*\()"), "time()"},
      {std::regex(R"(\bgettimeofday\b)"), "gettimeofday()"},
      {std::regex(R"(\bclock_gettime\b)"), "clock_gettime()"},
      {std::regex(R"(\bgetenv\s*\()"), "getenv()"},
  };
  scan_patterns(f, kBanned, "QL003",
                " in the simulation core — results must be a pure function "
                "of (instance, seed, config); timing belongs in bench/",
                out);
  // The steady-clock Timer is bench-only for the same reason: a simulation
  // path that reads any clock can branch on it.
  static const std::regex kTimerInclude(
      R"(#\s*include\s*[<"]util/timer\.hpp[>"])");
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (std::regex_search(f.raw[i], kTimerInclude)) {
      out.push_back({"QL003", f.rel, static_cast<int>(i) + 1,
                     "util/timer.hpp included in the simulation core — "
                     "timing belongs in bench/"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL004 — cross-file contracts (registry <-> protocol classes, CMake
// reachability)
// ---------------------------------------------------------------------------

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + pos, '\n'));
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i) out += '\n';
    out += lines[i];
  }
  return out;
}

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& rel) {
  for (const SourceFile& f : files)
    if (f.rel == rel) return &f;
  return nullptr;
}

/// One row of the protocol registry as recovered from source text.
struct RegistryEntry {
  std::string name;         // spec kind, e.g. "uniform"
  bool active_set = false;  // ProtocolInfo::active_set
  bool restricted = false;  // ProtocolInfo::restricted
  std::string class_name;   // protocol class the builder constructs
  int line = 0;             // anchor in registry.cpp
};

/// Token-level parse of src/core/protocols/registry.cpp: each entry starts
/// with `{{"kind"`; the ProtocolInfo flags are read off their
/// `/*active_set=*/` / `/*restricted=*/` marker comments (an unmarked flag
/// defaults to false, matching the aggregate initializer), and the builder
/// either names `std::make_unique<Class>` directly or delegates to a free
/// helper (`make_neighborhood`) that does.
std::vector<RegistryEntry> parse_registry(const std::string& raw_text) {
  std::vector<RegistryEntry> entries;
  static const std::regex kEntryStart(R"(\{\{\s*"([^"]+)\")");
  static const std::regex kMakeUnique(R"(make_unique\s*<\s*(\w+)\s*>)");
  static const std::regex kBuilderRef(R"(\}\s*,\s*(\w+)\s*\}\s*,)");
  static const std::regex kActiveMarker(R"(active_set=\*/\s*true)");
  static const std::regex kRestrictedMarker(R"(restricted=\*/\s*true)");
  std::vector<std::pair<std::size_t, std::string>> starts;
  for (auto it = std::sregex_iterator(raw_text.begin(), raw_text.end(),
                                      kEntryStart);
       it != std::sregex_iterator(); ++it)
    starts.emplace_back(it->position(), (*it)[1].str());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::size_t begin = starts[i].first;
    const std::size_t end =
        i + 1 < starts.size() ? starts[i + 1].first : raw_text.size();
    const std::string chunk = raw_text.substr(begin, end - begin);
    RegistryEntry entry;
    entry.name = starts[i].second;
    entry.line = line_of(raw_text, begin);
    const std::size_t info_end = chunk.find('}');
    const std::string info =
        info_end == std::string::npos ? chunk : chunk.substr(0, info_end);
    entry.active_set = std::regex_search(info, kActiveMarker);
    entry.restricted = std::regex_search(info, kRestrictedMarker);
    std::smatch m;
    if (std::regex_search(chunk, m, kMakeUnique)) {
      entry.class_name = m[1].str();
    } else if (std::regex_search(chunk, m, kBuilderRef)) {
      // Delegating builder: resolve through its definition elsewhere in the
      // file — the first make_unique<> after the definition's signature.
      const std::string builder = m[1].str();
      const std::regex def(builder + R"(\s*\(\s*const\s+ProtocolSpec)");
      std::smatch dm;
      if (std::regex_search(raw_text, dm, def)) {
        const std::string tail = raw_text.substr(dm.position());
        std::smatch um;
        if (std::regex_search(tail, um, kMakeUnique))
          entry.class_name = um[1].str();
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Joined code text of the files that define `class_name`: its class
/// declaration plus any out-of-line `Class::method` definitions.
std::string class_code(const std::vector<SourceFile>& files,
                       const std::string& class_name) {
  const std::regex decl(R"(\bclass\s+)" + class_name +
                        R"(\b[^;{]*:\s*public\s+\w+)");
  const std::regex methods("\\b" + class_name + "::");
  std::string code;
  for (const SourceFile& f : files) {
    const std::string text = join(f.code);
    if (std::regex_search(text, decl) || std::regex_search(text, methods))
      code += text + '\n';
  }
  return code;
}

bool returns_true_near(const std::string& code, const std::string& token) {
  std::size_t pos = code.find(token);
  while (pos != std::string::npos) {
    const std::string window = code.substr(pos, 160);
    if (std::regex_search(window, std::regex(R"(return\s+true)"))) return true;
    pos = code.find(token, pos + token.size());
  }
  return false;
}

void rule_ql004_registry(const std::vector<SourceFile>& files,
                         std::vector<Finding>& out) {
  const std::string kRegistry = "src/core/protocols/registry.cpp";
  const SourceFile* reg = find_file(files, kRegistry);
  if (reg == nullptr) return;
  const std::string raw_text = join(reg->raw);
  for (const RegistryEntry& e : parse_registry(raw_text)) {
    if (e.class_name.empty()) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name +
                         "': cannot resolve the protocol class its builder "
                         "constructs"});
      continue;
    }
    const std::string code = class_code(files, e.class_name);
    if (code.empty()) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' constructs " +
                         e.class_name + " but no such protocol class is "
                         "declared in the tree"});
      continue;
    }
    const bool has_step_users =
        std::regex_search(code, std::regex(R"(\bstep_users\s*\()"));
    const bool class_active = returns_true_near(code, "active_set_compatible");
    if (e.active_set && !has_step_users) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set "
                     "but " + e.class_name + " does not define step_users()"});
    }
    if (e.active_set && !class_active) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set "
                     "but " + e.class_name +
                         "::active_set_compatible() does not return true"});
    }
    if (!e.active_set && class_active) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set = "
                     "false but " + e.class_name +
                         "::active_set_compatible() returns true — the "
                         "engine would silently run it densely"});
    }
  }
}

void rule_ql004_cmake(const fs::path& root,
                      const std::vector<SourceFile>& files,
                      const std::vector<fs::path>& cmake_lists,
                      std::vector<Finding>& out) {
  if (cmake_lists.empty()) return;
  // Every `foo.cpp` token in a CMakeLists.txt, resolved against that file's
  // directory. `#` comments are stripped first — a commented-out source is
  // exactly the dead-translation-unit case this check exists for. Tokens
  // with unexpanded ${...} variables are skipped.
  static const std::regex kCppToken(R"(([\w./-]+\.cpp)\b)");
  std::set<std::string> reachable;
  for (const fs::path& cml : cmake_lists) {
    std::string text;
    for (const std::string& line : split_lines(read_file(cml))) {
      const std::size_t hash = line.find('#');
      text += hash == std::string::npos ? line : line.substr(0, hash);
      text += '\n';
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCppToken);
         it != std::sregex_iterator(); ++it) {
      const std::string token = (*it)[1].str();
      const fs::path resolved =
          (cml.parent_path() / token).lexically_normal();
      reachable.insert(to_rel(resolved, root));
    }
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.rel, "src/")) continue;
    if (f.rel.size() < 4 || f.rel.substr(f.rel.size() - 4) != ".cpp") continue;
    if (reachable.count(f.rel) == 0) {
      out.push_back({"QL004", f.rel, 1,
                     "not reachable from any CMakeLists.txt — dead "
                     "translation units drift out of sync with the contract "
                     "the build enforces"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL009 — restricted-assignment contract (registry <-> protocol classes)
// ---------------------------------------------------------------------------

/// Cross-file check mirroring QL004, for the restricted-assignment flag:
/// a `/*restricted=*/true` registry entry must construct a class whose
/// restricted_assignment_compatible() returns true, a class that returns
/// true must be marked in the registry, and a restricted class with a
/// step_users() hook must sample through the reachable-set helpers
/// (sample_reachable / reachable_target) — a raw live-list or modulo draw
/// can target resources the user cannot reach.
void rule_ql009_registry(const std::vector<SourceFile>& files,
                         std::vector<Finding>& out) {
  const std::string kRegistry = "src/core/protocols/registry.cpp";
  const SourceFile* reg = find_file(files, kRegistry);
  if (reg == nullptr) return;
  const std::string raw_text = join(reg->raw);
  for (const RegistryEntry& e : parse_registry(raw_text)) {
    if (e.class_name.empty()) continue;  // QL004 reports the unresolved build
    const std::string code = class_code(files, e.class_name);
    if (code.empty()) continue;  // QL004 reports the missing class
    const bool class_restricted =
        returns_true_near(code, "restricted_assignment_compatible");
    if (e.restricted && !class_restricted) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares restricted "
                     "but " + e.class_name +
                         "::restricted_assignment_compatible() does not "
                         "return true — the engine would reject instances "
                         "the registry advertises"});
    }
    if (!e.restricted && class_restricted) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares restricted = "
                     "false but " + e.class_name +
                         "::restricted_assignment_compatible() returns true "
                         "— the listing would hide a capability the class "
                         "implements"});
    }
    const bool has_step_users =
        std::regex_search(code, std::regex(R"(\bstep_users\s*\()"));
    const bool uses_helper =
        std::regex_search(code,
                          std::regex(R"(\bsample_reachable\s*\()")) ||
        std::regex_search(code, std::regex(R"(\breachable_target\s*\()"));
    if (e.restricted && class_restricted && has_step_users && !uses_helper) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name +
                         "' is restricted-assignment-compatible but " +
                         e.class_name +
                         "::step_users() never samples through "
                         "sample_reachable()/reachable_target() — raw draws "
                         "can target unreachable resources"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL005 — float accumulation in the potential / satisfaction accounting
// ---------------------------------------------------------------------------

bool ql005_applies(const std::string& rel) {
  if (!starts_with(rel, "src/")) return false;
  const std::string base = fs::path(rel).filename().string();
  return starts_with(base, "potential.") || starts_with(base, "satisfaction");
}

void rule_ql005(const SourceFile& f, std::vector<Finding>& out) {
  if (!ql005_applies(f.rel)) return;
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bfloat\b)"), "float"},
  };
  scan_patterns(f, kBanned, "QL005",
                " in potential/satisfaction accounting — 24-bit mantissas "
                "drift under reordering; use double or std::int64_t",
                out);
}

// ---------------------------------------------------------------------------
// QL006 — .clang-format-allowlist hygiene
// ---------------------------------------------------------------------------

void rule_ql006(const fs::path& root, std::vector<Finding>& out) {
  const fs::path allowlist = root / ".clang-format-allowlist";
  if (!fs::exists(allowlist)) return;
  const std::vector<std::string> lines = split_lines(read_file(allowlist));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string entry = lines[i];
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry = entry.substr(0, hash);
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.back())) != 0)
      entry.pop_back();
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.front())) != 0)
      entry.erase(entry.begin());
    if (entry.empty()) continue;
    if (!fs::is_regular_file(root / entry)) {
      out.push_back({"QL006", ".clang-format-allowlist",
                     static_cast<int>(i) + 1,
                     "stale entry '" + entry +
                         "': no such file — the format gate would silently "
                         "check nothing"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL007 — steady-clock reads outside src/obs/
// ---------------------------------------------------------------------------

void rule_ql007(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/")) return;
  if (starts_with(f.rel, "src/obs/")) return;
  // obs::SteadyClock::now() is the single sanctioned steady-clock read in
  // src/; every other layer takes an injected obs::Clock* so telemetry can
  // be timed without the simulation path ever touching a real clock.
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bsteady_clock\b)"), "std::chrono::steady_clock"},
  };
  scan_patterns(f, kBanned, "QL007",
                " outside src/obs/ — read time through an injected "
                "obs::Clock (obs/clock.hpp) so telemetry stays off the "
                "simulation path",
                out);
  // Stricter inside the deterministic core: even the obs wrapper may not be
  // *constructed* there — the core receives its Clock via
  // EngineConfig::telemetry, injected by a tool or bench.
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  static const std::vector<Pattern> kBannedCore = {
      {std::regex(R"(\bSteadyClock\b)"), "obs::SteadyClock"},
  };
  scan_patterns(f, kBannedCore, "QL007",
                " named in the simulation core — the core must receive its "
                "Clock through EngineConfig::telemetry, never instantiate a "
                "wall clock itself",
                out);
}

// ---------------------------------------------------------------------------
// QL010 — thread spawning inside the simulation core
// ---------------------------------------------------------------------------

void rule_ql010(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/core/") && !starts_with(f.rel, "src/sim/"))
    return;
  // The persistent pool is the single sanctioned spawn site: it creates its
  // workers once and parks them between rounds, which is exactly the
  // per-round spawn cost this rule exists to keep out of the round loop.
  const std::string base = fs::path(f.rel).filename().string();
  if (starts_with(base, "worker_pool.")) return;
  // `std::thread` followed by `::` is a static member access
  // (std::thread::hardware_concurrency, std::thread::id) — reading those is
  // fine; constructing a thread is not. `std::this_thread` never matches
  // (the literal is `std::thread`).
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bstd::thread\b(?!\s*::))"), "std::thread construction"},
      {std::regex(R"(\bstd::jthread\b)"), "std::jthread"},
      {std::regex(R"(\bstd::async\b)"), "std::async"},
      {std::regex(R"(\bpthread_create\b)"), "pthread_create"},
  };
  scan_patterns(f, kBanned, "QL010",
                " in the simulation core — per-round code must hand work to "
                "the persistent RoundWorkerPool (sim/worker_pool.hpp); "
                "spawning threads per round is the dispatch overhead the "
                "pool exists to eliminate",
                out);
}

// ---------------------------------------------------------------------------
// QL008 — snapshot serializer/deserializer field-list contract
// ---------------------------------------------------------------------------

/// 1-based inclusive line range of a function definition's full text.
struct DefRange {
  int begin_line = 0;
  int end_line = 0;
};

/// Locates the first *definition* (not declaration or call) of `fn_name` in
/// the blanked code text: the name, a balanced parameter list, then a `{`
/// before any `;`. String contents are already blanked, so brace matching
/// cannot be confused by quoted braces.
std::optional<DefRange> find_definition(const std::string& code_text,
                                        const std::string& fn_name) {
  const std::regex sig("\\b" + fn_name + R"(\s*\()");
  for (auto it = std::sregex_iterator(code_text.begin(), code_text.end(), sig);
       it != std::sregex_iterator(); ++it) {
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length() - 1;
    int depth = 0;
    for (; i < code_text.size(); ++i) {
      if (code_text[i] == '(') ++depth;
      if (code_text[i] == ')' && --depth == 0) break;
    }
    if (i >= code_text.size()) continue;
    bool body = false;
    for (++i; i < code_text.size(); ++i) {
      if (code_text[i] == '{') {
        body = true;
        break;
      }
      if (code_text[i] == ';') break;  // declaration or call statement
    }
    if (!body) continue;
    int braces = 0;
    std::size_t j = i;
    for (; j < code_text.size(); ++j) {
      if (code_text[j] == '{') ++braces;
      if (code_text[j] == '}' && --braces == 0) break;
    }
    if (j >= code_text.size()) continue;
    return DefRange{line_of(code_text, it->position()), line_of(code_text, j)};
  }
  return std::nullopt;
}

/// Serialized field names mentioned in a raw text span: every string literal
/// (comments and char literals skipped) whose content — after trimming
/// spaces — is a single lowercase identifier. `"assignment "` names the
/// field `assignment`; prose like `"bad number on ..."` never matches.
std::set<std::string> ql008_fields(const std::string& raw_span) {
  static const std::regex kField(R"(^[a-z_][a-z0-9_]*$)");
  std::set<std::string> fields;
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar };
  Mode mode = Mode::kCode;
  std::string literal;
  const std::size_t n = raw_span.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = raw_span[i];
    const char next = i + 1 < n ? raw_span[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == '"') {
          mode = Mode::kString;
          literal.clear();
        } else if (c == '\'') {
          mode = Mode::kChar;
        }
        break;
      case Mode::kLineComment:
        if (c == '\n') mode = Mode::kCode;
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          mode = Mode::kCode;
          // Field keywords start at the beginning of the literal (a trailing
          // separator space is fine: `"assignment "`). A leading space marks
          // a connector fragment inside a spliced message (`" of "`), never
          // a field name.
          std::size_t end = literal.size();
          while (end > 0 && literal[end - 1] == ' ') --end;
          const std::string trimmed = literal.substr(0, end);
          if (std::regex_match(trimmed, kField)) fields.insert(trimmed);
        } else {
          literal += c;
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        }
        break;
    }
  }
  return fields;
}

std::string join_range(const std::vector<std::string>& lines,
                       const DefRange& range) {
  std::string out;
  for (int i = range.begin_line; i <= range.end_line; ++i) {
    if (i < 1 || static_cast<std::size_t>(i) > lines.size()) continue;
    out += lines[static_cast<std::size_t>(i) - 1];
    out += '\n';
  }
  return out;
}

void rule_ql008(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/")) return;
  // The serializer pairs under contract: the member hooks
  // (Protocol::snapshot_write/snapshot_read overrides) and the free
  // checkpoint functions (write_snapshot/read_snapshot). Both halves of a
  // pair must be defined in the same file for the check to fire — which is
  // itself the layout the contract wants.
  static const std::pair<const char*, const char*> kPairs[] = {
      {"snapshot_write", "snapshot_read"},
      {"write_snapshot", "read_snapshot"},
  };
  const std::string code_text = join(f.code);
  for (const auto& [writer, reader] : kPairs) {
    const std::optional<DefRange> wdef = find_definition(code_text, writer);
    const std::optional<DefRange> rdef = find_definition(code_text, reader);
    if (!wdef.has_value() || !rdef.has_value()) continue;
    const std::set<std::string> written =
        ql008_fields(join_range(f.raw, *wdef));
    const std::set<std::string> read = ql008_fields(join_range(f.raw, *rdef));
    for (const std::string& field : written) {
      if (read.count(field) == 0) {
        out.push_back({"QL008", f.rel, wdef->begin_line,
                       "snapshot field '" + field + "' written in " + writer +
                           " but never read in " + reader +
                           " — a checkpoint round-trip would drop it"});
      }
    }
    for (const std::string& field : read) {
      if (written.count(field) == 0) {
        out.push_back({"QL008", f.rel, rdef->begin_line,
                       "snapshot field '" + field + "' read in " + reader +
                           " but never written in " + writer +
                           " — deserialization expects a field the writer "
                           "never emits"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"QL001",
       "unkeyed randomness (rand, mt19937, random_device, shuffle, sample) "
       "outside src/rng/"},
      {"QL002",
       "unordered_map/set iteration in determinism-critical files "
       "(protocols, engine, parallel round engine, satisfaction index)"},
      {"QL003",
       "wall-clock or environment reads (system_clock, time(), getenv) in "
       "src/core/ or src/sim/"},
      {"QL004",
       "cross-file contract: registry active_set entries must define "
       "step_users()/active_set_compatible(); every src/**/*.cpp must be "
       "reachable from a CMakeLists.txt"},
      {"QL005",
       "float arithmetic in potential.* / satisfaction* accounting"},
      {"QL006", "stale paths in .clang-format-allowlist"},
      {"QL007",
       "steady-clock reads outside src/obs/ (and obs::SteadyClock "
       "instantiation anywhere in src/core/ or src/sim/)"},
      {"QL008",
       "snapshot serializer/deserializer field-list contract: every field "
       "written by snapshot_write/write_snapshot must be read by its "
       "snapshot_read/read_snapshot counterpart, and vice versa"},
      {"QL009",
       "cross-file contract: registry restricted entries must construct "
       "classes whose restricted_assignment_compatible() returns true (and "
       "vice versa), and restricted step_users() protocols must sample via "
       "sample_reachable()/reachable_target()"},
      {"QL010",
       "thread spawning (std::thread construction, std::jthread, std::async, "
       "pthread_create) in src/core/ or src/sim/ outside "
       "sim/worker_pool.* — rounds must run on the persistent worker pool"},
  };
  return kRules;
}

std::vector<Finding> run(const Options& options) {
  const fs::path root = fs::path(options.root).lexically_normal();
  std::vector<SourceFile> files;
  std::vector<fs::path> cmake_lists;
  collect(root, files, cmake_lists);

  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    rule_ql001(f, findings);
    rule_ql002(f, findings);
    rule_ql003(f, findings);
    rule_ql005(f, findings);
    rule_ql007(f, findings);
    rule_ql008(f, findings);
    rule_ql010(f, findings);
  }
  rule_ql004_registry(files, findings);
  rule_ql004_cmake(root, files, cmake_lists, findings);
  rule_ql006(root, findings);
  rule_ql009_registry(files, findings);

  std::vector<Finding> kept;
  for (Finding& fd : findings) {
    const SourceFile* f = find_file(files, fd.file);
    if (f != nullptr && suppressed(*f, fd.line, fd.rule)) continue;
    kept.push_back(std::move(fd));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return kept;
}

std::string format(const std::vector<Finding>& findings, bool fix_list) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (fix_list)
      out << f.rule << '\t' << f.file << '\t' << f.line << '\n';
    else
      out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
          << '\n';
  }
  return out.str();
}

}  // namespace qoslb::lint
