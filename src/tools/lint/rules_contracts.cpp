#include <cctype>
#include <filesystem>
#include <optional>
#include <regex>
#include <set>
#include <utility>

#include "tools/lint/rules.hpp"

namespace qoslb::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// QL004 / QL009 — protocol registry contracts
// ---------------------------------------------------------------------------

/// One row of the protocol registry as recovered from source text.
struct RegistryEntry {
  std::string name;         // spec kind, e.g. "uniform"
  bool active_set = false;  // ProtocolInfo::active_set
  bool restricted = false;  // ProtocolInfo::restricted
  std::string class_name;   // protocol class the builder constructs
  int line = 0;             // anchor in registry.cpp
};

/// Token-level parse of src/core/protocols/registry.cpp: each entry starts
/// with `{{"kind"`; the ProtocolInfo flags are read off their
/// `/*active_set=*/` / `/*restricted=*/` marker comments (an unmarked flag
/// defaults to false, matching the aggregate initializer), and the builder
/// either names `std::make_unique<Class>` directly or delegates to a free
/// helper (`make_neighborhood`) that does.
std::vector<RegistryEntry> parse_registry(const std::string& raw_text) {
  std::vector<RegistryEntry> entries;
  static const std::regex kEntryStart(R"(\{\{\s*"([^"]+)\")");
  static const std::regex kMakeUnique(R"(make_unique\s*<\s*(\w+)\s*>)");
  static const std::regex kBuilderRef(R"(\}\s*,\s*(\w+)\s*\}\s*,)");
  static const std::regex kActiveMarker(R"(active_set=\*/\s*true)");
  static const std::regex kRestrictedMarker(R"(restricted=\*/\s*true)");
  std::vector<std::pair<std::size_t, std::string>> starts;
  for (auto it = std::sregex_iterator(raw_text.begin(), raw_text.end(),
                                      kEntryStart);
       it != std::sregex_iterator(); ++it)
    starts.emplace_back(it->position(), (*it)[1].str());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::size_t begin = starts[i].first;
    const std::size_t end =
        i + 1 < starts.size() ? starts[i + 1].first : raw_text.size();
    const std::string chunk = raw_text.substr(begin, end - begin);
    RegistryEntry entry;
    entry.name = starts[i].second;
    entry.line = line_of(raw_text, begin);
    const std::size_t info_end = chunk.find('}');
    const std::string info =
        info_end == std::string::npos ? chunk : chunk.substr(0, info_end);
    entry.active_set = std::regex_search(info, kActiveMarker);
    entry.restricted = std::regex_search(info, kRestrictedMarker);
    std::smatch m;
    if (std::regex_search(chunk, m, kMakeUnique)) {
      entry.class_name = m[1].str();
    } else if (std::regex_search(chunk, m, kBuilderRef)) {
      // Delegating builder: resolve through its definition elsewhere in the
      // file — the first make_unique<> after the definition's signature.
      const std::string builder = m[1].str();
      const std::regex def(builder + R"(\s*\(\s*const\s+ProtocolSpec)");
      std::smatch dm;
      if (std::regex_search(raw_text, dm, def)) {
        const std::string tail = raw_text.substr(dm.position());
        std::smatch um;
        if (std::regex_search(tail, um, kMakeUnique))
          entry.class_name = um[1].str();
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Joined code text of the files that define `class_name`: its class
/// declaration plus any out-of-line `Class::method` definitions.
std::string class_code(const std::vector<SourceFile>& files,
                       const std::string& class_name) {
  const std::regex decl(R"(\bclass\s+)" + class_name +
                        R"(\b[^;{]*:\s*public\s+\w+)");
  const std::regex methods("\\b" + class_name + "::");
  std::string code;
  for (const SourceFile& f : files) {
    const std::string text = join(f.code);
    if (std::regex_search(text, decl) || std::regex_search(text, methods))
      code += text + '\n';
  }
  return code;
}

bool returns_true_near(const std::string& code, const std::string& token) {
  std::size_t pos = code.find(token);
  while (pos != std::string::npos) {
    const std::string window = code.substr(pos, 160);
    if (std::regex_search(window, std::regex(R"(return\s+true)"))) return true;
    pos = code.find(token, pos + token.size());
  }
  return false;
}

void rule_ql004_registry(const std::vector<SourceFile>& files,
                         std::vector<Finding>& out) {
  const std::string kRegistry = "src/core/protocols/registry.cpp";
  const SourceFile* reg = find_file(files, kRegistry);
  if (reg == nullptr) return;
  const std::string raw_text = join(reg->raw);
  for (const RegistryEntry& e : parse_registry(raw_text)) {
    if (e.class_name.empty()) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name +
                         "': cannot resolve the protocol class its builder "
                         "constructs"});
      continue;
    }
    const std::string code = class_code(files, e.class_name);
    if (code.empty()) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' constructs " +
                         e.class_name + " but no such protocol class is "
                         "declared in the tree"});
      continue;
    }
    const bool has_step_users =
        std::regex_search(code, std::regex(R"(\bstep_users\s*\()"));
    const bool class_active = returns_true_near(code, "active_set_compatible");
    if (e.active_set && !has_step_users) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set "
                     "but " + e.class_name + " does not define step_users()"});
    }
    if (e.active_set && !class_active) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set "
                     "but " + e.class_name +
                         "::active_set_compatible() does not return true"});
    }
    if (!e.active_set && class_active) {
      out.push_back({"QL004", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares active_set = "
                     "false but " + e.class_name +
                         "::active_set_compatible() returns true — the "
                         "engine would silently run it densely"});
    }
  }
}

/// The CMake half of QL004 consumes Tree::cmake_lists — the same discovery
/// walk that produced the source files and the include graph, so the three
/// can never disagree about which files exist.
void rule_ql004_cmake(const Tree& tree, std::vector<Finding>& out) {
  if (tree.cmake_lists.empty()) return;
  // Every `foo.cpp` token in a CMakeLists.txt, resolved against that file's
  // directory. `#` comments are stripped first — a commented-out source is
  // exactly the dead-translation-unit case this check exists for. Tokens
  // with unexpanded ${...} variables are skipped.
  static const std::regex kCppToken(R"(([\w./-]+\.cpp)\b)");
  std::set<std::string> reachable;
  for (const fs::path& cml : tree.cmake_lists) {
    std::string text;
    for (const std::string& line : split_lines(read_file(cml))) {
      const std::size_t hash = line.find('#');
      text += hash == std::string::npos ? line : line.substr(0, hash);
      text += '\n';
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCppToken);
         it != std::sregex_iterator(); ++it) {
      const std::string token = (*it)[1].str();
      const fs::path resolved =
          (cml.parent_path() / token).lexically_normal();
      reachable.insert(to_rel(resolved, tree.root));
    }
  }
  for (const SourceFile& f : tree.files) {
    if (!starts_with(f.rel, "src/")) continue;
    if (f.rel.size() < 4 || f.rel.substr(f.rel.size() - 4) != ".cpp") continue;
    if (reachable.count(f.rel) == 0) {
      out.push_back({"QL004", f.rel, 1,
                     "not reachable from any CMakeLists.txt — dead "
                     "translation units drift out of sync with the contract "
                     "the build enforces"});
    }
  }
}

void rule_ql009_registry(const std::vector<SourceFile>& files,
                         std::vector<Finding>& out) {
  const std::string kRegistry = "src/core/protocols/registry.cpp";
  const SourceFile* reg = find_file(files, kRegistry);
  if (reg == nullptr) return;
  const std::string raw_text = join(reg->raw);
  for (const RegistryEntry& e : parse_registry(raw_text)) {
    if (e.class_name.empty()) continue;  // QL004 reports the unresolved build
    const std::string code = class_code(files, e.class_name);
    if (code.empty()) continue;  // QL004 reports the missing class
    const bool class_restricted =
        returns_true_near(code, "restricted_assignment_compatible");
    if (e.restricted && !class_restricted) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares restricted "
                     "but " + e.class_name +
                         "::restricted_assignment_compatible() does not "
                         "return true — the engine would reject instances "
                         "the registry advertises"});
    }
    if (!e.restricted && class_restricted) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name + "' declares restricted = "
                     "false but " + e.class_name +
                         "::restricted_assignment_compatible() returns true "
                         "— the listing would hide a capability the class "
                         "implements"});
    }
    const bool has_step_users =
        std::regex_search(code, std::regex(R"(\bstep_users\s*\()"));
    const bool uses_helper =
        std::regex_search(code,
                          std::regex(R"(\bsample_reachable\s*\()")) ||
        std::regex_search(code, std::regex(R"(\breachable_target\s*\()"));
    if (e.restricted && class_restricted && has_step_users && !uses_helper) {
      out.push_back({"QL009", kRegistry, e.line,
                     "registry entry '" + e.name +
                         "' is restricted-assignment-compatible but " +
                         e.class_name +
                         "::step_users() never samples through "
                         "sample_reachable()/reachable_target() — raw draws "
                         "can target unreachable resources"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL006 — .clang-format-allowlist hygiene
// ---------------------------------------------------------------------------

void rule_ql006(const fs::path& root, std::vector<Finding>& out) {
  const fs::path allowlist = root / ".clang-format-allowlist";
  if (!fs::exists(allowlist)) return;
  const std::vector<std::string> lines = split_lines(read_file(allowlist));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string entry = lines[i];
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry = entry.substr(0, hash);
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.back())) != 0)
      entry.pop_back();
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(
                                 entry.front())) != 0)
      entry.erase(entry.begin());
    if (entry.empty()) continue;
    if (!fs::is_regular_file(root / entry)) {
      out.push_back({"QL006", ".clang-format-allowlist",
                     static_cast<int>(i) + 1,
                     "stale entry '" + entry +
                         "': no such file — the format gate would silently "
                         "check nothing"});
    }
  }
}

// ---------------------------------------------------------------------------
// QL008 — snapshot serializer/deserializer field-list contract
// ---------------------------------------------------------------------------

void rule_ql008(const SourceFile& f, std::vector<Finding>& out) {
  if (!starts_with(f.rel, "src/")) return;
  // The serializer pairs under contract: the member hooks
  // (Protocol::snapshot_write/snapshot_read overrides) and the free
  // checkpoint functions (write_snapshot/read_snapshot). Both halves of a
  // pair must be defined in the same file for the check to fire — which is
  // itself the layout the contract wants.
  static const std::pair<const char*, const char*> kPairs[] = {
      {"snapshot_write", "snapshot_read"},
      {"write_snapshot", "read_snapshot"},
  };
  const std::string code_text = join(f.code);
  for (const auto& [writer, reader] : kPairs) {
    const std::optional<DefRange> wdef = find_definition(code_text, writer);
    const std::optional<DefRange> rdef = find_definition(code_text, reader);
    if (!wdef.has_value() || !rdef.has_value()) continue;
    const std::set<std::string> written =
        string_literal_fields(join_range(f.raw, *wdef));
    const std::set<std::string> read =
        string_literal_fields(join_range(f.raw, *rdef));
    for (const std::string& field : written) {
      if (read.count(field) == 0) {
        out.push_back({"QL008", f.rel, wdef->begin_line,
                       "snapshot field '" + field + "' written in " + writer +
                           " but never read in " + reader +
                           " — a checkpoint round-trip would drop it"});
      }
    }
    for (const std::string& field : read) {
      if (written.count(field) == 0) {
        out.push_back({"QL008", f.rel, rdef->begin_line,
                       "snapshot field '" + field + "' read in " + reader +
                           " but never written in " + writer +
                           " — deserialization expects a field the writer "
                           "never emits"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QL016 — telemetry schema catalog (docs/observability.md)
// ---------------------------------------------------------------------------

/// The documented-name catalog: every backticked span in
/// docs/observability.md. `<ident>` segments are wildcards matching one
/// identifier; one-level `{a,b,c}` identifier alternations expand into one
/// entry per alternative. Prose spans that never look like telemetry names
/// simply never match anything — a larger catalog is harmless.
struct SchemaCatalog {
  bool present = false;
  std::vector<std::string> spans;     // raw span text (JSONL-key containment)
  std::vector<std::string> expanded;  // alternation-expanded (fragment check)
  std::vector<std::regex> exact;      // anchored wildcard matchers
};

/// `perf/<phase>_{cycles,misses}` -> {perf/<phase>_cycles, perf/<phase>_misses}.
std::vector<std::string> expand_alternations(const std::string& span) {
  static const std::regex kAlt(R"(\{([A-Za-z0-9_]+(?:,[A-Za-z0-9_]+)+)\})");
  std::vector<std::string> work = {span};
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<std::string> next;
    for (const std::string& s : work) {
      std::smatch m;
      if (!std::regex_search(s, m, kAlt)) {
        next.push_back(s);
        continue;
      }
      grew = true;
      const std::string head = s.substr(0, static_cast<std::size_t>(m.position()));
      const std::string tail =
          s.substr(static_cast<std::size_t>(m.position() + m.length()));
      const std::string alts = m[1].str();
      std::size_t start = 0;
      while (start <= alts.size()) {
        const std::size_t comma = alts.find(',', start);
        const std::size_t len =
            comma == std::string::npos ? std::string::npos : comma - start;
        next.push_back(head + alts.substr(start, len) + tail);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    work = std::move(next);
  }
  return work;
}

/// Anchored matcher for one expanded entry: `<ident>` spans become
/// identifier wildcards, everything else matches literally.
std::regex wildcard_matcher(const std::string& entry) {
  static const std::string kSpecial = R"(\^$.|?*+()[]{})";
  std::string pattern = "^";
  std::size_t i = 0;
  while (i < entry.size()) {
    if (entry[i] == '<') {
      const std::size_t close = entry.find('>', i + 1);
      bool ident = close != std::string::npos && close > i + 1;
      for (std::size_t j = i + 1; ident && j < close; ++j)
        ident = std::isalnum(static_cast<unsigned char>(entry[j])) != 0 ||
                entry[j] == '_';
      if (ident) {
        pattern += "[A-Za-z0-9_]+";
        i = close + 1;
        continue;
      }
    }
    if (kSpecial.find(entry[i]) != std::string::npos) pattern += '\\';
    pattern += entry[i++];
  }
  pattern += "$";
  return std::regex(pattern);
}

SchemaCatalog load_schema_catalog(const fs::path& root) {
  SchemaCatalog catalog;
  const fs::path doc = root / "docs" / "observability.md";
  if (!fs::is_regular_file(doc)) return catalog;
  catalog.present = true;
  const std::string text = read_file(doc);
  static const std::regex kSpan("`([^`\r\n]+)`");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kSpan);
       it != std::sregex_iterator(); ++it) {
    const std::string span = (*it)[1].str();
    catalog.spans.push_back(span);
    for (const std::string& entry : expand_alternations(span)) {
      catalog.expanded.push_back(entry);
      catalog.exact.push_back(wildcard_matcher(entry));
    }
  }
  return catalog;
}

bool name_documented(const SchemaCatalog& catalog, const std::string& name) {
  for (const std::regex& re : catalog.exact)
    if (std::regex_match(name, re)) return true;
  return false;
}

/// A composed registration (prefix/suffix concatenation) is documented when
/// one catalog entry carries every literal fragment as a substring.
bool fragments_documented(const SchemaCatalog& catalog,
                          const std::vector<std::string>& fragments) {
  for (const std::string& entry : catalog.expanded) {
    bool all = true;
    for (const std::string& fragment : fragments)
      if (entry.find(fragment) == std::string::npos) {
        all = false;
        break;
      }
    if (all) return true;
  }
  return false;
}

/// A JSONL key is documented as a standalone backticked token or inside a
/// backticked JSON example (`{"metric":...,"type":...}`).
bool key_documented(const SchemaCatalog& catalog, const std::string& key) {
  for (const std::string& span : catalog.spans)
    if (span == key || span.find("\"" + key + "\"") != std::string::npos)
      return true;
  return false;
}

/// Index one past the ')' matching the '(' at `open`, honoring string
/// literals; npos when unbalanced.
std::size_t past_matching_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '(') ++depth;
    else if (c == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// The first top-level argument of the span between '(' at `open` and the
/// matching ')' — a registration's name expression.
std::string first_argument(const std::string& text, std::size_t open,
                           std::size_t past_close) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i + 1 < past_close; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '(') ++depth;
    else if (c == ')') --depth;
    else if (c == ',' && depth == 1)
      return text.substr(open + 1, i - open - 1);
  }
  return text.substr(open + 1, past_close - open - 2);
}

std::string trim_copy(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.pop_back();
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.erase(s.begin());
  return s;
}

void rule_ql016(const Tree& tree, std::vector<Finding>& out) {
  const SchemaCatalog catalog = load_schema_catalog(tree.root);
  if (!catalog.present) return;
  // Registration sites: member calls on a registry. The name is either one
  // whole-argument string literal (exact catalog match, wildcards allowed)
  // or a concatenation whose literal fragments must all land in one entry.
  static const std::regex kCall(
      R"((?:\.|->)\s*(counter|gauge|histogram)\s*\()");
  static const std::regex kLiteral(R"re("((?:[^"\\]|\\.)*)")re");
  // Emitted JSONL keys: escaped `\"key\":` inside obs serializer literals.
  static const std::regex kEscapedKey(R"(\\"([A-Za-z0-9_]+)\\":)");
  for (const SourceFile& f : tree.files) {
    if (!starts_with(f.rel, "src/")) continue;
    const std::string raw_text = join(f.raw);
    for (auto it = std::sregex_iterator(raw_text.begin(), raw_text.end(),
                                        kCall);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open =
          static_cast<std::size_t>(it->position() + it->length()) - 1;
      const std::size_t past_close = past_matching_paren(raw_text, open);
      if (past_close == std::string::npos) continue;
      const std::string arg =
          trim_copy(first_argument(raw_text, open, past_close));
      std::vector<std::string> fragments;
      for (auto lit = std::sregex_iterator(arg.begin(), arg.end(), kLiteral);
           lit != std::sregex_iterator(); ++lit)
        fragments.push_back((*lit)[1].str());
      if (fragments.empty()) continue;  // dynamic name (e.g. merge())
      const int line =
          line_of(raw_text, static_cast<std::size_t>(it->position()));
      if (fragments.size() == 1 && arg == "\"" + fragments[0] + "\"") {
        if (!name_documented(catalog, fragments[0])) {
          out.push_back({"QL016", f.rel, line,
                         "telemetry name '" + fragments[0] +
                             "' is registered here but missing from the "
                             "docs/observability.md schema catalog — "
                             "document it (backticked) or reuse a "
                             "documented name"});
        }
      } else if (!fragments_documented(catalog, fragments)) {
        std::string list;
        for (const std::string& fragment : fragments) {
          if (!list.empty()) list += "' + '";
          list += fragment;
        }
        out.push_back({"QL016", f.rel, line,
                       "composed telemetry name (literal fragments '" + list +
                           "') matches no single docs/observability.md "
                           "catalog entry"});
      }
    }
    if (!starts_with(f.rel, "src/obs/")) continue;
    for (auto it = std::sregex_iterator(raw_text.begin(), raw_text.end(),
                                        kEscapedKey);
         it != std::sregex_iterator(); ++it) {
      const std::string key = (*it)[1].str();
      if (key_documented(catalog, key)) continue;
      out.push_back(
          {"QL016", f.rel,
           line_of(raw_text, static_cast<std::size_t>(it->position())),
           "JSONL key '" + key +
               "' is emitted here but missing from the "
               "docs/observability.md schema catalog — qoslb-report would "
               "flag the artifact as schema drift"});
    }
  }
}

}  // namespace

void rules_contracts(const Context& ctx, std::vector<Finding>& out) {
  for (const SourceFile& f : ctx.tree.files) rule_ql008(f, out);
  rule_ql004_registry(ctx.tree.files, out);
  rule_ql004_cmake(ctx.tree, out);
  rule_ql006(ctx.tree.root, out);
  rule_ql009_registry(ctx.tree.files, out);
  rule_ql016(ctx.tree, out);
}

}  // namespace qoslb::lint
