#include "tools/lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace qoslb::lint {

namespace fs = std::filesystem;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

void lex(const std::string& text, std::string& code_out,
         std::string& comments_out) {
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRaw: the ")delim\"" terminator
  code_out.clear();
  comments_out.clear();
  code_out.reserve(text.size());
  comments_out.reserve(text.size());
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {  // newlines survive in both views, in every mode
      code_out += '\n';
      comments_out += '\n';
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      continue;
    }
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"') {
          // R"delim( ... )delim" — find the delimiter.
          std::size_t open = text.find('(', i + 2);
          if (open == std::string::npos) {
            code_out += c;
            break;
          }
          raw_delim = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
          code_out += "R\"\"";
          mode = Mode::kRaw;
          i = open;  // consume through the opening '('
        } else if (c == '"') {
          code_out += c;
          mode = Mode::kString;
        } else if (c == '\'') {
          code_out += c;
          mode = Mode::kChar;
        } else {
          code_out += c;
        }
        break;
      case Mode::kLineComment:
        comments_out += c;
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        } else {
          comments_out += c;
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          code_out += c;
          mode = Mode::kCode;
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          code_out += c;
          mode = Mode::kCode;
        }
        break;
      case Mode::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          mode = Mode::kCode;
        }
        break;
    }
  }
}

namespace {

/// Parses `qoslb-lint: allow(QL001, QL002)` / `allow-file(QLxxx)` directives
/// out of the per-line comment text.
void parse_suppressions(SourceFile& f) {
  static const std::regex kDirective(
      R"(qoslb-lint:\s*allow(-file)?\(([^)]*)\))");
  static const std::regex kRuleId(R"(QL\d{3})");
  f.allow.assign(f.comments.size(), {});
  for (std::size_t i = 0; i < f.comments.size(); ++i) {
    auto begin = std::sregex_iterator(f.comments[i].begin(),
                                      f.comments[i].end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const bool file_wide = (*it)[1].matched;
      const std::string ids = (*it)[2].str();
      auto id_begin = std::sregex_iterator(ids.begin(), ids.end(), kRuleId);
      for (auto id = id_begin; id != std::sregex_iterator(); ++id) {
        if (file_wide)
          f.allow_file.insert(id->str());
        else
          f.allow[i].insert(id->str());
      }
    }
  }
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

bool has_extension(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".cxx", ".hh"};
  return kExts.count(p.extension().string()) != 0;
}

bool skipped_dir(const std::string& name) {
  return name == ".git" || name == "CMakeFiles" || name == "_deps" ||
         name == "bench-build" || name.rfind("build", 0) == 0;
}

}  // namespace

std::string to_rel(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Tree collect_tree(const fs::path& root) {
  Tree tree;
  tree.root = root.lexically_normal();
  std::vector<fs::path> stack = {tree.root};
  while (!stack.empty()) {
    const fs::path dir = stack.back();
    stack.pop_back();
    for (const auto& entry : fs::directory_iterator(dir)) {
      const fs::path& p = entry.path();
      if (entry.is_directory()) {
        if (skipped_dir(p.filename().string())) continue;
        if (to_rel(p, tree.root) == "tests/lint_fixtures") continue;
        stack.push_back(p);
      } else if (entry.is_regular_file()) {
        if (p.filename() == "CMakeLists.txt") {
          tree.cmake_lists.push_back(p);
        } else if (has_extension(p)) {
          SourceFile f;
          f.rel = to_rel(p, tree.root);
          const std::string text = read_file(p);
          std::string code;
          std::string comments;
          lex(text, code, comments);
          f.raw = split_lines(text);
          f.code = split_lines(code);
          f.comments = split_lines(comments);
          parse_suppressions(f);
          tree.files.push_back(std::move(f));
        }
      }
    }
  }
  std::sort(
      tree.files.begin(), tree.files.end(),
      [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  std::sort(tree.cmake_lists.begin(), tree.cmake_lists.end());
  return tree;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i) out += '\n';
    out += lines[i];
  }
  return out;
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 +
         static_cast<int>(std::count(text.begin(), text.begin() + pos, '\n'));
}

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& rel) {
  for (const SourceFile& f : files)
    if (f.rel == rel) return &f;
  return nullptr;
}

bool suppressed(const SourceFile& f, int line, const std::string& rule) {
  if (f.allow_file.count(rule)) return true;
  if (line < 1 || static_cast<std::size_t>(line) > f.allow.size()) return false;
  std::size_t i = static_cast<std::size_t>(line) - 1;
  if (f.allow[i].count(rule)) return true;
  while (i > 0 && is_blank(f.code[i - 1])) {
    --i;
    if (f.allow[i].count(rule)) return true;
  }
  return false;
}

std::optional<DefRange> find_definition(const std::string& code_text,
                                        const std::string& fn_name) {
  const std::regex sig("\\b" + fn_name + R"(\s*\()");
  for (auto it = std::sregex_iterator(code_text.begin(), code_text.end(), sig);
       it != std::sregex_iterator(); ++it) {
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length() - 1;
    int depth = 0;
    for (; i < code_text.size(); ++i) {
      if (code_text[i] == '(') ++depth;
      if (code_text[i] == ')' && --depth == 0) break;
    }
    if (i >= code_text.size()) continue;
    bool body = false;
    for (++i; i < code_text.size(); ++i) {
      if (code_text[i] == '{') {
        body = true;
        break;
      }
      if (code_text[i] == ';') break;  // declaration or call statement
    }
    if (!body) continue;
    int braces = 0;
    std::size_t j = i;
    for (; j < code_text.size(); ++j) {
      if (code_text[j] == '{') ++braces;
      if (code_text[j] == '}' && --braces == 0) break;
    }
    if (j >= code_text.size()) continue;
    return DefRange{line_of(code_text, it->position()), line_of(code_text, j)};
  }
  return std::nullopt;
}

std::string join_range(const std::vector<std::string>& lines,
                       const DefRange& range) {
  std::string out;
  for (int i = range.begin_line; i <= range.end_line; ++i) {
    if (i < 1 || static_cast<std::size_t>(i) > lines.size()) continue;
    out += lines[static_cast<std::size_t>(i) - 1];
    out += '\n';
  }
  return out;
}

std::set<std::string> string_literal_fields(const std::string& raw_span) {
  static const std::regex kField(R"(^[a-z_][a-z0-9_]*$)");
  std::set<std::string> fields;
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar };
  Mode mode = Mode::kCode;
  std::string literal;
  const std::size_t n = raw_span.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = raw_span[i];
    const char next = i + 1 < n ? raw_span[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == '"') {
          mode = Mode::kString;
          literal.clear();
        } else if (c == '\'') {
          mode = Mode::kChar;
        }
        break;
      case Mode::kLineComment:
        if (c == '\n') mode = Mode::kCode;
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          mode = Mode::kCode;
          // Field keywords start at the beginning of the literal (a trailing
          // separator space is fine: `"assignment "`). A leading space marks
          // a connector fragment inside a spliced message (`" of "`), never
          // a field name.
          std::size_t end = literal.size();
          while (end > 0 && literal[end - 1] == ' ') --end;
          const std::string trimmed = literal.substr(0, end);
          if (std::regex_match(trimmed, kField)) fields.insert(trimmed);
        } else {
          literal += c;
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        }
        break;
    }
  }
  return fields;
}

}  // namespace qoslb::lint
