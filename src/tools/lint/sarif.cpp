#include <sstream>

#include "tools/lint/lint.hpp"

// SARIF 2.1.0 emission. Hand-rolled writer: the log is one static shape
// (single run, one result per finding, rule metadata from rules()), so a
// string builder with JSON escaping is simpler than threading a DOM through.
// tests/tools_lint_test.cpp round-trips the output through util/json to keep
// it well-formed.
namespace qoslb::lint {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"qoslb-lint\",\n"
      << "          \"informationUri\": \"docs/static-analysis.md\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& all = rules();
  for (std::size_t i = 0; i < all.size(); ++i) {
    out << "            {\"id\": \"" << escape(all[i].id)
        << "\", \"shortDescription\": {\"text\": \"" << escape(all[i].summary)
        << "\"}}" << (i + 1 < all.size() ? "," : "") << '\n';
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::string message = f.message;
    if (!f.why.empty()) {
      message += " [call path:";
      for (const std::string& step : f.why) message += " " + step + ";";
      message.back() = ']';
    }
    out << "        {\n"
        << "          \"ruleId\": \"" << escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << escape(message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace qoslb::lint
