// qoslb-bench-gate — the CI bench-smoke regression gate.
//
// Reads the checked-in floor table (bench/floors.json) and one or more
// BENCH_*.json artifacts, and fails (exit 1) when any gated bench row
// regresses below its floor — or when a floor's matching row is missing
// entirely, so silently dropping a bench row can never pass CI.
//
// Usage:
//   qoslb-bench-gate --floors bench/floors.json BENCH_parallel.json ...
//
// floors.json schema — one object with a "floors" array; each entry:
//   {
//     "file":  "BENCH_parallel.json",     // artifact basename it gates
//     "match": {"mode": "sharded", "threads": 2},   // row selector (AND)
//     "min":   {"users_per_sec": 2.0e6, "speedup_vs_t1": 1.0},  // floors
//     "when_hardware_threads_at_least": 2  // optional: skip the check on
//   }                                      // hosts with fewer cores
//
// Matching rows whose own hardware_threads field is below the
// when_hardware_threads_at_least bound are reported as skipped, not failed —
// a 1-core CI runner cannot demonstrate multithread speedup, but the floors
// stay armed for hosts that can. A floor whose file was not supplied on the
// command line is also a failure: the gate list and the CI invocation must
// agree.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using qoslb::json::Value;

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// True when the row's field equals the selector value (number or string).
bool field_matches(const Value& row, const std::string& key,
                   const Value& wanted) {
  const Value* have = row.find(key);
  if (have == nullptr) return false;
  if (wanted.is_string())
    return have->is_string() && have->as_string() == wanted.as_string();
  if (wanted.is_number())
    return have->is_number() && have->as_number() == wanted.as_number();
  return false;
}

std::string describe_match(const Value& match) {
  std::string out;
  for (const auto& [key, value] : match.members()) {
    if (!out.empty()) out += ", ";
    out += key + "=";
    out += value.is_string() ? value.as_string()
                             : std::to_string(value.as_number());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string floors_path;
  std::vector<std::string> bench_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--floors" && i + 1 < argc) {
      floors_path = argv[++i];
    } else if (arg.rfind("--floors=", 0) == 0) {
      floors_path = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qoslb-bench-gate --floors floors.json "
                   "BENCH_a.json [BENCH_b.json ...]\n";
      return 0;
    } else {
      bench_paths.push_back(arg);
    }
  }
  if (floors_path.empty() || bench_paths.empty()) {
    std::cerr << "usage: qoslb-bench-gate --floors floors.json "
                 "BENCH_a.json [BENCH_b.json ...]\n";
    return 2;
  }

  int failures = 0;
  try {
    const Value floors_doc = qoslb::json::parse_file(floors_path);
    const Value* floors = floors_doc.find("floors");
    if (floors == nullptr || !floors->is_array()) {
      std::cerr << floors_path << ": no \"floors\" array\n";
      return 2;
    }

    // Artifact basename -> parsed rows array.
    std::map<std::string, Value> artifacts;
    for (const std::string& path : bench_paths) {
      const Value doc = qoslb::json::parse_file(path);
      const Value* rows = doc.find("rows");
      if (rows == nullptr || !rows->is_array()) {
        std::cerr << path << ": no \"rows\" array\n";
        return 2;
      }
      artifacts.emplace(basename_of(path), *rows);
    }

    std::size_t checked = 0, skipped = 0;
    for (const Value& floor : floors->items()) {
      const Value* file = floor.find("file");
      const Value* match = floor.find("match");
      const Value* min = floor.find("min");
      if (file == nullptr || match == nullptr || min == nullptr) {
        std::cerr << floors_path
                  << ": floor entry needs file/match/min fields\n";
        return 2;
      }
      const auto artifact = artifacts.find(file->as_string());
      if (artifact == artifacts.end()) {
        std::cerr << "FAIL: floor for " << file->as_string() << " ("
                  << describe_match(*match)
                  << ") — artifact not supplied to the gate\n";
        ++failures;
        continue;
      }

      double hw_bound = 0.0;
      if (const Value* bound = floor.find("when_hardware_threads_at_least"))
        hw_bound = bound->as_number();

      bool found_row = false;
      for (const Value& row : artifact->second.items()) {
        bool selected = true;
        for (const auto& [key, wanted] : match->members())
          selected = selected && field_matches(row, key, wanted);
        if (!selected) continue;
        found_row = true;

        if (hw_bound > 0.0) {
          const Value* hw = row.find("hardware_threads");
          if (hw != nullptr && hw->as_number() < hw_bound) {
            std::cout << "skip: " << file->as_string() << " ("
                      << describe_match(*match) << ") — host has "
                      << hw->as_number() << " hardware threads, floor needs "
                      << hw_bound << "\n";
            ++skipped;
            continue;
          }
        }

        for (const auto& [metric, floor_value] : min->members()) {
          const Value* have = row.find(metric);
          if (have == nullptr || !have->is_number()) {
            std::cerr << "FAIL: " << file->as_string() << " ("
                      << describe_match(*match) << ") row has no numeric \""
                      << metric << "\" field\n";
            ++failures;
            continue;
          }
          ++checked;
          if (have->as_number() < floor_value.as_number()) {
            std::cerr << "FAIL: " << file->as_string() << " ("
                      << describe_match(*match) << ") " << metric << " = "
                      << have->as_number() << " < floor "
                      << floor_value.as_number() << "\n";
            ++failures;
          }
        }
      }
      if (!found_row) {
        std::cerr << "FAIL: " << file->as_string() << " ("
                  << describe_match(*match)
                  << ") — no bench row matches this floor\n";
        ++failures;
      }
    }
    std::cout << "bench-gate: " << checked << " floor checks, " << skipped
              << " skipped (hardware), " << failures << " failures\n";
  } catch (const std::exception& error) {
    std::cerr << "bench-gate: " << error.what() << "\n";
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
