// qoslb — command-line driver for ad-hoc experiments.
//
//   qoslb --mode=run    --family=uniform --protocol=admission --n=4096 ...
//   qoslb --mode=trace  --family=uniform --protocol=adaptive  --n=1024 ...
//   qoslb --mode=async  --n=2000 --m=100 --jitter=0.5
//   qoslb --mode=open   --m=64 --rho=0.9 --rounds=3000
//
// Modes:
//   run    one replicated configuration; prints the aggregate row.
//   trace  single run; prints the per-round trajectory as CSV.
//          --load=FILE replays a world saved by --mode=gen.
//   async  asynchronous (DES) admission run; prints event statistics.
//   open   open-system run; prints violation metrics.
//   gen    generate an instance + start state to --out (io format).
//
// Shared options: --seed, --reps (run mode), --csv, --threads (run mode),
// --engine-mode=dense|active (run mode; active iterates only the unsatisfied
// set, bit-identical for protocols marked [active-set]).
//
// Heterogeneous rates (run/trace/gen modes, docs/heterogeneity.md):
// --rate-model=uniform|matrix|bipartite selects the rate model; matrix uses
// make_zipf_rates (--rate-exponent), bipartite make_clustered_bipartite
// (--clusters, --extra-edges). Non-uniform rate models build their own
// instance family (combining with --family is an error); restricted
// instances additionally reject --start=all0 and protocols not marked
// [restricted] in --list-protocols.
//
// Robustness (run mode, docs/faults.md): --fail=R:ROUND,... and
// --recover=R:ROUND,... schedule deterministic mid-run resource churn;
// --check-every=K audits State::check_invariants() every K rounds. With a
// churn plan the run prints an extra churn summary line (degradation
// metrics aggregated over the replications).
// `qoslb --list-protocols` prints every registered protocol kind with a
// one-line description ([active-set] marks active-set-capable kinds) and
// exits.
//
// Telemetry (run/trace/async modes, docs/observability.md):
//   --metrics-out=FILE   write the run's metrics registry as JSONL
//   --trace-out=FILE     write per-round trace rows as JSONL
//   --decisions-out=FILE write sampled decision/span/diag events as JSONL
//   --trace-sample=K     keep 1-in-K users in the decision stream (hash of
//                        (seed, user), so the sample is thread/mode
//                        invariant; default 1 = every user)
//   --herding-factor=X   flag rounds where one resource's in-migrations
//                        exceed X times its drain (default 4)
//   --perf               record hardware counters per engine phase into the
//                        metrics registry (Linux perf_event_open; degrades
//                        to a warning where unavailable)
//   --report=FILE        after the run, analyze the written artifacts with
//                        the qoslb-report passes and write Markdown here
//   --progress[=...]     log progress through QOSLB_INFO every
//                        --progress-every rounds (default 100)
//   --log-level=LEVEL    debug|info|warn|error|off (global; default warn)
// Telemetry never changes the run: assignments and counters are
// bit-identical with the flags on or off.

#include <algorithm>
#include <fstream>
#include <optional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/engine.hpp"
#include "core/io/instance_io.hpp"
#include "core/experiment.hpp"
#include "core/generators.hpp"
#include "core/open/open_system.hpp"
#include "core/protocols/registry.hpp"
#include "net/generators.hpp"
#include "obs/clock.hpp"
#include "obs/decision_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace_sink.hpp"
#include "tools/report/report.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace qoslb;

namespace {

/// CLI-side telemetry wiring: owns the registry, file streams, sinks, and
/// the injected wall clock. Filled in place (the tee keeps pointers into
/// this object, so it must not move).
struct TelemetryOptions {
  std::string metrics_path;
  std::string trace_path;
  std::string decisions_path;
  std::string report_path;
  std::uint64_t trace_sample = 1;
  double herding_factor = 4.0;
  bool enabled = false;

  obs::MetricsRegistry metrics;
  obs::SteadyClock clock;
  std::ofstream trace_file;
  std::optional<obs::JsonlTraceSink> trace_sink;
  std::optional<obs::ProgressTraceSink> progress_sink;
  obs::TeeTraceSink tee;
  std::ofstream decisions_file;
  std::optional<obs::JsonlDecisionSink> decisions_sink;
  std::optional<obs::PerfCounters> perf;
  bool has_rows = false;  // any row-consuming sink attached
};

void read_telemetry(ArgParser& args, TelemetryOptions& io) {
  io.metrics_path = args.get_string("metrics-out", "");
  io.trace_path = args.get_string("trace-out", "");
  io.decisions_path = args.get_string("decisions-out", "");
  io.report_path = args.get_string("report", "");
  const long long trace_sample = args.get_int("trace-sample", 1);
  if (trace_sample < 1)
    throw std::runtime_error("--trace-sample must be at least 1");
  io.trace_sample = static_cast<std::uint64_t>(trace_sample);
  io.herding_factor = args.get_double("herding-factor", 4.0);
  if (io.herding_factor <= 0.0)
    throw std::runtime_error("--herding-factor must be positive");
  const bool progress = args.get_flag("progress");
  const auto progress_every =
      static_cast<std::uint64_t>(args.get_int("progress-every", 100));
  if (!io.trace_path.empty()) {
    io.trace_file.open(io.trace_path);
    if (!io.trace_file)
      throw std::runtime_error("cannot open --trace-out '" + io.trace_path +
                               "'");
    io.trace_sink.emplace(io.trace_file);
    io.tee.add(&*io.trace_sink);
    io.has_rows = true;
  }
  if (!io.decisions_path.empty()) {
    io.decisions_file.open(io.decisions_path);
    if (!io.decisions_file)
      throw std::runtime_error("cannot open --decisions-out '" +
                               io.decisions_path + "'");
    io.decisions_sink.emplace(io.decisions_file);
  }
  if (args.get_flag("perf")) io.perf.emplace();
  if (progress) {
    // --progress implies info verbosity (the reports go through QOSLB_INFO).
    if (Log::level() > LogLevel::kInfo) Log::set_level(LogLevel::kInfo);
    io.progress_sink.emplace(progress_every);
    io.tee.add(&*io.progress_sink);
    io.has_rows = true;
  }
  io.enabled = io.has_rows || !io.metrics_path.empty() ||
               io.decisions_sink.has_value() || io.perf.has_value();
}

/// Points config.telemetry at the wired-up sinks. The clock rides along
/// whenever telemetry is on so phase gauges come for free.
void apply_telemetry(TelemetryOptions& io, EngineConfig& config) {
  if (!io.enabled) return;
  if (!io.metrics_path.empty()) config.telemetry.metrics = &io.metrics;
  if (io.has_rows) config.telemetry.sink = &io.tee;
  if (io.decisions_sink.has_value()) {
    config.telemetry.decisions = &*io.decisions_sink;
    config.telemetry.decision_sample = io.trace_sample;
    config.telemetry.herding_factor = io.herding_factor;
  }
  if (io.perf.has_value()) config.telemetry.perf = &*io.perf;
  config.telemetry.clock = &io.clock;
}

void finish_telemetry(TelemetryOptions& io) {
  if (!io.metrics_path.empty()) {
    std::ofstream out(io.metrics_path);
    if (!out)
      throw std::runtime_error("cannot open --metrics-out '" +
                               io.metrics_path + "'");
    io.metrics.write_jsonl(out);
    QOSLB_INFO << "wrote " << io.metrics.size() << " metrics to "
               << io.metrics_path;
  }
  if (io.report_path.empty()) return;
  // Close the artifact streams before the report passes re-read them.
  if (io.trace_file.is_open()) io.trace_file.close();
  if (io.decisions_file.is_open()) io.decisions_file.close();
  report::Report analysis;
  if (!io.metrics_path.empty()) report::ingest_file(io.metrics_path, analysis);
  if (!io.trace_path.empty()) report::ingest_file(io.trace_path, analysis);
  if (!io.decisions_path.empty())
    report::ingest_file(io.decisions_path, analysis);
  std::ofstream out(io.report_path);
  if (!out)
    throw std::runtime_error("cannot open --report '" + io.report_path + "'");
  out << report::render_markdown(analysis);
  QOSLB_INFO << "wrote report to " << io.report_path;
  // The run itself stays usable when detectors fire — the standalone
  // qoslb-report tool is the gating entry point; here we just surface it.
  if (report::exit_code(analysis) != 0) {
    QOSLB_WARN << "report: " << analysis.total_findings() << " findings, "
               << analysis.schema_issues.size() << " schema issues — see "
               << io.report_path;
  }
}

Instance build_family(const std::string& family, std::size_t n, std::size_t m,
                      double slack, Xoshiro256& rng) {
  if (family == "uniform") return make_uniform_feasible(n, m, slack, 1.5, rng);
  if (family == "classes") return make_qos_classes(m, 4, 8, slack);
  if (family == "zipf") return make_zipf(n, m, 1.1, rng);
  if (family == "related") return make_related_capacities(n, m, slack, 3, rng);
  if (family == "overloaded") return make_overloaded(n, m, 2.0);
  if (family == "herding") return make_herding(n);
  throw std::invalid_argument(
      "unknown --family '" + family +
      "' (uniform|classes|zipf|related|overloaded|herding)");
}

/// Heterogeneous-rate options (docs/heterogeneity.md). A non-uniform
/// --rate-model replaces the --family generator with its own construction,
/// so combining the two is rejected loudly rather than silently ignored.
struct RateModelOptions {
  std::string model = "uniform";
  double exponent = 1.1;    // --rate-exponent (matrix: Zipf class skew)
  std::size_t clusters = 8; // --clusters      (bipartite: home clusters)
  std::size_t extra = 2;    // --extra-edges   (bipartite: remote edges/user)
};

RateModelOptions read_rate_model(ArgParser& args) {
  RateModelOptions rates;
  rates.model = args.get_string("rate-model", "uniform");
  rates.exponent = args.get_double("rate-exponent", 1.1);
  rates.clusters = static_cast<std::size_t>(args.get_int("clusters", 8));
  rates.extra = static_cast<std::size_t>(args.get_int("extra-edges", 2));
  return rates;
}

Instance build_instance(const std::string& family, const RateModelOptions& rates,
                        std::size_t n, std::size_t m, double slack,
                        Xoshiro256& rng) {
  if (rates.model == "uniform") return build_family(family, n, m, slack, rng);
  if (family != "uniform")
    throw std::invalid_argument(
        "--rate-model=" + rates.model +
        " builds its own instance family; drop --family=" + family);
  if (rates.model == "matrix")
    return make_zipf_rates(n, m, slack, rates.exponent, rng);
  if (rates.model == "bipartite")
    return make_clustered_bipartite(n, m, rates.clusters, rates.extra, slack,
                                    rng);
  throw std::invalid_argument("unknown --rate-model '" + rates.model +
                              "' (uniform|matrix|bipartite)");
}

/// Parses --fail/--recover "R:ROUND,..." specs into one round-ordered churn
/// plan (same-round failures apply before recoveries).
ChurnPlan parse_churn(const std::string& fail_spec,
                      const std::string& recover_spec) {
  const auto parse = [](const std::string& spec, ChurnKind kind) {
    std::vector<ChurnEvent> events;
    for (const std::string& item : split(spec, ',')) {
      if (item.empty()) continue;
      const std::vector<std::string> parts = split(item, ':');
      if (parts.size() != 2)
        throw std::invalid_argument("churn entry expects R:ROUND, got '" +
                                    item + "'");
      ChurnEvent event;
      event.resource = static_cast<ResourceId>(std::stoul(parts[0]));
      event.round = static_cast<std::uint64_t>(std::stoull(parts[1]));
      event.kind = kind;
      events.push_back(event);
    }
    return events;
  };
  const std::vector<ChurnEvent> fails = parse(fail_spec, ChurnKind::kFail);
  const std::vector<ChurnEvent> recovers =
      parse(recover_spec, ChurnKind::kRecover);
  ChurnPlan plan;
  std::size_t fi = 0, ri = 0;
  while (fi < fails.size() || ri < recovers.size()) {
    const bool take_fail =
        ri >= recovers.size() ||
        (fi < fails.size() && fails[fi].round <= recovers[ri].round);
    plan.events.push_back(take_fail ? fails[fi++] : recovers[ri++]);
  }
  return plan;
}

State build_start(const std::string& start, const Instance& instance,
                  Xoshiro256& rng) {
  if (start == "all0" && instance.restricted())
    throw std::invalid_argument(
        "--start=all0 places every user on resource 0, but the instance is "
        "restricted (some users cannot reach it); use --start=random or "
        "--start=round-robin");
  if (start == "all0") return State::all_on(instance, 0);
  if (start == "random") return State::random(instance, rng);
  if (start == "round-robin") return State::round_robin(instance);
  throw std::invalid_argument("unknown --start '" + start +
                              "' (all0|random|round-robin)");
}

int mode_run(ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 4096));
  const auto m = static_cast<std::size_t>(args.get_int("m", 256));
  const double slack = args.get_double("slack", 0.15);
  const std::string family = args.get_string("family", "uniform");
  const std::string kind = args.get_string("protocol", "admission");
  const double lambda = args.get_double("lambda", 0.5);
  const long long probes = args.get_int("probes", 1);
  const std::string start = args.get_string("start", "all0");
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto max_rounds = static_cast<std::uint64_t>(
      args.get_int("max-rounds", 1 << 20));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::string engine_mode = args.get_string("engine-mode", "dense");
  const ChurnPlan churn = parse_churn(args.get_string("fail", ""),
                                      args.get_string("recover", ""));
  const auto check_every =
      static_cast<std::uint32_t>(args.get_int("check-every", 0));
  const bool csv = args.get_flag("csv");
  const RateModelOptions rates = read_rate_model(args);
  TelemetryOptions telemetry;
  read_telemetry(args, telemetry);
  args.finish();

  EngineMode mode = EngineMode::kDense;
  if (engine_mode == "active")
    mode = EngineMode::kActive;
  else if (engine_mode != "dense")
    throw std::invalid_argument("unknown --engine-mode '" + engine_mode +
                                "' (dense|active)");

  const Graph graph = make_complete(static_cast<Vertex>(m));
  ChurnStats churn_total;  // aggregated over the replications
  const AggregatedRuns agg =
      aggregate_runs(seed, reps, [&](std::uint64_t rep_seed) {
        Xoshiro256 rng(rep_seed);
        const Instance instance =
            build_instance(family, rates, n, m, slack, rng);
        State state = build_start(start, instance, rng);
        ProtocolSpec spec;
        spec.kind = kind;
        spec.lambda = lambda;
        spec.probes = static_cast<int>(probes);
        spec.graph = &graph;
        const auto protocol = make_protocol(spec);
        EngineConfig config;
        config.max_rounds = max_rounds;
        config.threads = threads;
        config.mode = mode;
        config.churn = churn;
        config.invariant_check_period = check_every;
        // Replications share the registry (counters accumulate) and the
        // sinks (one begin/end block per rep).
        apply_telemetry(telemetry, config);
        ReplicatedRun run;
        run.result = Engine(config).run(*protocol, state, rng);
        churn_total.failures += run.result.churn.failures;
        churn_total.recoveries += run.result.churn.recoveries;
        churn_total.evicted += run.result.churn.evicted;
        churn_total.max_dip_depth = std::max(churn_total.max_dip_depth,
                                             run.result.churn.max_dip_depth);
        churn_total.max_recovery_rounds =
            std::max(churn_total.max_recovery_rounds,
                     run.result.churn.max_recovery_rounds);
        churn_total.dip_open = churn_total.dip_open || run.result.churn.dip_open;
        run.num_users = instance.num_users();
        return run;
      });
  finish_telemetry(telemetry);

  TablePrinter table({"family", "protocol", "n", "m", "rounds_mean",
                      "rounds_p95", "migrations_mean", "messages_mean",
                      "satisfied_frac", "converged"});
  table.cell(family)
      .cell(kind)
      .cell(static_cast<long long>(n))
      .cell(static_cast<long long>(m))
      .cell(agg.rounds.mean())
      .cell(agg.rounds_p95)
      .cell(agg.migrations.mean())
      .cell(agg.messages.mean())
      .cell(agg.satisfied_fraction.mean())
      .cell(agg.converged_fraction)
      .end_row();
  if (csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  if (churn.any()) {
    std::cout << "churn: failures=" << churn_total.failures
              << " recoveries=" << churn_total.recoveries
              << " evicted=" << churn_total.evicted
              << " max_dip_depth=" << churn_total.max_dip_depth
              << " max_recovery_rounds=" << churn_total.max_recovery_rounds
              << " dip_open=" << (churn_total.dip_open ? "yes" : "no") << '\n';
  }
  return 0;
}

int mode_gen(ArgParser& args) {
  // Generates an instance (+ initial state) and writes the io format to
  // --out (default stdout), replayable with --mode=trace --load=FILE.
  const auto n = static_cast<std::size_t>(args.get_int("n", 1024));
  const auto m = static_cast<std::size_t>(args.get_int("m", 64));
  const double slack = args.get_double("slack", 0.15);
  const std::string family = args.get_string("family", "uniform");
  const std::string start = args.get_string("start", "all0");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string out_path = args.get_string("out", "");
  const RateModelOptions rates = read_rate_model(args);
  args.finish();

  Xoshiro256 rng(seed);
  const Instance instance = build_instance(family, rates, n, m, slack, rng);
  const State state = build_start(start, instance, rng);

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) throw std::runtime_error("cannot open --out '" + out_path + "'");
  }
  std::ostream& out = out_path.empty() ? std::cout : file;
  write_instance(out, instance);
  write_state(out, state);
  if (!out_path.empty()) {
    QOSLB_INFO << "wrote " << instance.num_users() << " users / "
               << instance.num_resources() << " resources to " << out_path;
  }
  return 0;
}

int mode_trace(ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 1024));
  const auto m = static_cast<std::size_t>(args.get_int("m", 64));
  const double slack = args.get_double("slack", 0.15);
  const std::string family = args.get_string("family", "uniform");
  const std::string kind = args.get_string("protocol", "adaptive");
  const double lambda = args.get_double("lambda", 0.5);
  const std::string start = args.get_string("start", "all0");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto max_rounds =
      static_cast<std::uint64_t>(args.get_int("max-rounds", 100000));
  const std::string load_path = args.get_string("load", "");
  const RateModelOptions rates = read_rate_model(args);
  TelemetryOptions telemetry;
  read_telemetry(args, telemetry);
  args.finish();

  Xoshiro256 rng(seed);
  // Either replay a saved world (--load) or generate one.
  std::optional<Instance> instance;
  std::optional<State> state;
  if (!load_path.empty()) {
    std::ifstream file(load_path);
    if (!file) throw std::runtime_error("cannot open --load '" + load_path + "'");
    instance = read_instance(file);
    state.emplace(read_state(file, *instance));
  } else {
    instance = build_instance(family, rates, n, m, slack, rng);
    state.emplace(build_start(start, *instance, rng));
  }
  ProtocolSpec spec;
  spec.kind = kind;
  spec.lambda = lambda;
  const auto protocol = make_protocol(spec);

  // The trace is an Engine run feeding the CSV sink on stdout (plus any
  // --trace-out/--progress sinks); period 1 keeps the legacy recorder's
  // check-every-round semantics.
  obs::CsvTraceSink csv(std::cout);
  telemetry.tee.add(&csv);
  telemetry.has_rows = true;
  telemetry.enabled = true;
  EngineConfig config;
  config.max_rounds = max_rounds;
  config.stability_check_period = 1;
  config.seed = seed;
  apply_telemetry(telemetry, config);
  Engine(config).run(*protocol, *state, rng);
  finish_telemetry(telemetry);
  return 0;
}

int mode_async(ArgParser& args) {
  const auto n = static_cast<std::size_t>(args.get_int("n", 2000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 100));
  const double slack = args.get_double("slack", 0.25);
  const double jitter = args.get_double("jitter", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool random_start = !args.get_flag("all0");
  // Fault injection (docs/faults.md): --drop/--dup are uniform per-message
  // probabilities, --heavy-tail the probability of a Pareto latency spike,
  // --crash=R:T0:T1 crashes resource R over [T0, T1) (repeatable via a
  // comma-separated list).
  const double drop = args.get_double("drop", 0.0);
  const double dup = args.get_double("dup", 0.0);
  const double heavy_tail = args.get_double("heavy-tail", 0.0);
  const std::string crash_spec = args.get_string("crash", "");
  TelemetryOptions telemetry;
  read_telemetry(args, telemetry);
  args.finish();

  Xoshiro256 rng(seed);
  const Instance instance = make_uniform_feasible(n, m, slack, 1.5, rng);
  EngineConfig config;
  config.seed = seed;
  config.latency_jitter = jitter;
  config.random_start = random_start;
  if (drop != 0.0) config.faults.drop_all(drop);
  if (dup != 0.0) config.faults.dup_all(dup);
  if (heavy_tail != 0.0) config.faults.heavy_tail(heavy_tail);
  for (const std::string& window : split(crash_spec, ',')) {
    if (window.empty()) continue;
    const std::vector<std::string> parts = split(window, ':');
    if (parts.size() != 3)
      throw std::invalid_argument("--crash expects R:T0:T1, got '" + window +
                                  "'");
    config.faults.crash(static_cast<AgentId>(std::stoul(parts[0])),
                        std::stod(parts[1]), std::stod(parts[2]));
  }
  // Async runs produce no trace rows; metrics and (virtual-time) phase
  // timers still apply.
  apply_telemetry(telemetry, config);
  const EngineResult result = Engine(config).run_async_admission(instance);
  finish_telemetry(telemetry);

  TablePrinter table({"n", "m", "virtual_time", "events", "messages",
                      "migrations", "satisfied", "all_satisfied", "quiesced",
                      "faults", "timeouts", "retries"});
  table.cell(static_cast<long long>(n))
      .cell(static_cast<long long>(m))
      .cell(result.virtual_time, 5)
      .cell(static_cast<unsigned long long>(result.events))
      .cell(static_cast<unsigned long long>(result.counters.messages()))
      .cell(static_cast<unsigned long long>(result.counters.migrations))
      .cell(static_cast<unsigned long long>(result.final_satisfied))
      .cell(result.all_satisfied ? "yes" : "no")
      .cell(result.termination == Termination::kQuiesced ? "yes" : "no")
      .cell(static_cast<unsigned long long>(result.faults.total()))
      .cell(static_cast<unsigned long long>(result.counters.timeouts))
      .cell(static_cast<unsigned long long>(result.counters.retries))
      .end_row();
  table.print(std::cout);
  return 0;
}

int mode_open(ArgParser& args) {
  const auto m = static_cast<std::size_t>(args.get_int("m", 64));
  const double rho = args.get_double("rho", 0.8);
  const auto rounds = static_cast<std::uint64_t>(args.get_int("rounds", 3000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  args.finish();

  OpenSystemConfig config;
  config.num_resources = m;
  config.mean_lifetime = 200.0;
  config.q_lo = 0.04;
  config.q_hi = 0.05;
  config.arrival_rate = rho * static_cast<double>(m) * 22.5 / config.mean_lifetime;
  config.rounds = rounds;
  config.warmup_rounds = rounds / 3;
  config.seed = seed;
  const OpenSystemMetrics metrics = run_open_system(config);

  TablePrinter table({"rho", "mean_population", "violation_frac",
                      "rounds_to_sat", "arrivals", "migrations"});
  table.cell(rho)
      .cell(metrics.mean_population)
      .cell(metrics.violation_fraction)
      .cell(metrics.mean_rounds_to_satisfaction)
      .cell(static_cast<unsigned long long>(metrics.arrivals))
      .cell(static_cast<unsigned long long>(metrics.migrations))
      .end_row();
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    const std::string log_level = args.get_string("log-level", "");
    if (!log_level.empty()) Log::set_level(parse_log_level(log_level));
    if (args.get_flag("list-protocols")) {
      std::size_t width = 0;
      for (const ProtocolInfo& info : protocol_registry())
        width = std::max(width, info.name.size());
      for (const ProtocolInfo& info : protocol_registry())
        std::cout << info.name << std::string(width - info.name.size() + 2, ' ')
                  << info.description
                  << (info.active_set ? "  [active-set]" : "")
                  << (info.restricted ? "  [restricted]" : "") << '\n';
      return 0;
    }
    const std::string mode = args.get_string("mode", "run");
    if (mode == "run") return mode_run(args);
    if (mode == "trace") return mode_trace(args);
    if (mode == "async") return mode_async(args);
    if (mode == "open") return mode_open(args);
    if (mode == "gen") return mode_gen(args);
    throw std::invalid_argument("unknown --mode '" + mode +
                                "' (run|trace|async|open|gen)");
  } catch (const std::exception& error) {
    std::cerr << "qoslb: " << error.what() << '\n';
    return 1;
  }
}
