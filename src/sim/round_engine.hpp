#pragma once

#include <cstdint>
#include <functional>

namespace qoslb {

/// A synchronous-rounds distributed computation: all agents act once per
/// round against the state observed at the round boundary (the standard
/// synchronous model the paper's analysis uses).
class RoundTask {
 public:
  virtual ~RoundTask() = default;

  /// Executes one round. `round_index` starts at 0.
  virtual void round(std::uint64_t round_index) = 0;

  /// True once the computation has reached its stopping condition (e.g. a
  /// satisfaction equilibrium). Checked after every round.
  virtual bool converged() const = 0;
};

struct RoundRunResult {
  std::uint64_t rounds = 0;  // rounds actually executed
  bool converged = false;    // false means max_rounds was exhausted
};

/// Drives `task` for at most `max_rounds` rounds; `observer` (optional) is
/// invoked after each round with the finished round's index.
RoundRunResult run_rounds(RoundTask& task, std::uint64_t max_rounds,
                          const std::function<void(std::uint64_t)>& observer = {});

}  // namespace qoslb
