#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "rng/philox.hpp"
#include "sim/worker_pool.hpp"

namespace qoslb {

/// One synchronous round decomposed for sharded execution: the engine calls
/// begin_round() once (snapshot the round-boundary state, size the shard
/// buffers), fans decide() out over the shards — concurrently when a pool is
/// attached — and finally calls commit() on the driving thread.
///
/// The task owns its buffers; decide() for different shards must be
/// mutually independent (write only shard-local data, read only the
/// round-boundary snapshot), which is what makes the fan-out safe.
class ShardedRoundTask {
 public:
  virtual ~ShardedRoundTask() = default;

  /// Called once per round, before any decide(), with the shard count.
  virtual void begin_round(std::size_t num_shards) = 0;

  /// Decides for items [begin, end); `shard` is the shard index and `rng`
  /// the shard's private counter-based substream. May run concurrently with
  /// other shards of the same round.
  virtual void decide(std::size_t shard, std::size_t begin, std::size_t end,
                      PhiloxEngine& rng) = 0;

  /// Applies the round. Runs on the driving thread after every decide() of
  /// the round has returned.
  virtual void commit() = 0;
};

/// Sharded parallel executor for synchronous rounds (docs/engine.md).
///
/// Items (users) are partitioned into fixed-size shards — the partition
/// depends only on `shard_size` and the item count, never on the worker
/// count — and each shard decides against the immutable round snapshot.
/// Each shard still receives a deterministic Philox substream keyed by
/// (seed, round, shard) for tasks that want per-shard draws; the engine's
/// protocol task ignores it in favor of per-(seed, round, user) streams
/// (rng/round_rng.hpp), which additionally make results independent of the
/// shard geometry and of which users are iterated at all. Workers merely
/// execute shards; since no shard reads another shard's output and commit()
/// consumes the buffers in shard order, the results are bit-identical for
/// every thread count, including the inline serial path.
///
/// The fan-out runs on a persistent RoundWorkerPool (sim/worker_pool.hpp):
/// workers are spawned once and parked on a condition variable between
/// rounds, so a round's dispatch cost is one mutex-protected publication
/// plus lock-free shard claims — not a per-round thread spawn or a
/// per-shard queue transaction (docs/performance.md).
class ParallelRoundEngine {
 public:
  struct Options {
    /// Worker threads: 0 = hardware concurrency, 1 = inline serial (no pool).
    std::size_t threads = 0;
    /// Items per shard. Fixed so the RNG substream assignment — and hence
    /// the result — is invariant under the thread count. The default keeps
    /// a shard's working set (assignment + threshold arrays plus its slice
    /// of the load snapshot) comfortably inside a per-core L2 while leaving
    /// >= 8 shards of claimable work per million users; results do not
    /// depend on it (per-user substreams), so it is a pure tuning knob.
    std::size_t shard_size = 8192;
    /// Master seed the per-(round, shard) substream keys derive from.
    std::uint64_t seed = 1;
  };

  explicit ParallelRoundEngine(Options options);
  ~ParallelRoundEngine();

  ParallelRoundEngine(const ParallelRoundEngine&) = delete;
  ParallelRoundEngine& operator=(const ParallelRoundEngine&) = delete;

  std::size_t threads() const { return pool_ ? pool_->participants() : 1; }
  std::size_t num_shards(std::size_t num_items) const;

  /// Executes one round of `task` over `num_items` items: begin_round, the
  /// sharded decide fan-out, commit.
  void round(ShardedRoundTask& task, std::size_t num_items,
             std::uint64_t round_index);

  /// Shards [0, num_items) with the same fixed partition as round(), runs
  /// `body(begin, end)` on the pool, and returns the sum of the results in
  /// shard order. Used for O(n) per-round scans (e.g. satisfied counts) that
  /// would otherwise serialize the round loop.
  std::uint64_t map_reduce(
      std::size_t num_items,
      const std::function<std::uint64_t(std::size_t, std::size_t)>& body);

  /// Substream key for (seed, round, shard): two chained SplitMix64
  /// derivations, so distinct coordinates give decorrelated Philox streams.
  static std::uint64_t substream_key(std::uint64_t seed, std::uint64_t round,
                                     std::uint64_t shard);

 private:
  Options options_;
  std::unique_ptr<RoundWorkerPool> pool_;  // null for the inline serial path
};

}  // namespace qoslb
