#include "sim/parallel_round_engine.hpp"

#include <algorithm>
#include <vector>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace qoslb {

ParallelRoundEngine::ParallelRoundEngine(Options options) : options_(options) {
  QOSLB_REQUIRE(options_.shard_size >= 1, "shard_size must be positive");
  if (options_.threads != 1)
    pool_ = std::make_unique<RoundWorkerPool>(options_.threads);
}

ParallelRoundEngine::~ParallelRoundEngine() = default;

std::size_t ParallelRoundEngine::num_shards(std::size_t num_items) const {
  return std::max<std::size_t>(
      1, (num_items + options_.shard_size - 1) / options_.shard_size);
}

std::uint64_t ParallelRoundEngine::substream_key(std::uint64_t seed,
                                                 std::uint64_t round,
                                                 std::uint64_t shard) {
  return derive_seed(derive_seed(seed, round), shard);
}

void ParallelRoundEngine::round(ShardedRoundTask& task, std::size_t num_items,
                                std::uint64_t round_index) {
  const std::size_t shards = num_shards(num_items);
  task.begin_round(shards);
  const auto run_shard = [&](std::size_t s) {
    const std::size_t begin = s * options_.shard_size;
    const std::size_t end = std::min(num_items, begin + options_.shard_size);
    PhiloxEngine rng(substream_key(options_.seed, round_index, s));
    task.decide(s, begin, end, rng);
  };
  if (pool_) {
    pool_->run(shards, run_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  }
  task.commit();
}

std::uint64_t ParallelRoundEngine::map_reduce(
    std::size_t num_items,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& body) {
  const std::size_t shards = num_shards(num_items);
  std::vector<std::uint64_t> partial(shards, 0);
  const auto run_shard = [&](std::size_t s) {
    const std::size_t begin = s * options_.shard_size;
    const std::size_t end = std::min(num_items, begin + options_.shard_size);
    partial[s] = body(begin, end);
  };
  if (pool_) {
    pool_->run(shards, run_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  }
  std::uint64_t total = 0;
  for (const std::uint64_t p : partial) total += p;
  return total;
}

}  // namespace qoslb
