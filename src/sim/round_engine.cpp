#include "sim/round_engine.hpp"

namespace qoslb {

RoundRunResult run_rounds(RoundTask& task, std::uint64_t max_rounds,
                          const std::function<void(std::uint64_t)>& observer) {
  RoundRunResult result;
  if (task.converged()) {
    result.converged = true;
    return result;
  }
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    task.round(r);
    ++result.rounds;
    if (observer) observer(r);
    if (task.converged()) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace qoslb
