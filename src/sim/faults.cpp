#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

std::size_t type_index(MsgType type) {
  const auto index = static_cast<std::size_t>(type);
  QOSLB_CHECK(index < kNumMsgTypes, "message type outside fault tables");
  return index;
}

/// Local clocks and recovery notices are not network traffic.
bool network_message(MsgType type) {
  return type != MsgType::kTimer && type != MsgType::kRecover;
}

}  // namespace

bool FaultPlan::any() const {
  for (const double p : drop)
    if (p > 0.0) return true;
  for (const double p : dup)
    if (p > 0.0) return true;
  if (heavy_tail_prob > 0.0) return true;
  return !crashes.empty();
}

FaultPlan& FaultPlan::drop_all(double p) {
  QOSLB_REQUIRE(p >= 0.0 && p < 1.0, "drop probability must be in [0,1)");
  for (std::size_t t = 0; t < kNumMsgTypes; ++t)
    if (network_message(static_cast<MsgType>(t))) drop[t] = p;
  return *this;
}

FaultPlan& FaultPlan::dup_all(double p) {
  QOSLB_REQUIRE(p >= 0.0 && p <= 1.0, "dup probability must be in [0,1]");
  for (std::size_t t = 0; t < kNumMsgTypes; ++t)
    if (network_message(static_cast<MsgType>(t))) dup[t] = p;
  return *this;
}

FaultPlan& FaultPlan::heavy_tail(double p, double scale, double alpha) {
  QOSLB_REQUIRE(p >= 0.0 && p <= 1.0, "heavy-tail probability must be in [0,1]");
  QOSLB_REQUIRE(scale > 0.0 && alpha > 0.0, "heavy-tail scale/alpha must be > 0");
  heavy_tail_prob = p;
  heavy_tail_scale = scale;
  heavy_tail_alpha = alpha;
  return *this;
}

FaultPlan& FaultPlan::crash(AgentId agent, double t_crash, double t_recover) {
  QOSLB_REQUIRE(t_recover > t_crash && t_crash >= 0.0,
                "crash window must be non-empty and non-negative");
  crashes.push_back(CrashWindow{agent, t_crash, t_recover});
  return *this;
}

void FaultPlan::validate() const {
  for (const double p : drop)
    QOSLB_REQUIRE(p >= 0.0 && p < 1.0, "drop probability must be in [0,1)");
  for (const double p : dup)
    QOSLB_REQUIRE(p >= 0.0 && p <= 1.0, "dup probability must be in [0,1]");
  QOSLB_REQUIRE(heavy_tail_prob >= 0.0 && heavy_tail_prob <= 1.0,
                "heavy-tail probability must be in [0,1]");
  QOSLB_REQUIRE(heavy_tail_scale > 0.0 && heavy_tail_alpha > 0.0,
                "heavy-tail scale/alpha must be > 0");
  QOSLB_REQUIRE(heavy_tail_cap > 0.0, "heavy-tail cap must be > 0");
  for (const CrashWindow& window : crashes) {
    QOSLB_REQUIRE(window.t_crash >= 0.0,
                  "crash window must start at non-negative time");
    QOSLB_REQUIRE(window.t_recover > window.t_crash,
                  "crash window must be non-empty (t_recover > t_crash)");
  }
  // Same-agent windows must be disjoint: sort a copy by (agent, start) and
  // any overlap shows up between neighbors.
  std::vector<CrashWindow> sorted = crashes;
  std::sort(sorted.begin(), sorted.end(),
            [](const CrashWindow& a, const CrashWindow& b) {
              return a.agent != b.agent ? a.agent < b.agent
                                        : a.t_crash < b.t_crash;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    QOSLB_REQUIRE(sorted[i].agent != sorted[i - 1].agent ||
                      sorted[i].t_crash >= sorted[i - 1].t_recover,
                  "overlapping crash windows for agent " +
                      std::to_string(sorted[i].agent));
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {
  plan_.validate();
}

double FaultInjector::sample_extra_delay() {
  // Pareto(scale, alpha): scale / U^(1/alpha) with U in (0, 1].
  const double u = 1.0 - uniform_real(rng_);
  const double raw = plan_.heavy_tail_scale *
                     std::pow(u, -1.0 / plan_.heavy_tail_alpha);
  return std::min(raw, plan_.heavy_tail_cap);
}

FaultInjector::SendFate FaultInjector::on_send(const Message& message,
                                               double now) {
  (void)now;
  SendFate fate;
  if (!network_message(message.type)) return fate;
  const std::size_t t = type_index(message.type);
  if (plan_.drop[t] > 0.0 && bernoulli(rng_, plan_.drop[t])) {
    fate.drop = true;
    ++stats_.dropped;
    return fate;
  }
  if (plan_.heavy_tail_prob > 0.0 && bernoulli(rng_, plan_.heavy_tail_prob)) {
    fate.extra_delay = sample_extra_delay();
    ++stats_.delayed;
  }
  if (plan_.dup[t] > 0.0 && bernoulli(rng_, plan_.dup[t])) {
    fate.duplicate = true;
    ++stats_.duplicated;
    if (plan_.heavy_tail_prob > 0.0 && bernoulli(rng_, plan_.heavy_tail_prob)) {
      fate.dup_extra_delay = sample_extra_delay();
      ++stats_.delayed;
    }
  }
  return fate;
}

bool FaultInjector::deliverable(const Message& message, double time) {
  // Recovery notices fire exactly at t_recover, which is outside the
  // half-open window, but keep them exempt explicitly for clarity.
  if (message.type == MsgType::kRecover) return true;
  for (const CrashWindow& window : plan_.crashes) {
    if (window.agent == message.dst && time >= window.t_crash &&
        time < window.t_recover) {
      ++stats_.crash_dropped;
      return false;
    }
  }
  return true;
}

}  // namespace qoslb
