#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "sim/message.hpp"

namespace qoslb {

namespace obs {
class VirtualClock;
}

class DesEngine;
class FaultInjector;

/// An asynchronous agent (user or resource). Agents only interact through
/// messages — the engine owns time and delivery; an agent sees nothing but
/// its own inbox (the information model the paper's protocols assume).
class DesAgent {
 public:
  virtual ~DesAgent() = default;

  /// Called once when the simulation starts, before any delivery.
  virtual void on_start(DesEngine& engine) { (void)engine; }

  virtual void on_message(const Message& message, DesEngine& engine) = 0;
};

/// Sequential discrete-event engine with deterministic tie-breaking
/// (time, then enqueue sequence) and optional random per-message latency.
class DesEngine {
 public:
  /// `latency_jitter` > 0 adds Uniform(0, jitter) to every send's base delay,
  /// modelling an asynchronous network; 0 keeps FIFO-deterministic delivery.
  explicit DesEngine(std::uint64_t seed = 1, double latency_jitter = 0.0);

  /// Registers an agent (not owned); returns its id. All registration must
  /// happen before run().
  AgentId add_agent(DesAgent* agent);

  /// Attaches a fault injector (not owned; may be null to detach). Every
  /// subsequent send() consults it for drop/duplicate/extra-delay decisions
  /// and every delivery is suppressed while the destination is crashed.
  /// Must be set before run(); with no injector the engine's behavior (and
  /// RNG stream) is bit-identical to an engine built without the hook.
  void set_fault_injector(FaultInjector* injector);

  /// Attaches an observability clock (not owned; null detaches) that the
  /// run loop keeps in sync with virtual time, so obs phase timers around
  /// an async run measure virtual seconds. Purely observational: the clock
  /// is written, never read, by the engine.
  void set_clock(obs::VirtualClock* clock) { clock_ = clock; }

  /// Schedules delivery of `message` after `delay` (plus jitter) from now.
  void send(Message message, double delay = 1.0);

  /// Schedules a kTimer message to `agent` after `delay`.
  void schedule_timer(AgentId agent, double delay, std::int64_t payload = 0);

  /// Pre-sizes the event storage for roughly `events` concurrently pending
  /// messages, avoiding heap regrowth in the hot scheduling path. Purely a
  /// capacity hint — delivery order is unaffected.
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Runs until the event queue drains or `max_events` deliveries happened.
  /// Returns the number of delivered events.
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0});

  double now() const { return now_; }
  std::uint64_t delivered() const { return delivered_; }
  std::size_t pending() const { return queue_.size(); }
  Xoshiro256& rng() { return rng_; }

 private:
  struct Scheduled {
    double time;
    std::uint64_t seq;
    Message message;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void enqueue(Message message, double latency);

  std::vector<DesAgent*> agents_;
  /// Binary heap ordered by Later (std::push_heap/pop_heap over the vector).
  /// Equivalent to the former std::priority_queue — same comparator, same
  /// heap algorithms, so the delivery order is bit-identical — but the open
  /// storage lets reserve() pre-size it and pop move the entry out instead
  /// of copying top() before the sift-down.
  std::vector<Scheduled> queue_;
  FaultInjector* injector_ = nullptr;
  obs::VirtualClock* clock_ = nullptr;
  Xoshiro256 rng_;
  double jitter_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
  bool started_ = false;
};

}  // namespace qoslb
