#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "sim/message.hpp"

namespace qoslb {

/// A scheduled outage: `agent` silently drops everything addressed to it
/// (including its own timers — a crashed node's clock does not fire) during
/// [t_crash, t_recover). At t_recover the engine delivers a kRecover notice
/// so the agent can rebuild its in-flight state.
struct CrashWindow {
  AgentId agent = kNoAgent;
  double t_crash = 0.0;
  double t_recover = 0.0;
};

/// Declarative description of the network faults to inject into a DES run.
/// All sampling happens in the FaultInjector from its own seeded generator,
/// so a (plan, seed) pair reproduces the exact same fault realization and the
/// engine's RNG stream is untouched — runs with the injector disabled are
/// byte-identical to runs on an engine without the hook.
///
/// kTimer and kRecover are exempt from drop/duplicate/delay (they model local
/// clocks, not network traffic) but are still swallowed by crash windows.
struct FaultPlan {
  std::array<double, kNumMsgTypes> drop{};  // per-MsgType drop probability
  std::array<double, kNumMsgTypes> dup{};   // per-MsgType duplication probability

  /// With probability heavy_tail_prob a message is additionally delayed by a
  /// Pareto(scale, alpha) draw capped at heavy_tail_cap — the long-tail
  /// latency spikes real networks exhibit.
  double heavy_tail_prob = 0.0;
  double heavy_tail_scale = 4.0;
  double heavy_tail_alpha = 1.5;
  double heavy_tail_cap = 200.0;

  std::vector<CrashWindow> crashes;

  /// Seed for the injector's private fault stream (combined with the run
  /// seed by the caller, so plans are reusable across runs).
  std::uint64_t seed = 0x5EEDFA17ULL;

  /// True when any fault channel is active; an inert plan means the injector
  /// should not be attached at all.
  bool any() const;

  // Chainable conveniences for the common uniform settings.
  FaultPlan& drop_all(double p);
  FaultPlan& dup_all(double p);
  FaultPlan& heavy_tail(double p, double scale = 4.0, double alpha = 1.5);
  FaultPlan& crash(AgentId agent, double t_crash, double t_recover);

  /// Full-plan sanity check, run by the FaultInjector before arming: every
  /// probability in range (drop in [0,1), dup and heavy-tail in [0,1]),
  /// heavy-tail scale/alpha/cap positive, every crash window non-empty with
  /// t_crash >= 0, and no two windows of the same agent overlapping (an
  /// agent cannot crash while already crashed — overlapping windows are a
  /// schedule bug, not a deeper outage). Catches fields assigned directly,
  /// bypassing the chainable setters. Throws std::invalid_argument with the
  /// offending field spelled out.
  void validate() const;
};

/// Tally of injected faults, surfaced through AsyncRunResult and the CLI.
struct FaultStats {
  std::uint64_t dropped = 0;        // messages discarded at send time
  std::uint64_t duplicated = 0;     // extra copies enqueued
  std::uint64_t delayed = 0;        // messages given heavy-tail extra delay
  std::uint64_t crash_dropped = 0;  // deliveries swallowed by a crash window

  std::uint64_t total() const {
    return dropped + duplicated + delayed + crash_dropped;
  }

  FaultStats& operator+=(const FaultStats& other) {
    dropped += other.dropped;
    duplicated += other.duplicated;
    delayed += other.delayed;
    crash_dropped += other.crash_dropped;
    return *this;
  }
};

/// Samples per-message fault decisions for a DesEngine. Attached via
/// DesEngine::set_fault_injector(); owns its RNG so the fault stream is
/// independent of (and does not perturb) the engine's latency stream.
class FaultInjector {
 public:
  /// What happens to one outbound message (and its optional duplicate).
  struct SendFate {
    bool drop = false;
    bool duplicate = false;
    double extra_delay = 0.0;      // added to the original copy
    double dup_extra_delay = 0.0;  // added to the duplicate copy
  };

  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Decides the fate of a message being sent at virtual time `now`.
  SendFate on_send(const Message& message, double now);

  /// False when `message` must be swallowed because its destination is
  /// inside a crash window at delivery time `time`.
  bool deliverable(const Message& message, double time);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  double sample_extra_delay();

  FaultPlan plan_;
  Xoshiro256 rng_;
  FaultStats stats_;
};

}  // namespace qoslb
