#pragma once

#include <cstdint>

namespace qoslb {

using AgentId = std::uint32_t;

inline constexpr AgentId kNoAgent = ~AgentId{0};

/// Message kinds of the QoS load-balancing protocols in the asynchronous
/// (message-passing) realization. The payload fields are protocol-defined;
/// the engine never interprets them (MPI-style opaque payloads).
enum class MsgType : std::uint8_t {
  kProbe,          // user -> resource: what is your load?
  kLoadReply,      // resource -> user: payload a = load, b = last-round contention
  kMigrateRequest, // user -> resource: may I join? payload a = user's threshold
  kGrant,          // resource -> user: admission granted
  kReject,         // resource -> user: admission denied
  kLeave,          // user -> resource: I am departing
  kLeaveAck,       // resource -> user: departure recorded (loss-tolerant mode)
  kTimer,          // self-scheduled wakeup (local clock; never faulted)
  kRecover,        // injector -> agent: your crash window just ended
};

/// Number of MsgType values, for per-type fault tables.
inline constexpr std::size_t kNumMsgTypes = 9;

struct Message {
  MsgType type = MsgType::kTimer;
  AgentId src = kNoAgent;
  AgentId dst = kNoAgent;
  /// Request sequence number for duplicate/stale suppression under message
  /// faults; 0 means unsolicited (resource-initiated notifies, legacy mode).
  /// Replies echo the request's seq.
  std::uint32_t seq = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

}  // namespace qoslb
