#include "sim/worker_pool.hpp"

#include <algorithm>

namespace qoslb {

RoundWorkerPool::RoundWorkerPool(std::size_t participants) {
  if (participants == 0)
    participants = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(participants - 1);
  for (std::size_t i = 0; i + 1 < participants; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

RoundWorkerPool::~RoundWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void RoundWorkerPool::run(std::size_t count,
                          const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    first_error_ = nullptr;
    working_ = participants();
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  start_.notify_all();
  work_batch();  // the caller is a participant too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return working_ == 0; });
  body_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void RoundWorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
    }
    work_batch();
  }
}

void RoundWorkerPool::work_batch() {
  const std::function<void(std::size_t)>* body = body_;
  const std::size_t count = count_;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      (*body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon the rest of the batch: park the cursor past the end so no
      // participant claims further indices.
      next_.store(count, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (--working_ == 0) done_.notify_all();
}

}  // namespace qoslb
