#pragma once

#include <cstdint>

namespace qoslb {

/// Message/operation counters shared by both engines and all protocols.
/// "Messages" follow the distributed-computing cost model: one probe is a
/// round trip (PROBE + LOAD reply), a migration is a MIGRATE message, and the
/// admission-controlled protocols additionally exchange REQUEST/GRANT/REJECT.
struct Counters {
  std::uint64_t probes = 0;
  std::uint64_t migrate_requests = 0;
  std::uint64_t grants = 0;
  std::uint64_t rejects = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t events = 0;

  /// Total messages under the round-trip cost model.
  std::uint64_t messages() const {
    return 2 * probes + migrate_requests + grants + rejects + migrations;
  }

  Counters& operator+=(const Counters& other) {
    probes += other.probes;
    migrate_requests += other.migrate_requests;
    grants += other.grants;
    rejects += other.rejects;
    migrations += other.migrations;
    rounds += other.rounds;
    events += other.events;
    return *this;
  }
};

}  // namespace qoslb
