#include "sim/des.hpp"

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

DesEngine::DesEngine(std::uint64_t seed, double latency_jitter)
    : rng_(seed), jitter_(latency_jitter) {
  QOSLB_REQUIRE(latency_jitter >= 0.0, "jitter must be non-negative");
}

AgentId DesEngine::add_agent(DesAgent* agent) {
  QOSLB_REQUIRE(agent != nullptr, "agent must not be null");
  QOSLB_REQUIRE(!started_, "agents must be registered before run()");
  agents_.push_back(agent);
  return static_cast<AgentId>(agents_.size() - 1);
}

void DesEngine::send(Message message, double delay) {
  QOSLB_REQUIRE(message.dst < agents_.size(), "message to unknown agent");
  QOSLB_REQUIRE(delay >= 0.0, "delay must be non-negative");
  double latency = delay;
  if (jitter_ > 0.0) latency += uniform_real(rng_, 0.0, jitter_);
  queue_.push(Scheduled{now_ + latency, seq_++, message});
}

void DesEngine::schedule_timer(AgentId agent, double delay, std::int64_t payload) {
  Message timer;
  timer.type = MsgType::kTimer;
  timer.src = agent;
  timer.dst = agent;
  timer.a = payload;
  send(timer, delay);
}

std::uint64_t DesEngine::run(std::uint64_t max_events) {
  if (!started_) {
    started_ = true;
    for (std::size_t i = 0; i < agents_.size(); ++i) agents_[i]->on_start(*this);
  }
  std::uint64_t count = 0;
  while (!queue_.empty() && count < max_events) {
    const Scheduled next = queue_.top();
    queue_.pop();
    QOSLB_CHECK(next.time + 1e-12 >= now_, "time went backwards");
    now_ = next.time;
    ++delivered_;
    ++count;
    agents_[next.message.dst]->on_message(next.message, *this);
  }
  return count;
}

}  // namespace qoslb
