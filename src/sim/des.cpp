#include "sim/des.hpp"

#include <algorithm>
#include <utility>

#include "obs/clock.hpp"
#include "rng/distributions.hpp"
#include "sim/faults.hpp"
#include "util/check.hpp"

namespace qoslb {

DesEngine::DesEngine(std::uint64_t seed, double latency_jitter)
    : rng_(seed), jitter_(latency_jitter) {
  QOSLB_REQUIRE(latency_jitter >= 0.0, "jitter must be non-negative");
}

AgentId DesEngine::add_agent(DesAgent* agent) {
  QOSLB_REQUIRE(agent != nullptr, "agent must not be null");
  QOSLB_REQUIRE(!started_, "agents must be registered before run()");
  agents_.push_back(agent);
  return static_cast<AgentId>(agents_.size() - 1);
}

void DesEngine::set_fault_injector(FaultInjector* injector) {
  QOSLB_REQUIRE(!started_, "injector must be attached before run()");
  injector_ = injector;
}

void DesEngine::enqueue(Message message, double latency) {
  queue_.push_back(Scheduled{now_ + latency, seq_++, std::move(message)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void DesEngine::send(Message message, double delay) {
  QOSLB_REQUIRE(message.dst < agents_.size(), "message to unknown agent");
  QOSLB_REQUIRE(delay >= 0.0, "delay must be non-negative");
  if (injector_ != nullptr) {
    const FaultInjector::SendFate fate = injector_->on_send(message, now_);
    if (fate.drop) return;
    double latency = delay + fate.extra_delay;
    if (jitter_ > 0.0) latency += uniform_real(rng_, 0.0, jitter_);
    if (fate.duplicate) {
      double dup_latency = delay + fate.dup_extra_delay;
      if (jitter_ > 0.0) dup_latency += uniform_real(rng_, 0.0, jitter_);
      enqueue(message, latency);
      enqueue(std::move(message), dup_latency);
    } else {
      enqueue(std::move(message), latency);
    }
    return;
  }
  double latency = delay;
  if (jitter_ > 0.0) latency += uniform_real(rng_, 0.0, jitter_);
  enqueue(std::move(message), latency);
}

void DesEngine::schedule_timer(AgentId agent, double delay, std::int64_t payload) {
  Message timer;
  timer.type = MsgType::kTimer;
  timer.src = agent;
  timer.dst = agent;
  timer.a = payload;
  send(timer, delay);
}

std::uint64_t DesEngine::run(std::uint64_t max_events) {
  if (!started_) {
    started_ = true;
    for (std::size_t i = 0; i < agents_.size(); ++i) agents_[i]->on_start(*this);
    // Crash windows end with an explicit wakeup so a crashed agent (whose
    // own timers were swallowed) can rebuild its in-flight state.
    if (injector_ != nullptr) {
      for (const CrashWindow& window : injector_->plan().crashes) {
        if (window.agent >= agents_.size()) continue;
        Message notice;
        notice.type = MsgType::kRecover;
        notice.src = window.agent;
        notice.dst = window.agent;
        enqueue(notice, window.t_recover - now_);
      }
    }
  }
  std::uint64_t count = 0;
  while (!queue_.empty() && count < max_events) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    const Scheduled next = std::move(queue_.back());
    queue_.pop_back();
    QOSLB_CHECK(next.time + 1e-12 >= now_, "time went backwards");
    now_ = next.time;
    if (clock_ != nullptr) clock_->set(now_);
    ++delivered_;
    ++count;
    if (injector_ != nullptr && !injector_->deliverable(next.message, now_))
      continue;  // destination is crashed: the inbox entry is lost
    agents_[next.message.dst]->on_message(next.message, *this);
  }
  return count;
}

}  // namespace qoslb
