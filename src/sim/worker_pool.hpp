#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qoslb {

/// Persistent round-scoped worker pool (docs/performance.md §execution).
///
/// The generic util::ThreadPool pays one heap-allocated std::function plus
/// one queue lock per shard per round — at bench scales that overhead alone
/// made 2-thread rounds slower than 1 thread. This pool is specialized for
/// the round fan-out pattern instead:
///
///   * workers are spawned once and parked on a condition variable between
///     rounds — no per-round thread creation;
///   * a round is published as one (body, count) batch under a single lock
///     (one notify_all, not one enqueue per shard);
///   * participants claim shard indices from a shared atomic cursor, so the
///     only per-shard cost is one uncontended fetch_add;
///   * the caller participates as a worker, so `participants` threads of
///     work need only `participants - 1` parked threads.
///
/// Determinism is unaffected by construction: the pool decides only *which
/// participant* executes a shard, never what the shard computes — shard
/// bodies write exclusively shard-local data and the commit consumes the
/// buffers in shard order (sim/parallel_round_engine.hpp).
class RoundWorkerPool {
 public:
  /// `participants == 0` selects std::thread::hardware_concurrency()
  /// (min 1). Spawns `participants - 1` parked workers; run() contributes
  /// the calling thread as the final participant.
  explicit RoundWorkerPool(std::size_t participants = 0);
  ~RoundWorkerPool();

  RoundWorkerPool(const RoundWorkerPool&) = delete;
  RoundWorkerPool& operator=(const RoundWorkerPool&) = delete;

  std::size_t participants() const { return workers_.size() + 1; }

  /// Runs `body(i)` for every i in [0, count) across the participants and
  /// returns when all of them have finished the batch. The first exception
  /// thrown by any body is rethrown here (remaining indices of the batch
  /// are abandoned). Not reentrant; one batch at a time.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Claims indices off next_ until the batch is exhausted, then checks in.
  void work_batch();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  // Batch state, published under mutex_ and read by workers after the epoch
  // bump wakes them. next_ is the shared shard cursor (the one hot word).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t working_ = 0;  // participants that have not checked in yet
  std::exception_ptr first_error_;
  bool stopping_ = false;
  alignas(64) std::atomic<std::size_t> next_{0};
};

}  // namespace qoslb
