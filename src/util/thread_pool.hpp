#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qoslb {

/// Fixed-size worker pool used to run independent experiment replications in
/// parallel (shared-memory parallelism per the hpc-parallel guides). Tasks are
/// plain std::function<void()>; completion is awaited with wait_idle().
/// Exceptions thrown by tasks are captured and rethrown from wait_idle().
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Rethrows the
  /// first task exception observed since the previous wait_idle().
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Runs `body(i)` for i in [0, count) across the pool and waits.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace qoslb
