#include "util/thread_pool.hpp"

#include <algorithm>

namespace qoslb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i)
    submit([&body, i] { body(i); });
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qoslb
