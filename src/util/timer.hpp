#pragma once

// Deprecated shim, kept for one release: the monotonic stopwatch moved to
// src/obs/clock.hpp so every steady-clock read in src/ lives in the
// observability layer (qoslb-lint QL007, docs/observability.md). Include
// "obs/clock.hpp" and use qoslb::obs::Stopwatch in new code.

#include "obs/clock.hpp"

namespace qoslb {

using Stopwatch = obs::Stopwatch;

}  // namespace qoslb
