#include "util/args.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

ArgParser::ArgParser(int argc, const char* const* argv) {
  QOSLB_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (!starts_with(token, "--"))
      throw std::invalid_argument("unexpected positional argument: " + token);
    token.erase(0, 2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "";  // bare flag
    }
  }
  for (const auto& [name, value] : values_) consumed_[name] = false;
}

std::string ArgParser::take(const std::string& name, bool* present) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    *present = false;
    return {};
  }
  consumed_[name] = true;
  *present = true;
  return it->second;
}

long long ArgParser::get_int(const std::string& name, long long default_value) {
  bool present = false;
  const std::string raw = take(name, &present);
  if (!present) return default_value;
  std::size_t consumed = 0;
  const long long value = std::stoll(raw, &consumed);
  if (consumed != raw.size())
    throw std::invalid_argument("--" + name + " expects an integer, got '" + raw + "'");
  return value;
}

double ArgParser::get_double(const std::string& name, double default_value) {
  bool present = false;
  const std::string raw = take(name, &present);
  if (!present) return default_value;
  std::size_t consumed = 0;
  const double value = std::stod(raw, &consumed);
  if (consumed != raw.size())
    throw std::invalid_argument("--" + name + " expects a number, got '" + raw + "'");
  return value;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& default_value) {
  bool present = false;
  const std::string raw = take(name, &present);
  return present ? raw : default_value;
}

bool ArgParser::get_flag(const std::string& name) {
  bool present = false;
  const std::string raw = take(name, &present);
  if (!present) return false;
  if (raw.empty() || raw == "1" || raw == "true") return true;
  if (raw == "0" || raw == "false") return false;
  throw std::invalid_argument("--" + name + " is a flag; got value '" + raw + "'");
}

std::vector<long long> ArgParser::get_int_list(
    const std::string& name, const std::vector<long long>& default_value) {
  bool present = false;
  const std::string raw = take(name, &present);
  if (!present) return default_value;
  return parse_int_list(raw);
}

void ArgParser::finish() const {
  for (const auto& [name, used] : consumed_) {
    if (!used)
      throw std::invalid_argument("unknown argument --" + name + " (see " +
                                  program_ + " source for options)");
  }
}

}  // namespace qoslb
