#include "util/table.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace qoslb {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  QOSLB_REQUIRE(!columns_.empty(), "table needs at least one column");
}

TablePrinter& TablePrinter::cell(std::string_view text) {
  QOSLB_REQUIRE(current_.size() < columns_.size(), "row has too many cells");
  current_.emplace_back(text);
  return *this;
}

TablePrinter& TablePrinter::cell(double value, int digits) {
  return cell(format_double(value, digits));
}

TablePrinter& TablePrinter::cell(long long value) {
  return cell(std::to_string(value));
}

TablePrinter& TablePrinter::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

void TablePrinter::end_row() {
  QOSLB_REQUIRE(current_.size() == columns_.size(),
                "row width differs from column count");
  rows_.push_back(std::move(current_));
  current_.clear();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  std::vector<bool> numeric(columns_.size(), true);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
      if (!looks_numeric(row[c])) numeric[c] = false;
    }
    if (rows_.empty()) numeric[c] = false;
  }

  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << "  ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_numeric && numeric[c]) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit(columns_, /*align_numeric=*/false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) total += width[c] + (c > 0 ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, /*align_numeric=*/true);
}

void TablePrinter::print_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header(columns_);
  for (const auto& row : rows_) {
    for (const auto& cell : row) csv.cell(cell);
    csv.end_row();
  }
}

}  // namespace qoslb
