#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qoslb::json {
namespace {

[[noreturn]] void fail_kind(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not a ") + wanted);
}

/// Recursive-descent parser over a string_view with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream out;
    out << "json: line " << line << " column " << column << ": " << what;
    throw std::invalid_argument(out.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value::make_null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, value] : members)
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // nothing in the repo's artifacts emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto [end, err] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (err != std::errc{} || end != text_.data() + pos_) {
      pos_ = start;
      fail("invalid number");
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool Value::as_bool() const {
  if (!is_bool()) fail_kind("bool");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) fail_kind("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (!is_string()) fail_kind("string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (!is_array()) fail_kind("array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (!is_object()) fail_kind("object");
  return members_;
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [name, value] : members())
    if (name == key) return &value;
  return nullptr;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("json: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

}  // namespace qoslb::json
