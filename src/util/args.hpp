#pragma once

#include <map>
#include <string>
#include <vector>

namespace qoslb {

/// Small command-line parser for the bench/example binaries.
/// Accepts "--name=value", "--name value", and bare "--flag". Unknown
/// arguments are an error at `finish()`, so typos in sweep scripts fail loudly.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Typed getters consume the option and record it as known.
  long long get_int(const std::string& name, long long default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_flag(const std::string& name);
  std::vector<long long> get_int_list(const std::string& name,
                                      const std::vector<long long>& default_value);

  /// Throws std::invalid_argument if any argument was never consumed.
  void finish() const;

  bool has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::string take(const std::string& name, bool* present);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::string program_;
};

}  // namespace qoslb
