#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qoslb {

/// Column-aligned plain-text table, used by every bench binary to print the
/// rows an experiment regenerates. Cells are strings; numeric helpers format
/// consistently with util/strings.hpp.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  TablePrinter& cell(std::string_view text);
  TablePrinter& cell(double value, int digits = 4);
  TablePrinter& cell(long long value);
  TablePrinter& cell(unsigned long long value);
  TablePrinter& cell(int value) { return cell(static_cast<long long>(value)); }
  TablePrinter& cell(std::size_t value) {
    return cell(static_cast<unsigned long long>(value));
  }
  void end_row();

  std::size_t rows() const { return rows_.size(); }

  /// Renders the header, a rule, and all rows with right-aligned numeric
  /// columns (a column is numeric if every cell in it parses as a number).
  void print(std::ostream& out) const;

  /// Emits the same data as CSV.
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
};

}  // namespace qoslb
