#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Always-on runtime checks (per C++ Core Guidelines I.6/E.12 spirit):
/// precondition violations throw std::invalid_argument, internal invariant
/// violations throw std::logic_error. Used instead of assert() so that the
/// checks stay active in release benchmarks and property tests can observe
/// the failures.
namespace qoslb::detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace qoslb::detail

#define QOSLB_REQUIRE(expr, msg)                                              \
  do {                                                                        \
    if (!(expr))                                                              \
      ::qoslb::detail::throw_check_failure("precondition", #expr, __FILE__,   \
                                           __LINE__, (msg));                  \
  } while (false)

#define QOSLB_CHECK(expr, msg)                                                \
  do {                                                                        \
    if (!(expr))                                                              \
      ::qoslb::detail::throw_check_failure("invariant", #expr, __FILE__,      \
                                           __LINE__, (msg));                  \
  } while (false)
