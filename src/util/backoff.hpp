#pragma once

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

/// Capped exponential backoff schedule: attempt k (0-based) waits
/// min(cap, base * factor^k), optionally stretched by a multiplicative
/// jitter so concurrent retriers decorrelate. Header-only and stateless —
/// callers track their own attempt counts, which keeps one policy shareable
/// across every outstanding operation of an agent.
struct ExponentialBackoff {
  double base = 6.0;
  double factor = 2.0;
  double cap = 60.0;
  unsigned max_retries = 10;
  /// Retry k waits delay(k) * (1 + Uniform(0, jitter_frac)).
  double jitter_frac = 0.25;

  double delay(unsigned attempt) const {
    QOSLB_REQUIRE(base > 0.0 && factor >= 1.0 && cap >= base,
                  "backoff needs base > 0, factor >= 1, cap >= base");
    double d = base;
    for (unsigned k = 0; k < attempt; ++k) {
      d *= factor;
      if (d >= cap) return cap;  // early out: no overflow for huge attempts
    }
    return std::min(d, cap);
  }

  /// True once `attempt` retries have been spent and the caller should give
  /// up (fail over / re-enter search) instead of retrying again.
  bool exhausted(unsigned attempt) const { return attempt >= max_retries; }

  template <typename Rng>
  double jittered(Rng& rng, unsigned attempt) const {
    const double d = delay(attempt);
    if (jitter_frac <= 0.0) return d;
    return d * (1.0 + uniform_real(rng, 0.0, jitter_frac));
  }
};

}  // namespace qoslb
