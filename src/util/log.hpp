#pragma once

#include <sstream>
#include <string>

namespace qoslb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses "debug" | "info" | "warn" | "error" | "off" (the tools'
/// --log-level values); throws std::invalid_argument on anything else.
LogLevel parse_log_level(const std::string& text);

/// Minimal leveled logger writing to stderr. Thread-safe (one mutex around the
/// write). Global level defaults to kWarn so library code stays quiet in
/// benchmarks unless a tool raises the verbosity.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static void write(LogLevel level, const std::string& message);

  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace qoslb

#define QOSLB_LOG(level)                        \
  if (!::qoslb::Log::enabled(level)) {          \
  } else                                        \
    ::qoslb::detail::LogLine(level)

#define QOSLB_DEBUG QOSLB_LOG(::qoslb::LogLevel::kDebug)
#define QOSLB_INFO QOSLB_LOG(::qoslb::LogLevel::kInfo)
#define QOSLB_WARN QOSLB_LOG(::qoslb::LogLevel::kWarn)
#define QOSLB_ERROR QOSLB_LOG(::qoslb::LogLevel::kError)
