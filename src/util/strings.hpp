#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qoslb {

/// Splits `text` on `sep`, keeping empty fields (CSV semantics).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Formats a double with `digits` significant decimal places, trimming the
/// representation to stay table-friendly ("12.346", "0.001", "1e-09").
std::string format_double(double value, int digits = 4);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer list like "8,16,32". Throws on bad input.
std::vector<long long> parse_int_list(std::string_view text);

}  // namespace qoslb
