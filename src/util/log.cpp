#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace qoslb {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + text +
                              "' (debug|info|warn|error|off)");
}

void Log::set_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load()); }

void Log::write(LogLevel level, const std::string& message) {
  if (level < Log::level()) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace qoslb
