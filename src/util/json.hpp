#pragma once

// Minimal JSON reader for the repo's own machine-readable artifacts — the
// BENCH_*.json files (bench/bench_json.hpp) and the CI floor table
// (bench/floors.json). Full JSON value model (null / bool / number / string
// / array / object), recursive descent, no external dependency. Objects
// preserve member order and reject duplicate keys; numbers are doubles
// (every value the benches emit fits). parse() throws std::invalid_argument
// with a line/column prefix on malformed input.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qoslb::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup; null when absent. Throws on non-objects.
  const Value* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Value parse(std::string_view text);

/// Reads and parses a JSON file; throws std::invalid_argument (prefixed with
/// the path) when the file is unreadable or malformed.
Value parse_file(const std::string& path);

}  // namespace qoslb::json
