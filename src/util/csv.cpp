#include "util/csv.hpp"

#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  QOSLB_REQUIRE(!header_written_ && rows_ == 0 && !row_open_,
                "header must be the first output");
  QOSLB_REQUIRE(!names.empty(), "header must not be empty");
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(names[i]);
  }
  *out_ << '\n';
  header_written_ = true;
  header_width_ = names.size();
}

void CsvWriter::separator() {
  if (row_open_) *out_ << ',';
  row_open_ = true;
  ++cells_in_row_;
}

CsvWriter& CsvWriter::cell(std::string_view text) {
  separator();
  *out_ << csv_escape(text);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  separator();
  *out_ << format_double(value, 9);
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  separator();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::cell(unsigned long long value) {
  separator();
  *out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  QOSLB_REQUIRE(row_open_, "end_row without cells");
  if (header_written_)
    QOSLB_CHECK(cells_in_row_ == header_width_,
                "row width differs from header width");
  *out_ << '\n';
  row_open_ = false;
  cells_in_row_ = 0;
  ++rows_;
}

}  // namespace qoslb
