#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qoslb {

/// Streaming CSV writer with RFC-4180-style quoting. A row is complete once
/// `end_row()` is called; the header (if any) must be written first.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(const std::vector<std::string>& names);

  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(double value);
  CsvWriter& cell(long long value);
  CsvWriter& cell(unsigned long long value);
  CsvWriter& cell(int value) { return cell(static_cast<long long>(value)); }
  CsvWriter& cell(std::size_t value) { return cell(static_cast<unsigned long long>(value)); }

  void end_row();

  /// Number of completed rows (excluding the header).
  std::size_t rows_written() const { return rows_; }

 private:
  void separator();

  std::ostream* out_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t header_width_ = 0;
  std::size_t cells_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Quotes a CSV field if it contains separators, quotes, or newlines.
std::string csv_escape(std::string_view field);

}  // namespace qoslb
