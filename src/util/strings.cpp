#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"

namespace qoslb {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string format_double(double value, int digits) {
  QOSLB_REQUIRE(digits >= 0 && digits <= 17, "digits out of range");
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits + 3, value);
  // %g already trims trailing zeros; additionally clamp very long fixed forms.
  std::string s(buf);
  if (s.size() > 18) {
    std::snprintf(buf, sizeof buf, "%.*e", digits, value);
    s = buf;
  }
  return s;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::vector<long long> parse_int_list(std::string_view text) {
  std::vector<long long> out;
  for (const std::string& part : split(text, ',')) {
    const std::string_view token = trim(part);
    if (token.empty()) continue;
    std::size_t consumed = 0;
    const long long value = std::stoll(std::string(token), &consumed);
    if (consumed != token.size())
      throw std::invalid_argument("bad integer in list: '" + std::string(token) + "'");
    out.push_back(value);
  }
  return out;
}

}  // namespace qoslb
