#include "net/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qoslb {

Graph Graph::from_edges(Vertex num_vertices, std::span<const Edge> edges) {
  Graph g;
  g.num_vertices_ = num_vertices;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  for (const auto& [a, b] : edges) {
    QOSLB_REQUIRE(a < num_vertices && b < num_vertices, "edge endpoint out of range");
    QOSLB_REQUIRE(a != b, "self-loops are not allowed");
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (std::size_t v = 1; v < g.offsets_.size(); ++v) g.offsets_[v] += g.offsets_[v - 1];

  g.adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  for (Vertex v = 0; v < num_vertices; ++v) {
    auto row_begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto row_end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(row_begin, row_end);
    QOSLB_REQUIRE(std::adjacent_find(row_begin, row_end) == row_end,
                  "parallel edges are not allowed");
  }
  return g;
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  QOSLB_REQUIRE(v < num_vertices_, "vertex out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::degree(Vertex v) const { return neighbors(v).size(); }

bool Graph::has_edge(Vertex a, Vertex b) const {
  const auto row = neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (Vertex v = 0; v < num_vertices_; ++v)
    for (const Vertex w : neighbors(v))
      if (v < w) out.emplace_back(v, w);
  return out;
}

}  // namespace qoslb
