#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace qoslb {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;

/// Immutable undirected graph in CSR (compressed sparse row) form. Vertices
/// are 0..n-1; parallel edges and self-loops are rejected at construction.
/// CSR keeps the adjacency of a vertex contiguous, which matters when the
/// neighborhood-sampling protocols probe neighbor lists in hot loops.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list (each pair listed once).
  static Graph from_edges(Vertex num_vertices, std::span<const Edge> edges);

  Vertex num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const;
  std::size_t degree(Vertex v) const;

  bool has_edge(Vertex a, Vertex b) const;

  /// All edges (a < b), reconstructed from CSR; mostly for tests/serialization.
  std::vector<Edge> edges() const;

 private:
  Vertex num_vertices_ = 0;
  std::vector<std::size_t> offsets_;   // size n+1
  std::vector<Vertex> adjacency_;      // size 2m, sorted within each row
};

}  // namespace qoslb
