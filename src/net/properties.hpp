#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace qoslb {

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// BFS hop distances from `source`; kUnreachable for disconnected vertices.
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

bool is_connected(const Graph& g);

/// Exact diameter via all-sources BFS (O(n·m); fine at experiment sizes).
/// Throws if the graph is disconnected or empty.
std::uint32_t diameter(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

}  // namespace qoslb
