#pragma once

#include <cstdint>

#include "net/graph.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Topology generators for network-restricted sampling experiments (E8).

Graph make_complete(Vertex n);
Graph make_ring(Vertex n);
Graph make_path(Vertex n);
Graph make_star(Vertex n);  // vertex 0 is the hub

/// rows×cols torus (wrap-around grid); n = rows·cols vertices, degree 4
/// (degree 2 when rows or cols equals 1 is rejected — require both ≥ 3).
Graph make_torus(Vertex rows, Vertex cols);

/// d-dimensional hypercube: 2^dim vertices.
Graph make_hypercube(unsigned dim);

/// Random d-regular graph via the configuration model with rejection of
/// self-loops/parallel edges (retries until simple; d·n must be even).
Graph make_random_regular(Vertex n, unsigned degree, Xoshiro256& rng);

/// Erdős–Rényi G(n, p); no connectivity guarantee (callers can test).
Graph make_gnp(Vertex n, double p, Xoshiro256& rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each lattice edge rewired with probability `beta` (endpoints never
/// duplicated). beta=0 is the lattice, beta=1 approaches a random graph.
Graph make_small_world(Vertex n, unsigned k, double beta, Xoshiro256& rng);

/// Barbell: two complete graphs of `clique` vertices joined by a path of
/// `bridge` vertices — the classic bad-conductance topology (slow diffusion
/// through the bridge).
Graph make_barbell(Vertex clique, Vertex bridge);

}  // namespace qoslb
