#include "net/properties.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace qoslb {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  QOSLB_REQUIRE(source < g.num_vertices(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<Vertex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop();
    for (const Vertex w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::find(dist.begin(), dist.end(), kUnreachable) == dist.end();
}

std::uint32_t diameter(const Graph& g) {
  QOSLB_REQUIRE(g.num_vertices() > 0, "diameter of empty graph");
  std::uint32_t best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (const std::uint32_t d : dist) {
      QOSLB_REQUIRE(d != kUnreachable, "diameter of disconnected graph");
      best = std::max(best, d);
    }
  }
  return best;
}

std::size_t component_count(const Graph& g) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::size_t components = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (seen[v]) continue;
    ++components;
    std::queue<Vertex> frontier;
    frontier.push(v);
    seen[v] = true;
    while (!frontier.empty()) {
      const Vertex u = frontier.front();
      frontier.pop();
      for (const Vertex w : g.neighbors(u)) {
        if (!seen[w]) {
          seen[w] = true;
          frontier.push(w);
        }
      }
    }
  }
  return components;
}

}  // namespace qoslb
