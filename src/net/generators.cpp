#include "net/generators.hpp"

#include <algorithm>
#include <set>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

Graph make_complete(Vertex n) {
  QOSLB_REQUIRE(n >= 1, "need at least one vertex");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  return Graph::from_edges(n, edges);
}

Graph make_ring(Vertex n) {
  QOSLB_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (Vertex v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph make_path(Vertex n) {
  QOSLB_REQUIRE(n >= 2, "path needs at least 2 vertices");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

Graph make_star(Vertex n) {
  QOSLB_REQUIRE(n >= 2, "star needs at least 2 vertices");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph make_torus(Vertex rows, Vertex cols) {
  QOSLB_REQUIRE(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph make_hypercube(unsigned dim) {
  QOSLB_REQUIRE(dim >= 1 && dim <= 24, "hypercube dimension out of range");
  const Vertex n = Vertex{1} << dim;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (Vertex v = 0; v < n; ++v)
    for (unsigned bit = 0; bit < dim; ++bit) {
      const Vertex w = v ^ (Vertex{1} << bit);
      if (v < w) edges.emplace_back(v, w);
    }
  return Graph::from_edges(n, edges);
}

Graph make_random_regular(Vertex n, unsigned degree, Xoshiro256& rng) {
  QOSLB_REQUIRE(degree >= 1 && degree < n, "degree out of range");
  QOSLB_REQUIRE((static_cast<std::uint64_t>(n) * degree) % 2 == 0,
                "n*degree must be even");
  // Configuration model with whole-graph rejection: efficient for the small
  // fixed degrees (3..8) used in the experiments.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<Vertex> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * degree);
    for (Vertex v = 0; v < n; ++v)
      for (unsigned k = 0; k < degree; ++k) stubs.push_back(v);
    shuffle(rng, stubs);

    std::set<Edge> edge_set;
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      Vertex a = stubs[i], b = stubs[i + 1];
      if (a == b) { simple = false; break; }
      if (a > b) std::swap(a, b);
      if (!edge_set.emplace(a, b).second) { simple = false; break; }
    }
    if (!simple) continue;
    std::vector<Edge> edges(edge_set.begin(), edge_set.end());
    return Graph::from_edges(n, edges);
  }
  throw std::runtime_error("make_random_regular: failed to build a simple graph");
}

Graph make_small_world(Vertex n, unsigned k, double beta, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 4, "small world needs at least 4 vertices");
  QOSLB_REQUIRE(k >= 1 && 2 * k < n, "k out of range");
  QOSLB_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta in [0,1]");

  std::set<Edge> edge_set;
  const auto normalized = [](Vertex a, Vertex b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  };
  for (Vertex v = 0; v < n; ++v)
    for (unsigned j = 1; j <= k; ++j)
      edge_set.insert(normalized(v, (v + j) % n));

  // Rewire each lattice edge (v, v+j) with probability beta to (v, random).
  std::vector<Edge> lattice(edge_set.begin(), edge_set.end());
  for (const Edge& edge : lattice) {
    if (!bernoulli(rng, beta)) continue;
    const Vertex v = edge.first;
    // Try a few times to find a fresh endpoint; skip on dense failure.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto w = static_cast<Vertex>(uniform_u64_below(rng, n));
      if (w == v || edge_set.count(normalized(v, w))) continue;
      edge_set.erase(edge);
      edge_set.insert(normalized(v, w));
      break;
    }
  }
  std::vector<Edge> edges(edge_set.begin(), edge_set.end());
  return Graph::from_edges(n, edges);
}

Graph make_barbell(Vertex clique, Vertex bridge) {
  QOSLB_REQUIRE(clique >= 3, "cliques need at least 3 vertices");
  const Vertex n = 2 * clique + bridge;
  std::vector<Edge> edges;
  // Left clique: vertices [0, clique); right clique: [clique+bridge, n).
  for (Vertex a = 0; a < clique; ++a)
    for (Vertex b = a + 1; b < clique; ++b) edges.emplace_back(a, b);
  const Vertex right = clique + bridge;
  for (Vertex a = right; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  // Bridge path from vertex clique-1 through the bridge to vertex `right`.
  Vertex previous = clique - 1;
  for (Vertex i = 0; i < bridge; ++i) {
    edges.emplace_back(previous, clique + i);
    previous = clique + i;
  }
  edges.emplace_back(previous, right);
  return Graph::from_edges(n, edges);
}

Graph make_gnp(Vertex n, double p, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1, "need at least one vertex");
  QOSLB_REQUIRE(p >= 0.0 && p <= 1.0, "p in [0,1]");
  std::vector<Edge> edges;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      if (bernoulli(rng, p)) edges.emplace_back(a, b);
  return Graph::from_edges(n, edges);
}

}  // namespace qoslb
