#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/state.hpp"
#include "sim/accounting.hpp"

namespace qoslb {

struct RunConfig {
  std::uint64_t max_rounds = 1u << 20;
  /// The (possibly O(n·m)) protocol stability check runs every this many
  /// rounds; the all-satisfied fast path is checked every round, so feasible
  /// runs report exact round counts.
  std::uint32_t stability_check_period = 4;
  bool record_trajectory = false;
};

struct RunResult {
  std::uint64_t rounds = 0;
  bool converged = false;       // reached the protocol's stability notion
  bool all_satisfied = false;   // every user satisfied at the end
  std::size_t final_satisfied = 0;
  Counters counters;
  /// Unsatisfied count after each round (only if record_trajectory).
  std::vector<std::uint32_t> unsatisfied_trajectory;
};

/// Drives `protocol` on `state` until stable or max_rounds. Resets the
/// protocol's adaptive state first.
RunResult run_protocol(Protocol& protocol, State& state, Xoshiro256& rng,
                       const RunConfig& config = {});

}  // namespace qoslb
