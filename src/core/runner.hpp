#pragma once

// Deprecated compatibility shim — the run entry points were unified behind
// the qoslb::Engine facade (core/engine.hpp, docs/engine.md). This header
// and the aliases below are kept for one release; include core/engine.hpp
// and call Engine::run() in new code.

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "core/state.hpp"

namespace qoslb {

/// Deprecated: use EngineConfig (identical fields plus the sharded-execution
/// and async knobs).
using RunConfig = EngineConfig;

/// Deprecated: use EngineResult (identical fields plus `termination`).
using RunResult = EngineResult;

/// Deprecated: use Engine(config).run(protocol, state, rng). Drives
/// `protocol` on `state` until stable or max_rounds on the classic
/// sequential path; resets the protocol's adaptive state first.
RunResult run_protocol(Protocol& protocol, State& state, Xoshiro256& rng,
                       const RunConfig& config = {});

}  // namespace qoslb
