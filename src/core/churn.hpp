#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/state.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Precondition violation of a world-churn transform (e.g. failing the last
/// resource, or a resource id out of range). A distinct type so callers
/// orchestrating churn schedules can catch transform misuse specifically
/// while letting genuine logic errors propagate.
class ChurnError : public std::invalid_argument {
 public:
  explicit ChurnError(const std::string& message)
      : std::invalid_argument("qoslb churn: " + message) {}
};

/// Dynamic-world transforms (experiment E11, robustness tests): Instance and
/// State are immutable-shaped, so churn is expressed as building the
/// successor world — a new instance plus an assignment that carries over
/// every surviving user. The transforms preserve determinism (all sampling
/// from the caller's generator).
struct World {
  Instance instance;
  std::vector<ResourceId> assignment;
};

/// Extracts the current world from a state (for chaining transforms).
World snapshot_world(const State& state);

/// Replaces `count` uniformly chosen users with fresh ones whose
/// requirements are drawn uniformly from [q_lo, q_hi] and whose placement is
/// uniform random.
World replace_users(const World& world, std::size_t count, double q_lo,
                    double q_hi, Xoshiro256& rng);

/// Adds `count` new users (requirements from [q_lo, q_hi]) on resource
/// `placement`, or uniformly at random when placement == kNoResource.
World add_users(const World& world, std::size_t count, double q_lo, double q_hi,
                Xoshiro256& rng, ResourceId placement = kNoResource);

/// Removes `count` uniformly chosen users.
World remove_users(const World& world, std::size_t count, Xoshiro256& rng);

/// Fails resource `r`: the resource disappears and its users are scattered
/// uniformly over the survivors. Ids above `r` shift down by one in the
/// successor world. Preconditions (throws ChurnError): `r` must exist, and
/// the world must keep at least one survivor — a world with a single
/// resource cannot lose it, because the displaced users would have nowhere
/// to go.
World fail_resource(const World& world, ResourceId r, Xoshiro256& rng);

}  // namespace qoslb
