#include "core/churn_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qoslb {

ChurnPlan& ChurnPlan::fail(std::uint64_t round, ResourceId resource) {
  events.push_back(ChurnEvent{round, resource, ChurnKind::kFail});
  return *this;
}

ChurnPlan& ChurnPlan::recover(std::uint64_t round, ResourceId resource) {
  events.push_back(ChurnEvent{round, resource, ChurnKind::kRecover});
  return *this;
}

void ChurnPlan::validate(std::size_t num_resources) const {
  QOSLB_REQUIRE(num_resources >= 1, "churn plan needs a non-empty world");
  std::vector<char> live(num_resources, 1);
  std::size_t live_count = num_resources;
  bool first = true;
  std::uint64_t prev_round = 0;
  for (const ChurnEvent& event : events) {
    QOSLB_REQUIRE(event.resource < num_resources,
                  "churn event resource out of range");
    QOSLB_REQUIRE(first || event.round >= prev_round,
                  "churn events must be sorted by round");
    prev_round = event.round;
    first = false;
    if (event.kind == ChurnKind::kFail) {
      QOSLB_REQUIRE(live[event.resource] != 0,
                    "churn plan fails a resource that is already dead");
      QOSLB_REQUIRE(live_count >= 2,
                    "churn plan would fail the last live resource");
      live[event.resource] = 0;
      --live_count;
    } else {
      QOSLB_REQUIRE(live[event.resource] == 0,
                    "churn plan recovers a resource that is already live");
      live[event.resource] = 1;
      ++live_count;
    }
  }
}

void ChurnTracker::on_failure(std::uint64_t round,
                              std::size_t satisfied_before) {
  ++stats.failures;
  if (in_dip) return;  // an overlapping failure deepens the open dip
  in_dip = true;
  stats.dip_open = true;
  dip_start_round = round;
  baseline_satisfied = satisfied_before;
  min_satisfied = satisfied_before;
}

void ChurnTracker::on_recovery() { ++stats.recoveries; }

void ChurnTracker::on_eviction(std::size_t count) { stats.evicted += count; }

void ChurnTracker::on_round_end(std::uint64_t round, std::size_t satisfied,
                                std::size_t num_users) {
  if (!in_dip || num_users == 0) return;
  min_satisfied = std::min<std::uint64_t>(min_satisfied, satisfied);
  const double depth =
      static_cast<double>(baseline_satisfied - min_satisfied) /
      static_cast<double>(num_users);
  stats.max_dip_depth = std::max(stats.max_dip_depth, depth);
  if (satisfied >= baseline_satisfied) {
    in_dip = false;
    stats.dip_open = false;
    stats.max_recovery_rounds =
        std::max(stats.max_recovery_rounds, round - dip_start_round);
  }
}

}  // namespace qoslb
