#include "core/weighted/weighted_instance.hpp"

#include <cmath>

#include "util/check.hpp"

namespace qoslb {
namespace {
constexpr double kFloorEpsilon = 1e-9;  // same convention as core/instance.cpp
}

WeightedInstance::WeightedInstance(std::vector<double> capacities,
                                   std::vector<double> requirements,
                                   std::vector<std::uint32_t> weights)
    : WeightedInstance(std::move(capacities), std::move(requirements),
                       std::move(weights), RateModel::uniform()) {}

WeightedInstance::WeightedInstance(std::vector<double> capacities,
                                   std::vector<double> requirements,
                                   std::vector<std::uint32_t> weights,
                                   RateModel rates)
    : capacities_(std::move(capacities)),
      requirements_(std::move(requirements)),
      weights_(std::move(weights)),
      rates_(std::move(rates)) {
  QOSLB_REQUIRE(!capacities_.empty(), "instance needs at least one resource");
  QOSLB_REQUIRE(!requirements_.empty(), "instance needs at least one user");
  QOSLB_REQUIRE(weights_.size() == requirements_.size(),
                "one weight per user required");
  for (const double s : capacities_) {
    QOSLB_REQUIRE(std::isfinite(s) && s > 0.0, "capacities must be positive");
    if (s != capacities_.front()) identical_ = false;
  }
  inv_requirements_.reserve(requirements_.size());
  for (const double q : requirements_) {
    QOSLB_REQUIRE(std::isfinite(q) && q > 0.0, "requirements must be positive");
    inv_requirements_.push_back(1.0 / q);
  }
  for (const std::uint32_t w : weights_) {
    QOSLB_REQUIRE(w >= 1, "weights must be at least 1");
    total_weight_ += w;
  }
  if (!rates_.is_uniform()) {
    QOSLB_REQUIRE(rates_.num_users() == requirements_.size() &&
                      rates_.num_resources() == capacities_.size(),
                  "rate model dimensions must match the instance");
    // Weighted protocols sample the full resource list, so a rate of 0
    // (restricted assignment) has no sampling support here: speeds only.
    QOSLB_REQUIRE(!rates_.restricted(),
                  "weighted instances require strictly positive rates "
                  "(restricted assignment is not supported in the weighted "
                  "model)");
  }
}

double WeightedInstance::capacity(ResourceId r) const {
  QOSLB_REQUIRE(r < capacities_.size(), "resource out of range");
  return capacities_[r];
}

double WeightedInstance::requirement(UserId u) const {
  QOSLB_REQUIRE(u < requirements_.size(), "user out of range");
  return requirements_[u];
}

std::uint32_t WeightedInstance::weight(UserId u) const {
  QOSLB_REQUIRE(u < weights_.size(), "user out of range");
  return weights_[u];
}

std::int64_t WeightedInstance::threshold(UserId u, ResourceId r) const {
  QOSLB_REQUIRE(u < requirements_.size(), "user out of range");
  QOSLB_REQUIRE(r < capacities_.size(), "resource out of range");
  const double ratio = rates_.rate(u, r) * capacities_[r] * inv_requirements_[u];
  const double floored = std::floor(ratio + kFloorEpsilon);
  const double cap = static_cast<double>(total_weight_);
  return static_cast<std::int64_t>(std::min(floored, cap));
}

double WeightedInstance::quality(ResourceId r, std::int64_t weight_load) const {
  QOSLB_REQUIRE(weight_load >= 1, "quality defined for positive load");
  return capacity(r) / static_cast<double>(weight_load);
}

}  // namespace qoslb
