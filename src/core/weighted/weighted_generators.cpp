#include "core/weighted/weighted_generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/zipf.hpp"
#include "util/check.hpp"

namespace qoslb {

WeightedInstance make_weighted_feasible(std::size_t n, std::size_t m,
                                        double slack, std::size_t weight_classes,
                                        double skew, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1 && m >= 1, "need users and resources");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");
  QOSLB_REQUIRE(weight_classes >= 1 && weight_classes <= 20,
                "weight_classes out of range");

  const ZipfSampler zipf(weight_classes, skew);
  std::vector<std::uint32_t> weights(n);
  for (auto& w : weights) w = std::uint32_t{1} << zipf(rng);

  // LPT packing: heaviest first onto the currently lightest resource.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
  std::vector<std::uint64_t> packed_load(m, 0);
  for (const std::size_t u : order) {
    const auto lightest = static_cast<std::size_t>(
        std::min_element(packed_load.begin(), packed_load.end()) -
        packed_load.begin());
    packed_load[lightest] += weights[u];
  }
  const std::uint64_t peak =
      *std::max_element(packed_load.begin(), packed_load.end());

  const double threshold =
      std::ceil(static_cast<double>(peak) / (1.0 - slack));
  std::vector<double> requirements(n, 1.0 / threshold);
  return WeightedInstance(std::vector<double>(m, 1.0), std::move(requirements),
                          std::move(weights));
}

}  // namespace qoslb
