#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/weighted/weighted_state.hpp"
#include "rng/xoshiro256.hpp"
#include "core/accounting.hpp"

namespace qoslb {

/// Weighted counterparts of the round protocols. The interface mirrors
/// core/protocol.hpp but operates on WeightedState; they are kept as a
/// separate small hierarchy because weight-aware admission differs
/// structurally (granting is a prefix in threshold order but the prefix sum
/// is over *weights* — fragmentation appears, see E13).
class WeightedProtocol {
 public:
  virtual ~WeightedProtocol() = default;
  virtual std::string name() const = 0;
  virtual void step(WeightedState& state, Xoshiro256& rng, Counters& counters) = 0;
  virtual bool is_stable(const WeightedState& state) const {
    return is_weighted_satisfaction_equilibrium(state);
  }
  virtual void reset() {}
};

/// Optimistic λ-damped sampling (weighted P2).
class WeightedUniformSampling : public WeightedProtocol {
 public:
  explicit WeightedUniformSampling(double migrate_prob = 1.0);
  std::string name() const override;
  void step(WeightedState& state, Xoshiro256& rng, Counters& counters) override;

 private:
  double migrate_prob_;
};

/// Resource-gated admission (weighted P4): each resource sorts requesters by
/// descending threshold and admits the longest prefix whose *weight* sum
/// keeps the admitted and the satisfied residents under their thresholds.
class WeightedAdmissionControl : public WeightedProtocol {
 public:
  WeightedAdmissionControl() = default;
  std::string name() const override { return "w-admission"; }
  void step(WeightedState& state, Xoshiro256& rng, Counters& counters) override;
};

/// One random unsatisfied user per step moves to its best satisfying
/// resource (weighted P1 baseline).
class WeightedSequentialBestResponse : public WeightedProtocol {
 public:
  WeightedSequentialBestResponse() = default;
  std::string name() const override { return "w-seq-br"; }
  void step(WeightedState& state, Xoshiro256& rng, Counters& counters) override;
};

}  // namespace qoslb
