#pragma once

#include "core/weighted/weighted_instance.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Feasible-by-construction weighted instance. Weights are drawn from
/// {1, 2, 4, ..., 2^(weight_classes-1)} with Zipf(skew) class frequencies
/// (skew 0 = uniform classes; larger = mostly light users with a heavy
/// tail). Users are packed LPT-style onto the m unit-capacity resources;
/// every threshold is then set to ⌈W_peak / (1−slack)⌉ where W_peak is the
/// packing's maximum weight-load, so the packing certifies feasibility.
WeightedInstance make_weighted_feasible(std::size_t n, std::size_t m,
                                        double slack, std::size_t weight_classes,
                                        double skew, Xoshiro256& rng);

}  // namespace qoslb
