#pragma once

#include <cstdint>
#include <vector>

#include "core/rate_model.hpp"
#include "core/types.hpp"

namespace qoslb {

/// Weighted extension of the QoS model (DESIGN.md §6 / experiment E13).
///
/// User `u` carries an integer weight `w_u ≥ 1` (think: flows of different
/// bandwidth, jobs of different size). A resource's load is the *total
/// weight* `W_r` of its users; capacity is shared proportionally to weight,
/// so every unit of weight receives quality `s_r / W_r` and user `u` is
/// satisfied iff `W_r ≤ threshold(u, r) = ⌊rate(u, r) · s_r / q_u⌋` — the
/// same rule as the unit model, with loads measured in weight units. Integer
/// weights keep all load arithmetic exact.
///
/// An optional RateModel adds per-(user, resource) *speeds* — the
/// weights-and-speeds model of Adolphs & Berenbrink. Unlike the unit model,
/// every rate must be strictly positive: the weighted protocols sample the
/// full resource list, so restricted assignment (rate 0) is not supported
/// here and is rejected at construction.
class WeightedInstance {
 public:
  WeightedInstance(std::vector<double> capacities, std::vector<double> requirements,
                   std::vector<std::uint32_t> weights);
  WeightedInstance(std::vector<double> capacities, std::vector<double> requirements,
                   std::vector<std::uint32_t> weights, RateModel rates);

  std::size_t num_users() const { return requirements_.size(); }
  std::size_t num_resources() const { return capacities_.size(); }

  double capacity(ResourceId r) const;
  double requirement(UserId u) const;
  std::uint32_t weight(UserId u) const;
  std::uint64_t total_weight() const { return total_weight_; }

  const RateModel& rate_model() const { return rates_; }
  double rate(UserId u, ResourceId r) const { return rates_.rate(u, r); }

  /// Maximum total weight of `r` at which user `u` is still satisfied,
  /// clamped to total_weight().
  std::int64_t threshold(UserId u, ResourceId r) const;

  double quality(ResourceId r, std::int64_t weight_load) const;

  bool identical_capacities() const { return identical_; }

 private:
  std::vector<double> capacities_;
  std::vector<double> requirements_;
  std::vector<double> inv_requirements_;
  std::vector<std::uint32_t> weights_;
  RateModel rates_;
  std::uint64_t total_weight_ = 0;
  bool identical_ = true;
};

}  // namespace qoslb
