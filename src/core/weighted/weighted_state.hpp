#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/satisfaction_index.hpp"
#include "core/weighted/weighted_instance.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Assignment of weighted users to resources with exact integer weight-loads
/// maintained incrementally. Mirrors core/state.hpp for the weighted model.
class WeightedState {
 public:
  WeightedState(const WeightedInstance& instance,
                std::vector<ResourceId> assignment);

  static WeightedState all_on(const WeightedInstance& instance, ResourceId r);
  static WeightedState random(const WeightedInstance& instance, Xoshiro256& rng);

  const WeightedInstance& instance() const { return *instance_; }
  std::size_t num_users() const { return assignment_.size(); }
  std::size_t num_resources() const { return loads_.size(); }

  ResourceId resource_of(UserId u) const;
  std::int64_t load(ResourceId r) const;
  const std::vector<std::int64_t>& loads() const { return loads_; }

  void move(UserId u, ResourceId r);

  bool satisfied(UserId u) const;

  /// Turns on the incremental satisfaction index (mirrors
  /// State::enable_satisfaction_tracking; here a move sweeps a window of the
  /// mover's weight, so a single move can flip many users).
  void enable_satisfaction_tracking();
  bool satisfaction_tracking() const { return index_.has_value(); }

  /// Unsatisfied users in unspecified order; requires tracking.
  const std::vector<UserId>& unsatisfied_view() const;

  std::size_t count_satisfied() const;
  std::size_t count_unsatisfied() const { return num_users() - count_satisfied(); }

  /// Total weight of satisfied users (the weighted welfare measure).
  std::uint64_t satisfied_weight() const;

  void check_invariants() const;

 private:
  const WeightedInstance* instance_;
  std::vector<ResourceId> assignment_;
  std::vector<std::int64_t> loads_;
  std::optional<SatisfactionIndex<std::int64_t>> index_;
};

/// Would user u be satisfied on r after moving there (its weight counted)?
bool weighted_satisfied_after_move(const WeightedState& state, UserId u,
                                   ResourceId r);

/// True iff no unsatisfied user has a satisfying deviation. O(n·m).
bool is_weighted_satisfaction_equilibrium(const WeightedState& state);

}  // namespace qoslb
