#include "core/weighted/weighted_protocols.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {
namespace {

struct Request {
  UserId user;
  ResourceId target;
};

/// Decision phase shared by the weighted round protocols: every unsatisfied
/// user probes one uniform resource and wishes to move if the snapshot load
/// plus its own weight fits its threshold.
std::vector<Request> collect_requests(const WeightedState& state,
                                      const std::vector<std::int64_t>& snapshot,
                                      Xoshiro256& rng, Counters& counters) {
  const WeightedInstance& instance = state.instance();
  std::vector<Request> requests;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    if (snapshot[current] <= instance.threshold(u, current)) continue;
    const auto r = static_cast<ResourceId>(
        uniform_u64_below(rng, state.num_resources()));
    ++counters.probes;
    if (r == current) continue;
    if (snapshot[r] + instance.weight(u) > instance.threshold(u, r)) continue;
    requests.push_back(Request{u, r});
  }
  return requests;
}

/// Minimum threshold among satisfied residents, per resource (the weighted
/// admission gate; mirrors resident_min_thresholds in the unit model).
std::vector<std::int64_t> satisfied_resident_min(const WeightedState& state) {
  const WeightedInstance& instance = state.instance();
  std::vector<std::int64_t> min_threshold(
      state.num_resources(),
      static_cast<std::int64_t>(instance.total_weight()) + 1);
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId r = state.resource_of(u);
    const std::int64_t t = instance.threshold(u, r);
    if (t >= state.load(r)) min_threshold[r] = std::min(min_threshold[r], t);
  }
  return min_threshold;
}

}  // namespace

WeightedUniformSampling::WeightedUniformSampling(double migrate_prob)
    : migrate_prob_(migrate_prob) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
}

std::string WeightedUniformSampling::name() const {
  return "w-uniform(lambda=" + format_double(migrate_prob_, 3) + ")";
}

void WeightedUniformSampling::step(WeightedState& state, Xoshiro256& rng,
                                   Counters& counters) {
  const std::vector<std::int64_t> snapshot = state.loads();
  for (const Request& req : collect_requests(state, snapshot, rng, counters)) {
    if (!bernoulli(rng, migrate_prob_)) continue;
    state.move(req.user, req.target);
    ++counters.migrations;
  }
}

void WeightedAdmissionControl::step(WeightedState& state, Xoshiro256& rng,
                                    Counters& counters) {
  const WeightedInstance& instance = state.instance();
  const std::vector<std::int64_t> snapshot = state.loads();
  const std::vector<Request> requests =
      collect_requests(state, snapshot, rng, counters);
  counters.migrate_requests += requests.size();
  if (requests.empty()) return;

  const std::vector<std::int64_t> resident_min = satisfied_resident_min(state);
  std::vector<std::vector<UserId>> by_target(state.num_resources());
  for (const Request& req : requests) by_target[req.target].push_back(req.user);

  for (ResourceId r = 0; r < state.num_resources(); ++r) {
    auto& requesters = by_target[r];
    if (requesters.empty()) continue;
    std::sort(requesters.begin(), requesters.end(), [&](UserId a, UserId b) {
      const std::int64_t ta = instance.threshold(a, r);
      const std::int64_t tb = instance.threshold(b, r);
      if (ta != tb) return ta > tb;
      return a < b;
    });
    const std::int64_t base_load = state.load(r);
    std::int64_t admitted_weight = 0;
    std::size_t admitted = 0;
    while (admitted < requesters.size()) {
      const UserId candidate = requesters[admitted];
      const std::int64_t post_load =
          base_load + admitted_weight + instance.weight(candidate);
      if (post_load > resident_min[r] ||
          post_load > instance.threshold(candidate, r))
        break;
      admitted_weight += instance.weight(candidate);
      ++admitted;
    }
    for (std::size_t i = 0; i < requesters.size(); ++i) {
      if (i < admitted) {
        state.move(requesters[i], r);
        ++counters.migrations;
        ++counters.grants;
      } else {
        ++counters.rejects;
      }
    }
  }
}

void WeightedSequentialBestResponse::step(WeightedState& state, Xoshiro256& rng,
                                          Counters& counters) {
  const WeightedInstance& instance = state.instance();
  std::vector<UserId> candidates;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (!state.satisfied(u)) candidates.push_back(u);

  while (!candidates.empty()) {
    const std::size_t idx = uniform_u64_below(rng, candidates.size());
    const UserId u = candidates[idx];
    counters.probes += state.num_resources();
    ResourceId best = kNoResource;
    double best_quality = 0.0;
    const ResourceId current = state.resource_of(u);
    for (ResourceId r = 0; r < state.num_resources(); ++r) {
      if (r == current || !weighted_satisfied_after_move(state, u, r)) continue;
      const double quality =
          instance.quality(r, state.load(r) + instance.weight(u));
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    if (best != kNoResource) {
      state.move(u, best);
      ++counters.migrations;
      return;
    }
    candidates[idx] = candidates.back();
    candidates.pop_back();
  }
}

}  // namespace qoslb
