#include "core/weighted/weighted_state.hpp"

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

WeightedState::WeightedState(const WeightedInstance& instance,
                             std::vector<ResourceId> assignment)
    : instance_(&instance), assignment_(std::move(assignment)) {
  QOSLB_REQUIRE(assignment_.size() == instance.num_users(),
                "assignment must place every user");
  loads_.assign(instance.num_resources(), 0);
  for (UserId u = 0; u < assignment_.size(); ++u) {
    QOSLB_REQUIRE(assignment_[u] < instance.num_resources(),
                  "assignment to unknown resource");
    loads_[assignment_[u]] += instance.weight(u);
  }
}

WeightedState WeightedState::all_on(const WeightedInstance& instance,
                                    ResourceId r) {
  QOSLB_REQUIRE(r < instance.num_resources(), "resource out of range");
  return WeightedState(instance,
                       std::vector<ResourceId>(instance.num_users(), r));
}

WeightedState WeightedState::random(const WeightedInstance& instance,
                                    Xoshiro256& rng) {
  std::vector<ResourceId> assignment(instance.num_users());
  for (auto& r : assignment)
    r = static_cast<ResourceId>(uniform_u64_below(rng, instance.num_resources()));
  return WeightedState(instance, std::move(assignment));
}

ResourceId WeightedState::resource_of(UserId u) const {
  QOSLB_REQUIRE(u < assignment_.size(), "user out of range");
  return assignment_[u];
}

std::int64_t WeightedState::load(ResourceId r) const {
  QOSLB_REQUIRE(r < loads_.size(), "resource out of range");
  return loads_[r];
}

void WeightedState::move(UserId u, ResourceId r) {
  QOSLB_REQUIRE(u < assignment_.size(), "user out of range");
  QOSLB_REQUIRE(r < loads_.size(), "resource out of range");
  const ResourceId old = assignment_[u];
  if (old == r) return;
  const std::int64_t w = instance_->weight(u);
  loads_[old] -= w;
  loads_[r] += w;
  assignment_[u] = r;
  if (index_)
    index_->on_move(u, old, instance_->threshold(u, old), r,
                    instance_->threshold(u, r), loads_[old], loads_[r],
                    /*delta=*/w);
}

void WeightedState::enable_satisfaction_tracking() {
  if (index_) return;
  index_.emplace();
  index_->rebuild(
      num_users(), num_resources(), [&](UserId u) { return assignment_[u]; },
      [&](UserId u) { return instance_->threshold(u, assignment_[u]); },
      [&](ResourceId r) { return loads_[r]; });
}

const std::vector<UserId>& WeightedState::unsatisfied_view() const {
  QOSLB_REQUIRE(index_.has_value(),
                "unsatisfied_view() needs enable_satisfaction_tracking()");
  return index_->unsatisfied();
}

bool WeightedState::satisfied(UserId u) const {
  const ResourceId r = resource_of(u);
  return loads_[r] <= instance_->threshold(u, r);
}

std::size_t WeightedState::count_satisfied() const {
  if (index_) return index_->satisfied_count();
  std::size_t count = 0;
  for (UserId u = 0; u < assignment_.size(); ++u)
    if (satisfied(u)) ++count;
  return count;
}

std::uint64_t WeightedState::satisfied_weight() const {
  std::uint64_t total = 0;
  for (UserId u = 0; u < assignment_.size(); ++u)
    if (satisfied(u)) total += instance_->weight(u);
  return total;
}

void WeightedState::check_invariants() const {
  std::vector<std::int64_t> expected(loads_.size(), 0);
  for (UserId u = 0; u < assignment_.size(); ++u)
    expected[assignment_[u]] += instance_->weight(u);
  QOSLB_CHECK(expected == loads_, "cached weight-loads diverged from assignment");
  if (!index_) return;
  std::size_t unsatisfied = 0;
  for (UserId u = 0; u < assignment_.size(); ++u) {
    const bool tracked = index_->is_unsatisfied(u);
    QOSLB_CHECK(tracked == !satisfied(u),
                "satisfaction index diverged from recompute");
    if (tracked) ++unsatisfied;
  }
  QOSLB_CHECK(unsatisfied == index_->unsatisfied().size(),
              "satisfaction index set size diverged");
  QOSLB_CHECK(index_->satisfied_count() == assignment_.size() - unsatisfied,
              "satisfied counter diverged");
}

bool weighted_satisfied_after_move(const WeightedState& state, UserId u,
                                   ResourceId r) {
  const WeightedInstance& instance = state.instance();
  const std::int64_t w = instance.weight(u);
  const std::int64_t post_load =
      state.resource_of(u) == r ? state.load(r) : state.load(r) + w;
  return post_load <= instance.threshold(u, r);
}

namespace {

bool weighted_deviation_free(const WeightedState& state, UserId u) {
  const ResourceId current = state.resource_of(u);
  for (ResourceId r = 0; r < state.num_resources(); ++r)
    if (r != current && weighted_satisfied_after_move(state, u, r))
      return false;
  return true;
}

}  // namespace

bool is_weighted_satisfaction_equilibrium(const WeightedState& state) {
  if (state.satisfaction_tracking()) {
    for (const UserId u : state.unsatisfied_view())
      if (!weighted_deviation_free(state, u)) return false;
    return true;
  }
  for (UserId u = 0; u < state.num_users(); ++u) {
    if (state.satisfied(u)) continue;
    if (!weighted_deviation_free(state, u)) return false;
  }
  return true;
}

}  // namespace qoslb
