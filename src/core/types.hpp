#pragma once

#include <cstdint>

namespace qoslb {

using UserId = std::uint32_t;
using ResourceId = std::uint32_t;

inline constexpr ResourceId kNoResource = ~ResourceId{0};
inline constexpr UserId kNoUser = ~UserId{0};

}  // namespace qoslb
