#pragma once

#include <string>

#include "core/satisfaction.hpp"
#include "core/state.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/accounting.hpp"

namespace qoslb {

/// A distributed (or sequential-baseline) QoS load-balancing dynamic.
///
/// `step()` executes one synchronous round: every decision is taken against
/// the loads observed at the round boundary, and all migrations are applied
/// together — the synchronous model of the paper. Sequential baselines
/// perform a single move per step. Message costs are charged to `counters`
/// under the cost model documented in sim/accounting.hpp.
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  virtual void step(State& state, Xoshiro256& rng, Counters& counters) = 0;

  /// The stability notion this dynamic converges to. The default is the
  /// satisfaction equilibrium; the pure load-balancing baseline overrides
  /// with Nash stability of the balancing game.
  virtual bool is_stable(const State& state) const {
    return is_satisfaction_equilibrium(state);
  }

  /// Clears adaptive per-run state (e.g. contention estimates) so a protocol
  /// object can be reused across replications.
  virtual void reset() {}
};

}  // namespace qoslb
