#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/satisfaction.hpp"
#include "core/state.hpp"
#include "core/types.hpp"
#include "rng/round_rng.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "core/accounting.hpp"

namespace qoslb {

/// A migration wish produced in the decision phase of a synchronous round.
struct MigrationRequest {
  UserId user;
  ResourceId target;
};

/// Decision-trace sampling predicate: a pure hash of (seed, user), never of
/// protocol randomness, so attaching a trace — or changing k — cannot
/// perturb any Philox draw and the sampled set is identical across thread
/// counts, execution modes, and shard layouts (docs/observability.md
/// "Sampling key"). every <= 1 samples every user.
inline bool decision_sampled(std::uint64_t seed, UserId u,
                             std::uint64_t every) {
  if (every <= 1) return true;
  return mix64(seed ^ (0x9E3779B97F4A7C15ULL * (u + 0x5EEDULL))) % every == 0;
}

/// One sampled per-user decision, recorded by step_users() when tracing is
/// attached. The protocol fills the pre-commit half (what it saw and asked
/// for); the engine resolves the post-commit half from the committed state.
struct DecisionRecord {
  UserId user = 0;
  ResourceId from = kNoResource;    // resource at the round boundary
  ResourceId probe = kNoResource;   // best candidate probed, if any
  ResourceId target = kNoResource;  // requested target (kNoResource: stayed)
  int threshold = 0;                // threshold(user, probe) when probed
  bool satisfied_before = false;
};

/// Per-shard decision-trace scratch. The engine attaches one per shard only
/// when a DecisionSink is configured (MigrationBuffer::decisions is null
/// otherwise) and drains them in shard order after commit, so the emitted
/// stream is thread/mode/layout-invariant.
struct DecisionScratch {
  std::uint64_t sample_seed = 0;
  std::uint64_t sample_every = 1;
  std::vector<DecisionRecord> records;

  bool sampled(UserId u) const {
    return decision_sampled(sample_seed, u, sample_every);
  }
};

/// Per-shard output of a sharded decision phase (docs/engine.md). Each shard
/// appends the wishes of its user range here; the commit phase merges the
/// buffers in shard order, so the result is independent of which worker ran
/// which shard.
struct MigrationBuffer {
  std::vector<MigrationRequest> requests;
  /// Optional per-resource aggregates a protocol tallies while deciding
  /// (e.g. AdaptiveSampling's migration-intent counts). Sized lazily by the
  /// protocol; summed across shards in commit_round().
  std::vector<std::uint32_t> resource_tallies;
  /// Non-null only while decision tracing is attached (engine-owned, one
  /// per shard). Protocols append a DecisionRecord for every *sampled*
  /// acting user, after all of that user's draws.
  DecisionScratch* decisions = nullptr;
};

/// A distributed (or sequential-baseline) QoS load-balancing dynamic.
///
/// One synchronous round: every decision is taken against the loads observed
/// at the round boundary, and all migrations are applied together — the
/// synchronous model of the paper. The round splits into two hooks:
///
///   * step_users() — decide for an explicit list of users against the
///     immutable round-boundary load snapshot, appending wishes to a
///     MigrationBuffer. Each user draws from its own (seed, round, user)
///     Philox substream (RoundRng), so the outcome for a user is a pure
///     function of that key — independent of the iteration set, shard
///     geometry, and thread count. Pure with respect to the protocol object
///     (it must not touch mutable members), so the engine may fan user
///     lists out across threads.
///   * commit_round() — apply the round's shard buffers (in shard order)
///     and roll any per-round protocol state forward. Always sequential.
///
/// Protocols implementing the pair advertise it via supports_step_users()
/// and inherit a step() that runs decide+commit over the full user range —
/// the classic single-threaded path. Sequential baselines (one move per
/// step) override step() directly and leave the sharded hooks
/// unimplemented. Protocols whose satisfied users neither act nor draw
/// additionally advertise active_set_compatible(): for those the engine may
/// iterate only the unsatisfied set and still reproduce the dense run
/// bit-for-bit (docs/performance.md).
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// Executes one synchronous round (or one sequential-baseline move). The
  /// default implementation routes through step_users()/commit_round() over
  /// the full user range, keying the round's substreams off one draw of
  /// `rng`, and requires supports_step_users().
  virtual void step(State& state, Xoshiro256& rng, Counters& counters);

  /// True when step_users()/commit_round() are implemented and the engine
  /// may shard the decision phase across threads.
  virtual bool supports_step_users() const { return false; }

  /// True when a user that is satisfied in the round-boundary snapshot
  /// neither migrates nor consumes randomness in step_users() — the
  /// precondition for iterating only the unsatisfied set. Berenbrink's
  /// QoS-oblivious dynamic (every user probes every round) is the one
  /// sharded protocol that is *not* compatible; the engine runs it densely
  /// even in active mode.
  virtual bool active_set_compatible() const { return false; }

  /// True when this dynamic respects restricted-assignment instances
  /// (Instance::restricted()): every probe targets the deciding user's
  /// reachable set (sample_reachable() / reachable_target() in
  /// protocols/common.hpp, or a threshold-gated deviation scan), so no
  /// migration ever lands on a rate-0 pair. The engine rejects restricted
  /// instances for protocols that don't opt in; lint rule QL009
  /// cross-checks the registry flag against the class. Unrestricted
  /// instances are unaffected — the helpers reduce to the historical
  /// whole-live-list draw bit-for-bit.
  virtual bool restricted_assignment_compatible() const { return false; }

  /// Decides for `users[0..count)` against `load_snapshot` (the loads at
  /// the round boundary), appending wishes to `out`. Draw randomness for
  /// user u exclusively from `rng.user_stream(u)`; tally into `counters`
  /// (the shard's private tally). Must be const with respect to protocol
  /// and state mutations — it runs concurrently with other shards of the
  /// same round.
  virtual void step_users(const State& state,
                          const std::vector<int>& load_snapshot,
                          const UserId* users, std::size_t count,
                          MigrationBuffer& out, const RoundRng& rng,
                          Counters& counters);

  /// Applies one round's shard buffers in shard order and rolls per-round
  /// protocol state forward. The default commit is optimistic: every request
  /// is executed (apply_all).
  virtual void commit_round(State& state, std::vector<MigrationBuffer>& shards,
                            Counters& counters);

  /// The stability notion this dynamic converges to. The default is the
  /// satisfaction equilibrium; the pure load-balancing baseline overrides
  /// with Nash stability of the balancing game.
  virtual bool is_stable(const State& state) const {
    return is_satisfaction_equilibrium(state);
  }

  /// Clears adaptive per-run state (e.g. contention estimates) so a protocol
  /// object can be reused across replications.
  virtual void reset() {}

  /// Serializes cross-round mutable protocol state into a checkpoint
  /// (core/snapshot.hpp) as `field <count>` keyword lines, mirroring the
  /// instance_io text idiom. The default writes nothing — correct for every
  /// protocol whose rounds are memoryless. Overrides must keep write/read
  /// field lists in lockstep; lint rule QL008 cross-checks the pair.
  virtual void snapshot_write(std::ostream& out) const;

  /// Restores what snapshot_write() serialized. Must accept its own output
  /// verbatim and throw std::invalid_argument on malformed input.
  virtual void snapshot_read(std::istream& in);
};

}  // namespace qoslb
