#include "core/state.hpp"

#include <algorithm>
#include <utility>

#include "core/satisfaction_scan.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

State::State(const Instance& instance, std::vector<ResourceId> assignment)
    : instance_(&instance), assignment_(std::move(assignment)) {
  QOSLB_REQUIRE(assignment_.size() == instance.num_users(),
                "assignment must place every user");
  loads_.assign(instance.num_resources(), 0);
  for (UserId u = 0; u < assignment_.size(); ++u) {
    const ResourceId r = assignment_[u];
    QOSLB_REQUIRE(r < instance.num_resources(), "assignment to unknown resource");
    QOSLB_REQUIRE(!instance.restricted() || instance.rate(u, r) > 0.0,
                  "assignment places a user on an unreachable resource");
    ++loads_[r];
  }
  current_thresholds_.resize(assignment_.size());
  for (UserId u = 0; u < assignment_.size(); ++u)
    current_thresholds_[u] = instance.threshold(u, assignment_[u]);
  live_.assign(instance.num_resources(), 1);
  live_list_.resize(instance.num_resources());
  for (ResourceId r = 0; r < live_list_.size(); ++r) live_list_[r] = r;
}

bool State::resource_live(ResourceId r) const {
  QOSLB_REQUIRE(r < live_.size(), "resource out of range");
  return live_[r] != 0;
}

void State::set_resource_live(ResourceId r, bool live) {
  QOSLB_REQUIRE(r < live_.size(), "resource out of range");
  QOSLB_REQUIRE((live_[r] != 0) != live, "liveness flip must change state");
  if (!live)
    QOSLB_REQUIRE(live_list_.size() >= 2, "cannot kill the last live resource");
  live_[r] = live ? 1 : 0;
  live_list_.clear();
  for (ResourceId s = 0; s < live_.size(); ++s)
    if (live_[s] != 0) live_list_.push_back(s);
}

State State::all_on(const Instance& instance, ResourceId r) {
  QOSLB_REQUIRE(r < instance.num_resources(), "resource out of range");
  return State(instance, std::vector<ResourceId>(instance.num_users(), r));
}

State State::round_robin(const Instance& instance) {
  std::vector<ResourceId> assignment(instance.num_users());
  if (instance.restricted()) {
    // Balanced over each user's own reachable set instead of [0, m).
    for (std::size_t u = 0; u < assignment.size(); ++u) {
      const auto reach = instance.reachable(static_cast<UserId>(u));
      assignment[u] = reach[u % reach.size()];
    }
  } else {
    for (std::size_t u = 0; u < assignment.size(); ++u)
      assignment[u] = static_cast<ResourceId>(u % instance.num_resources());
  }
  return State(instance, std::move(assignment));
}

State State::random(const Instance& instance, Xoshiro256& rng) {
  std::vector<ResourceId> assignment(instance.num_users());
  if (instance.restricted()) {
    for (UserId u = 0; u < assignment.size(); ++u) {
      const auto reach = instance.reachable(u);
      assignment[u] = reach[uniform_u64_below(rng, reach.size())];
    }
  } else {
    for (auto& r : assignment)
      r = static_cast<ResourceId>(
          uniform_u64_below(rng, instance.num_resources()));
  }
  return State(instance, std::move(assignment));
}

State State::two_choices(const Instance& instance, Xoshiro256& rng) {
  std::vector<ResourceId> assignment(instance.num_users());
  std::vector<int> loads(instance.num_resources(), 0);
  for (UserId u = 0; u < assignment.size(); ++u) {
    ResourceId a;
    ResourceId b;
    if (instance.restricted()) {
      const auto reach = instance.reachable(u);
      a = reach[uniform_u64_below(rng, reach.size())];
      b = reach[uniform_u64_below(rng, reach.size())];
    } else {
      a = static_cast<ResourceId>(
          uniform_u64_below(rng, instance.num_resources()));
      b = static_cast<ResourceId>(
          uniform_u64_below(rng, instance.num_resources()));
    }
    const ResourceId choice = loads[b] < loads[a] ? b : a;
    ++loads[choice];
    assignment[u] = choice;
  }
  return State(instance, std::move(assignment));
}

ResourceId State::resource_of(UserId u) const {
  QOSLB_REQUIRE(u < assignment_.size(), "user out of range");
  return assignment_[u];
}

int State::load(ResourceId r) const {
  QOSLB_REQUIRE(r < loads_.size(), "resource out of range");
  return loads_[r];
}

void State::move(UserId u, ResourceId r) {
  QOSLB_REQUIRE(u < assignment_.size(), "user out of range");
  QOSLB_REQUIRE(r < loads_.size(), "resource out of range");
  const ResourceId old = assignment_[u];
  if (old == r) return;
  QOSLB_REQUIRE(!instance_->restricted() || instance_->rate(u, r) > 0.0,
                "move to an unreachable resource");
  --loads_[old];
  ++loads_[r];
  assignment_[u] = r;
  // The cached source threshold is bit-identical to a recompute (it was
  // produced by the same instance call when u arrived on `old`), so reusing
  // it halves the threshold work per move.
  const int threshold_on_old = current_thresholds_[u];
  const int threshold_on_new = instance_->threshold(u, r);
  current_thresholds_[u] = threshold_on_new;
  if (index_)
    index_->on_move(u, old, threshold_on_old, r, threshold_on_new,
                    loads_[old], loads_[r],
                    /*delta=*/1);
}

void State::enable_satisfaction_tracking() {
  if (index_) return;
  index_.emplace();
  // const pointers select the SoA (non-template) rebuild overload.
  index_->rebuild(num_users(), num_resources(),
                  std::as_const(assignment_).data(),
                  std::as_const(current_thresholds_).data(),
                  std::as_const(loads_).data());
}

const std::vector<UserId>& State::unsatisfied_view() const {
  QOSLB_REQUIRE(index_.has_value(),
                "unsatisfied_view() needs enable_satisfaction_tracking()");
  return index_->unsatisfied();
}

double State::quality_of(UserId u) const {
  const ResourceId r = resource_of(u);
  return instance_->quality(u, r, loads_[r]);
}

bool State::satisfied(UserId u) const {
  QOSLB_REQUIRE(u < assignment_.size(), "user out of range");
  return loads_[assignment_[u]] <= current_thresholds_[u];
}

std::size_t State::count_satisfied() const {
  if (index_) return index_->satisfied_count();
  return count_satisfied_dense(assignment_.data(), current_thresholds_.data(),
                               loads_.data(), assignment_.size());
}

int State::max_load() const {
  return *std::max_element(loads_.begin(), loads_.end());
}

int State::min_load() const {
  return *std::min_element(loads_.begin(), loads_.end());
}

void State::check_invariants() const {
  std::vector<int> expected(loads_.size(), 0);
  for (const ResourceId r : assignment_) {
    QOSLB_CHECK(r < loads_.size(), "assignment to unknown resource");
    ++expected[r];
  }
  QOSLB_CHECK(expected == loads_, "cached loads diverged from assignment");
  for (UserId u = 0; u < assignment_.size(); ++u)
    QOSLB_CHECK(current_thresholds_[u] ==
                    instance_->threshold(u, assignment_[u]),
                "cached current-resource threshold diverged from recompute");
  std::vector<ResourceId> live_expected;
  for (ResourceId r = 0; r < live_.size(); ++r)
    if (live_[r] != 0) live_expected.push_back(r);
  QOSLB_CHECK(live_expected == live_list_,
              "live-resource list diverged from the liveness bitmap");
  for (const ResourceId r : assignment_)
    QOSLB_CHECK(live_[r] != 0, "user resident on a dead resource");
  if (instance_->restricted())
    for (UserId u = 0; u < assignment_.size(); ++u)
      QOSLB_CHECK(instance_->rate(u, assignment_[u]) > 0.0,
                  "user resident on an unreachable resource");
  if (!index_) return;
  std::size_t unsatisfied = 0;
  for (UserId u = 0; u < assignment_.size(); ++u) {
    const bool tracked = index_->is_unsatisfied(u);
    QOSLB_CHECK(tracked == !satisfied(u),
                "satisfaction index diverged from recompute");
    if (tracked) ++unsatisfied;
  }
  QOSLB_CHECK(unsatisfied == index_->unsatisfied().size(),
              "satisfaction index set size diverged");
  QOSLB_CHECK(index_->satisfied_count() == assignment_.size() - unsatisfied,
              "satisfied counter diverged");
}

}  // namespace qoslb
