#pragma once

#include "core/protocol.hpp"

namespace qoslb {

/// P6 — the classic distributed selfish load-balancing protocol (Berenbrink,
/// Friedetzky, Goldberg, Goldberg, Hu, Martin, SODA'06): every user — QoS
/// satisfied or not — samples one resource per round and migrates to it with
/// probability 1 − (ℓ_dst+1)/ℓ_src when that improves its quality
/// (normalized by capacity for related resources). This is the dynamic the
/// QoS protocols generalize; it balances loads but is oblivious to
/// per-user requirements, which is exactly what E4/E7 quantify.
class BerenbrinkBalancing : public Protocol {
 public:
  BerenbrinkBalancing() = default;

  std::string name() const override { return "berenbrink"; }

  bool supports_step_users() const override { return true; }
  // Not active_set_compatible(): every user — satisfied or not — probes and
  // may move each round, so the unsatisfied set is not the acting set.
  bool restricted_assignment_compatible() const override { return true; }

  void step_users(const State& state, const std::vector<int>& load_snapshot,
                  const UserId* users, std::size_t count, MigrationBuffer& out,
                  const RoundRng& rng, Counters& counters) override;

  /// Stability = Nash of the balancing game: no user can strictly improve
  /// its quality by a unilateral move. For identical capacities this is
  /// max_load − min_load ≤ 1.
  bool is_stable(const State& state) const override;
};

}  // namespace qoslb
