#include "core/protocols/adaptive_sampling.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

AdaptiveSampling::AdaptiveSampling(int probes_per_round) : probes_(probes_per_round) {
  QOSLB_REQUIRE(probes_per_round >= 1, "need at least one probe per round");
}

std::string AdaptiveSampling::name() const {
  return probes_ == 1 ? "adaptive" : "adaptive(k=" + std::to_string(probes_) + ")";
}

namespace {

/// The contention window may still be unsized on the first round (it is only
/// rolled forward in commit_round, which must not race the decide fan-out);
/// an unsized window reads as zero intents everywhere.
std::uint32_t intent_at(const std::vector<std::uint32_t>& intents,
                        ResourceId r) {
  return r < intents.size() ? intents[r] : 0;
}

void write_u32_block(std::ostream& out, const char* keyword,
                     const std::vector<std::uint32_t>& values) {
  out << keyword << ' ' << values.size() << '\n';
  for (const std::uint32_t v : values) out << v << '\n';
}

std::vector<std::uint32_t> read_u32_block(std::istream& in,
                                          const std::string& keyword) {
  std::string word;
  std::size_t count = 0;
  QOSLB_REQUIRE(static_cast<bool>(in >> word >> count) && word == keyword,
                "adaptive snapshot: expected a " + keyword + " block");
  std::vector<std::uint32_t> values(count);
  for (auto& v : values)
    QOSLB_REQUIRE(static_cast<bool>(in >> v),
                  "adaptive snapshot: truncated " + keyword + " block");
  return values;
}

}  // namespace

void AdaptiveSampling::step_users(const State& state,
                                  const std::vector<int>& snapshot,
                                  const UserId* users, std::size_t count,
                                  MigrationBuffer& out, const RoundRng& streams,
                                  Counters& counters) {
  const Instance& instance = state.instance();
  if (out.resource_tallies.size() != state.num_resources())
    out.resource_tallies.assign(state.num_resources(), 0);

  const ResourceId* assignment = state.assignment().data();
  for (const UserId u : unsatisfied_prefilter(state, snapshot, users, count)) {
    const ResourceId current = assignment[u];
    PhiloxEngine rng = streams.user_stream(u);
    ResourceId best = kNoResource;
    double best_quality = 0.0;
    for (int probe = 0; probe < probes_; ++probe) {
      const ResourceId r = sample_reachable(state, u, rng);
      ++counters.probes;
      if (r == kNoResource || r == current) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      const double quality = instance.quality(u, r, snapshot[r] + 1);
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    if (best == kNoResource) {
      if (out.decisions != nullptr && out.decisions->sampled(u))
        out.decisions->records.push_back(
            DecisionRecord{u, current, kNoResource, kNoResource, 0, false});
      continue;
    }
    ++out.resource_tallies[best];
    const int slack = instance.threshold(u, best) - snapshot[best];
    const std::uint32_t contention =
        std::max(intent_at(last_intents_, best), intent_at(prev_intents_, best));
    const double p = std::min(
        1.0, static_cast<double>(slack) / std::max<std::uint32_t>(1, contention));
    const bool requested = bernoulli(rng, p);
    if (requested) out.requests.push_back(MigrationRequest{u, best});
    if (out.decisions != nullptr && out.decisions->sampled(u))
      out.decisions->records.push_back(DecisionRecord{
          u, current, best, requested ? best : kNoResource,
          instance.threshold(u, best), false});
  }
}

void AdaptiveSampling::commit_round(State& state,
                                    std::vector<MigrationBuffer>& shards,
                                    Counters& counters) {
  std::vector<std::uint32_t> intents(state.num_resources(), 0);
  for (const MigrationBuffer& shard : shards)
    for (std::size_t r = 0; r < shard.resource_tallies.size(); ++r)
      intents[r] += shard.resource_tallies[r];
  prev_intents_ = std::move(last_intents_);
  last_intents_ = std::move(intents);
  for (MigrationBuffer& shard : shards)
    apply_all(state, shard.requests, counters);
}

void AdaptiveSampling::snapshot_write(std::ostream& out) const {
  write_u32_block(out, "last_intents", last_intents_);
  write_u32_block(out, "prev_intents", prev_intents_);
}

void AdaptiveSampling::snapshot_read(std::istream& in) {
  last_intents_ = read_u32_block(in, "last_intents");
  prev_intents_ = read_u32_block(in, "prev_intents");
}

}  // namespace qoslb
