#include "core/protocols/adaptive_sampling.hpp"

#include <algorithm>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

AdaptiveSampling::AdaptiveSampling(int probes_per_round) : probes_(probes_per_round) {
  QOSLB_REQUIRE(probes_per_round >= 1, "need at least one probe per round");
}

std::string AdaptiveSampling::name() const {
  return probes_ == 1 ? "adaptive" : "adaptive(k=" + std::to_string(probes_) + ")";
}

void AdaptiveSampling::step(State& state, Xoshiro256& rng, Counters& counters) {
  const Instance& instance = state.instance();
  const std::vector<int> snapshot = state.loads();
  if (last_intents_.size() != state.num_resources()) {
    last_intents_.assign(state.num_resources(), 0);
    prev_intents_.assign(state.num_resources(), 0);
  }

  std::vector<std::uint32_t> intents(state.num_resources(), 0);
  std::vector<MigrationRequest> moves;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    if (snapshot[current] <= instance.threshold(u, current)) continue;

    ResourceId best = kNoResource;
    double best_quality = 0.0;
    for (int probe = 0; probe < probes_; ++probe) {
      const auto r = static_cast<ResourceId>(
          uniform_u64_below(rng, state.num_resources()));
      ++counters.probes;
      if (r == current) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      const double quality = instance.quality(r, snapshot[r] + 1);
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    if (best == kNoResource) continue;
    ++intents[best];
    const int slack = instance.threshold(u, best) - snapshot[best];
    const std::uint32_t contention =
        std::max(last_intents_[best], prev_intents_[best]);
    const double p = std::min(
        1.0, static_cast<double>(slack) / std::max<std::uint32_t>(1, contention));
    if (bernoulli(rng, p)) moves.push_back(MigrationRequest{u, best});
  }
  prev_intents_ = std::move(last_intents_);
  last_intents_ = std::move(intents);
  apply_all(state, moves, counters);
}

}  // namespace qoslb
