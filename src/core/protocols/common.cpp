#include "core/protocols/common.hpp"

#include <algorithm>

#include "core/satisfaction_scan.hpp"

namespace qoslb {

std::span<const UserId> unsatisfied_prefilter(
    const State& state, const std::vector<int>& load_snapshot,
    const UserId* users, std::size_t count) {
  thread_local std::vector<UserId> scratch;
  if (scratch.size() < count) scratch.resize(count);
  const std::size_t written = collect_unsatisfied(
      state.assignment().data(), state.current_thresholds().data(),
      load_snapshot.data(), users, count, scratch.data());
  return {scratch.data(), written};
}

void merge_shard_requests(const std::vector<MigrationBuffer>& shards,
                          std::vector<MigrationRequest>& out) {
  std::size_t total = 0;
  for (const MigrationBuffer& shard : shards) total += shard.requests.size();
  out.clear();
  out.resize(total);
  std::size_t offset = 0;  // exclusive prefix sum of shard sizes
  for (const MigrationBuffer& shard : shards) {
    std::copy(shard.requests.begin(), shard.requests.end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += shard.requests.size();
  }
}

void apply_all(State& state, const std::vector<MigrationRequest>& requests,
               Counters& counters) {
  for (const MigrationRequest& req : requests) {
    state.move(req.user, req.target);
    ++counters.migrations;
  }
}

std::vector<int> resident_min_thresholds(const State& state) {
  const Instance& instance = state.instance();
  std::vector<int> min_threshold(state.num_resources(),
                                 static_cast<int>(state.num_users()) + 1);
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId r = state.resource_of(u);
    const int t = instance.threshold(u, r);
    // Only satisfied residents gate admission: an already-unsatisfied
    // resident cannot be hurt further, and protecting it would permanently
    // block resources that hold infeasible users.
    if (t >= state.load(r)) min_threshold[r] = std::min(min_threshold[r], t);
  }
  return min_threshold;
}

void apply_with_admission(State& state,
                          const std::vector<MigrationRequest>& requests,
                          Counters& counters) {
  counters.migrate_requests += requests.size();
  if (requests.empty()) return;

  const Instance& instance = state.instance();
  const std::vector<int> resident_min = resident_min_thresholds(state);

  // Group requests by target resource.
  std::vector<std::vector<UserId>> by_target(state.num_resources());
  for (const MigrationRequest& req : requests)
    by_target[req.target].push_back(req.user);

  for (ResourceId r = 0; r < state.num_resources(); ++r) {
    auto& requesters = by_target[r];
    if (requesters.empty()) continue;
    std::sort(requesters.begin(), requesters.end(),
              [&](UserId a, UserId b) {
                const int ta = instance.threshold(a, r);
                const int tb = instance.threshold(b, r);
                if (ta != tb) return ta > tb;
                return a < b;  // deterministic tie-break
              });
    const int base_load = state.load(r);
    std::size_t admitted = 0;
    while (admitted < requesters.size()) {
      const int k = static_cast<int>(admitted) + 1;
      const int post_load = base_load + k;
      const int kth_threshold = instance.threshold(requesters[admitted], r);
      if (post_load > resident_min[r] || post_load > kth_threshold) break;
      ++admitted;
    }
    for (std::size_t i = 0; i < requesters.size(); ++i) {
      if (i < admitted) {
        state.move(requesters[i], r);
        ++counters.migrations;
        ++counters.grants;
      } else {
        ++counters.rejects;
      }
    }
  }
}

}  // namespace qoslb
