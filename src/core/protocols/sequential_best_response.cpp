#include "core/protocols/sequential_best_response.hpp"

#include "core/satisfaction.hpp"
#include "rng/distributions.hpp"

namespace qoslb {

void SequentialBestResponse::step(State& state, Xoshiro256& rng,
                                  Counters& counters) {
  UserId mover = kNoUser;

  if (order_ == Order::kRandom) {
    const std::vector<UserId> candidates = unsatisfied_users(state);
    if (candidates.empty()) return;
    // Pick random unsatisfied users until one can actually move (bounded by
    // the candidate count so a stuck state terminates the step).
    std::vector<UserId> pool = candidates;
    while (!pool.empty()) {
      const std::size_t idx = uniform_u64_below(rng, pool.size());
      counters.probes += state.num_resources();
      if (best_satisfying_deviation(state, pool[idx]) != kNoResource) {
        mover = pool[idx];
        break;
      }
      pool[idx] = pool.back();
      pool.pop_back();
    }
  } else {
    // Round-robin: scan at most n users from the cursor.
    for (std::size_t scanned = 0; scanned < state.num_users(); ++scanned) {
      const UserId u = cursor_;
      cursor_ = static_cast<UserId>((cursor_ + 1) % state.num_users());
      if (state.satisfied(u)) continue;
      counters.probes += state.num_resources();
      if (best_satisfying_deviation(state, u) != kNoResource) {
        mover = u;
        break;
      }
    }
  }

  if (mover == kNoUser) return;
  const ResourceId target = best_satisfying_deviation(state, mover);
  state.move(mover, target);
  ++counters.migrations;
}

}  // namespace qoslb
