#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "net/graph.hpp"

namespace qoslb {

/// Declarative protocol construction for bench/example command lines.
struct ProtocolSpec {
  std::string kind;            // one of protocol_kinds()
  double lambda = 1.0;         // migration probability (optimistic protocols)
  int probes = 1;              // probes per round
  const Graph* graph = nullptr;  // resource graph (nbr-* kinds only)
};

/// Kinds: "seq-br", "seq-br-rr", "uniform", "adaptive", "admission",
/// "nbr-uniform", "nbr-admission", "berenbrink".
std::vector<std::string> protocol_kinds();

/// Builds the protocol described by `spec`; throws std::invalid_argument for
/// unknown kinds or missing graphs.
std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec);

}  // namespace qoslb
