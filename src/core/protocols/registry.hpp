#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "net/graph.hpp"

namespace qoslb {

/// Declarative protocol construction for the CLI, benches, and examples.
struct ProtocolSpec {
  std::string kind;            // one of protocol_kinds()
  double lambda = 1.0;         // migration probability (optimistic protocols)
  int probes = 1;              // probes per round
  const Graph* graph = nullptr;  // resource graph (nbr-* kinds only)
  std::uint32_t ttl = 0;       // load-cache time-to-live ("cached" kind)
  std::uint64_t seed = 1;      // substream master seed ("par-uniform" kind)
  std::size_t threads = 0;     // worker count, 0 = hardware ("par-uniform")
};

/// One registry row: the spec kind plus a human-readable one-liner for
/// `--list-protocols`-style discovery.
struct ProtocolInfo {
  std::string name;
  std::string description;
  /// True when the built protocol is active_set_compatible(): the engine's
  /// active mode (EngineMode::kActive) iterates only the unsatisfied set
  /// and still reproduces the dense run bit-for-bit. Kept consistent with
  /// the protocol classes by a registry test.
  bool active_set = false;
  /// True when the built protocol is restricted_assignment_compatible():
  /// it may drive instances whose users reach only a subset of resources
  /// (Instance::restricted()). Kept consistent with the protocol classes by
  /// a registry test and lint rule QL009.
  bool restricted = false;
};

/// Every registered kind, in presentation order. This is the single source
/// of truth: protocol_kinds() and make_protocol() are derived from it.
const std::vector<ProtocolInfo>& protocol_registry();

/// Kind names only, in registry order.
std::vector<std::string> protocol_kinds();

/// Builds the protocol described by `spec`; throws std::invalid_argument for
/// unknown kinds or missing graphs.
std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec);

}  // namespace qoslb
