#include "core/protocols/admission_control.hpp"

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {

AdmissionControl::AdmissionControl(int probes_per_round) : probes_(probes_per_round) {
  QOSLB_REQUIRE(probes_per_round >= 1, "need at least one probe per round");
}

std::string AdmissionControl::name() const {
  return probes_ == 1 ? "admission" : "admission(k=" + std::to_string(probes_) + ")";
}

void AdmissionControl::step_users(const State& state,
                                  const std::vector<int>& snapshot,
                                  const UserId* users, std::size_t count,
                                  MigrationBuffer& out, const RoundRng& streams,
                                  Counters& counters) {
  const Instance& instance = state.instance();
  const ResourceId* assignment = state.assignment().data();
  for (const UserId u : unsatisfied_prefilter(state, snapshot, users, count)) {
    const ResourceId current = assignment[u];
    PhiloxEngine rng = streams.user_stream(u);
    ResourceId best = kNoResource;
    double best_quality = 0.0;
    for (int probe = 0; probe < probes_; ++probe) {
      const ResourceId r = sample_reachable(state, u, rng);
      ++counters.probes;
      if (r == kNoResource || r == current) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      const double quality = instance.quality(u, r, snapshot[r] + 1);
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    if (best != kNoResource) out.requests.push_back(MigrationRequest{u, best});
    // Decision tracing last, after every draw for u; whether the request is
    // granted is resolved by the engine after the admission commit.
    if (out.decisions != nullptr && out.decisions->sampled(u))
      out.decisions->records.push_back(DecisionRecord{
          u, current, best, best,
          best != kNoResource ? instance.threshold(u, best) : 0, false});
  }
}

void AdmissionControl::commit_round(State& state,
                                    std::vector<MigrationBuffer>& shards,
                                    Counters& counters) {
  merge_shard_requests(shards, merge_scratch_);
  apply_with_admission(state, merge_scratch_, counters);
}

}  // namespace qoslb
