#pragma once

#include <utility>
#include <vector>

#include "core/protocol.hpp"  // MigrationRequest / MigrationBuffer
#include "core/state.hpp"
#include "core/types.hpp"
#include "rng/distributions.hpp"
#include "sim/accounting.hpp"

namespace qoslb {

/// Draws one probe target for user `u`. Unrestricted instances keep the
/// historical whole-live-list draw bit-for-bit; restricted ones draw from
/// u's reachable set instead. A restricted draw that lands on a dead
/// resource returns kNoResource — a failed probe, mirroring the nbr-*
/// dead-neighbor idiom — so u's stream position advances identically
/// whether or not churn killed anything. Every restricted-assignment-
/// compatible sampling protocol must draw through this helper (lint rule
/// QL009).
template <typename Rng>
ResourceId sample_reachable(const State& state, UserId u, Rng& rng) {
  const Instance& instance = state.instance();
  if (!instance.restricted()) {
    const auto& live = state.live_resources();
    return live[uniform_u64_below(rng, live.size())];
  }
  const auto reach = instance.reachable(u);
  const auto r = static_cast<ResourceId>(
      reach[uniform_u64_below(rng, reach.size())]);
  return state.resource_live(r) ? r : kNoResource;
}

/// True iff `r` is a valid migration target for `u`: live, and reachable
/// when the instance is restricted. Fixed-candidate protocols (nbr-*) gate
/// each probe through this instead of bare resource_live().
inline bool reachable_target(const State& state, UserId u, ResourceId r) {
  if (!state.resource_live(r)) return false;
  return !state.instance().restricted() || state.instance().rate(u, r) > 0.0;
}

/// Applies optimistic (ungated) migrations; every request is executed.
void apply_all(State& state, const std::vector<MigrationRequest>& requests,
               Counters& counters);

/// Resource-gated admission (protocol P4/P5-admission of DESIGN.md): each
/// resource sorts its requesters by descending threshold and admits the
/// longest prefix k such that the post-admission load keeps both the
/// admitted requesters and the current residents satisfied:
///     load + k ≤ min(resident_min_threshold, k-th admitted threshold).
/// Rejected requesters stay where they are. Returns number of migrations.
void apply_with_admission(State& state,
                          const std::vector<MigrationRequest>& requests,
                          Counters& counters);

/// Minimum threshold among the *currently satisfied* residents of each
/// resource (num_users()+1 when there is none, i.e. no resident constraint).
/// Unsatisfied residents do not gate admission — they cannot be hurt further.
std::vector<int> resident_min_thresholds(const State& state);

}  // namespace qoslb
