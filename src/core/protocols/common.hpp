#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/protocol.hpp"  // MigrationRequest / MigrationBuffer
#include "core/state.hpp"
#include "core/types.hpp"
#include "rng/distributions.hpp"
#include "core/accounting.hpp"

namespace qoslb {

/// Draws one probe target for user `u`. Unrestricted instances keep the
/// historical whole-live-list draw bit-for-bit; restricted ones draw from
/// u's reachable set instead. A restricted draw that lands on a dead
/// resource returns kNoResource — a failed probe, mirroring the nbr-*
/// dead-neighbor idiom — so u's stream position advances identically
/// whether or not churn killed anything. Every restricted-assignment-
/// compatible sampling protocol must draw through this helper (lint rule
/// QL009).
template <typename Rng>
ResourceId sample_reachable(const State& state, UserId u, Rng& rng) {
  const Instance& instance = state.instance();
  if (!instance.restricted()) {
    const auto& live = state.live_resources();
    return live[uniform_u64_below(rng, live.size())];
  }
  const auto reach = instance.reachable(u);
  const auto r = static_cast<ResourceId>(
      reach[uniform_u64_below(rng, reach.size())]);
  return state.resource_live(r) ? r : kNoResource;
}

/// True iff `r` is a valid migration target for `u`: live, and reachable
/// when the instance is restricted. Fixed-candidate protocols (nbr-*) gate
/// each probe through this instead of bare resource_live().
inline bool reachable_target(const State& state, UserId u, ResourceId r) {
  if (!state.resource_live(r)) return false;
  return !state.instance().restricted() || state.instance().rate(u, r) > 0.0;
}

/// Filters `users[0..count)` down to the users unsatisfied against the
/// round-boundary `load_snapshot`, preserving ascending input order, via the
/// branchless SoA scan (core/satisfaction_scan.hpp). This hoists the
/// per-user "satisfied -> neither act nor draw" branch out of the decision
/// loop: the survivors are exactly the users the historical
///     if (snapshot[current] <= threshold(u, current)) continue;
/// prefilter would have reached, so draws and request-append order are
/// bit-identical. Returns a view into thread-local scratch — valid until the
/// calling thread's next prefilter (each engine shard runs on one thread, so
/// shard-concurrent rounds are safe).
std::span<const UserId> unsatisfied_prefilter(
    const State& state, const std::vector<int>& load_snapshot,
    const UserId* users, std::size_t count);

/// Merges one round's shard buffers into `out` in shard order — bit-identical
/// to sequential concatenation, hence independent of which worker ran which
/// shard. Two passes: size the destination by an exclusive prefix sum of the
/// shard sizes, then copy each shard into its slot. `out` is caller-owned
/// scratch (cleared here, capacity reused across rounds).
void merge_shard_requests(const std::vector<MigrationBuffer>& shards,
                          std::vector<MigrationRequest>& out);

/// Applies optimistic (ungated) migrations; every request is executed.
void apply_all(State& state, const std::vector<MigrationRequest>& requests,
               Counters& counters);

/// Resource-gated admission (protocol P4/P5-admission of DESIGN.md): each
/// resource sorts its requesters by descending threshold and admits the
/// longest prefix k such that the post-admission load keeps both the
/// admitted requesters and the current residents satisfied:
///     load + k ≤ min(resident_min_threshold, k-th admitted threshold).
/// Rejected requesters stay where they are. Returns number of migrations.
void apply_with_admission(State& state,
                          const std::vector<MigrationRequest>& requests,
                          Counters& counters);

/// Minimum threshold among the *currently satisfied* residents of each
/// resource (num_users()+1 when there is none, i.e. no resident constraint).
/// Unsatisfied residents do not gate admission — they cannot be hurt further.
std::vector<int> resident_min_thresholds(const State& state);

}  // namespace qoslb
