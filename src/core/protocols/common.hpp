#pragma once

#include <utility>
#include <vector>

#include "core/protocol.hpp"  // MigrationRequest / MigrationBuffer
#include "core/state.hpp"
#include "core/types.hpp"
#include "sim/accounting.hpp"

namespace qoslb {

/// Applies optimistic (ungated) migrations; every request is executed.
void apply_all(State& state, const std::vector<MigrationRequest>& requests,
               Counters& counters);

/// Resource-gated admission (protocol P4/P5-admission of DESIGN.md): each
/// resource sorts its requesters by descending threshold and admits the
/// longest prefix k such that the post-admission load keeps both the
/// admitted requesters and the current residents satisfied:
///     load + k ≤ min(resident_min_threshold, k-th admitted threshold).
/// Rejected requesters stay where they are. Returns number of migrations.
void apply_with_admission(State& state,
                          const std::vector<MigrationRequest>& requests,
                          Counters& counters);

/// Minimum threshold among the *currently satisfied* residents of each
/// resource (num_users()+1 when there is none, i.e. no resident constraint).
/// Unsatisfied residents do not gate admission — they cannot be hurt further.
std::vector<int> resident_min_thresholds(const State& state);

}  // namespace qoslb
