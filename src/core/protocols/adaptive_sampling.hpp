#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace qoslb {

/// P3 — contention-adaptive sampling (Fischer–Räcke–Vöcking-style damping,
/// fully distributed): like UniformSampling, but a user that found a
/// satisfying resource `r` migrates with probability
///
///     p = min(1, slack / max(1, contention_r))
///
/// where `slack = threshold(u, r) − load(r)` is the room the user observes
/// and `contention_r` is the larger of the migration-intent counts resource
/// `r` observed in the previous *two* rounds — information a resource can
/// report in its LOAD reply without any global knowledge. The expected
/// inflow into a contended resource thus tracks its free capacity,
/// eliminating herding without a tuned global λ. The two-round maximum is
/// load-bearing: with a one-round memory a herd that alternates between two
/// resources always sees a zero estimate for its next target and never damps
/// (period-2 livelock on the E5 herding instance); the hysteresis keeps the
/// estimate hot across the alternation.
class AdaptiveSampling : public Protocol {
 public:
  explicit AdaptiveSampling(int probes_per_round = 1);

  std::string name() const override;

  bool supports_step_users() const override { return true; }
  bool active_set_compatible() const override { return true; }
  bool restricted_assignment_compatible() const override { return true; }

  /// Tallies this shard's migration intents into out.resource_tallies (the
  /// contention estimate the *next* rounds damp against) while reading the
  /// previous rounds' estimates, which are frozen during the decide phase.
  void step_users(const State& state, const std::vector<int>& load_snapshot,
                  const UserId* users, std::size_t count, MigrationBuffer& out,
                  const RoundRng& rng, Counters& counters) override;

  /// Sums the shard intent tallies into the two-round contention window,
  /// then applies all requests optimistically.
  void commit_round(State& state, std::vector<MigrationBuffer>& shards,
                    Counters& counters) override;

  void reset() override {
    last_intents_.clear();
    prev_intents_.clear();
  }

  /// The contention window is the protocol's only cross-round state; it must
  /// ride along in a checkpoint or a resumed run damps differently.
  void snapshot_write(std::ostream& out) const override;
  void snapshot_read(std::istream& in) override;

 private:
  // Construction constant, encoded in name() ("adaptive(k=N)"): restore
  // rebuilds it through the registry, not the snapshot payload.
  int probes_;  // qoslb-snapshot: transient
  std::vector<std::uint32_t> last_intents_;  // per-resource intents, round t-1
  std::vector<std::uint32_t> prev_intents_;  // per-resource intents, round t-2
};

}  // namespace qoslb
