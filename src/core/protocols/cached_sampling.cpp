#include "core/protocols/cached_sampling.hpp"

#include <limits>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

CachedSampling::CachedSampling(double migrate_prob, std::uint32_t ttl_rounds)
    : migrate_prob_(migrate_prob), ttl_(ttl_rounds) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
}

std::string CachedSampling::name() const {
  return "cached(lambda=" + format_double(migrate_prob_, 3) +
         ",ttl=" + std::to_string(ttl_) + ")";
}

void CachedSampling::step(State& state, Xoshiro256& rng, Counters& counters) {
  const Instance& instance = state.instance();
  const std::vector<int> snapshot = state.loads();
  if (cached_load_.size() != state.num_resources()) {
    cached_load_.assign(state.num_resources(), 0);
    // "Never refreshed": pretend an ancient stamp so the first touch probes.
    cached_at_.assign(state.num_resources(),
                      std::numeric_limits<std::uint64_t>::max());
  }
  ++round_;

  std::vector<MigrationRequest> moves;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    // Own-resource satisfaction is always known exactly (it is local).
    if (snapshot[current] <= instance.threshold(u, current)) continue;

    const auto r = static_cast<ResourceId>(
        uniform_u64_below(rng, state.num_resources()));
    if (r == current) continue;

    const bool stale = cached_at_[r] == std::numeric_limits<std::uint64_t>::max() ||
                       round_ - cached_at_[r] > ttl_;
    if (stale) {
      ++counters.probes;  // a fresh probe costs a round trip
      cached_load_[r] = snapshot[r];
      cached_at_[r] = round_;
    }
    const int believed_load = cached_load_[r];
    if (believed_load + 1 > instance.threshold(u, r)) continue;
    if (bernoulli(rng, migrate_prob_)) moves.push_back(MigrationRequest{u, r});
  }
  apply_all(state, moves, counters);
}

}  // namespace qoslb
