#include "core/protocols/uniform_sampling.hpp"

#include <vector>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

UniformSampling::UniformSampling(double migrate_prob, int probes_per_round)
    : migrate_prob_(migrate_prob), probes_(probes_per_round) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
  QOSLB_REQUIRE(probes_per_round >= 1, "need at least one probe per round");
}

std::string UniformSampling::name() const {
  std::string n = "uniform(lambda=" + format_double(migrate_prob_, 3);
  if (probes_ != 1) n += ",k=" + std::to_string(probes_);
  return n + ")";
}

void UniformSampling::step_users(const State& state,
                                 const std::vector<int>& snapshot,
                                 const UserId* users, std::size_t count,
                                 MigrationBuffer& out, const RoundRng& streams,
                                 Counters& counters) {
  const Instance& instance = state.instance();
  const ResourceId* assignment = state.assignment().data();
  // Branchless SoA pass first, probe loop only over the survivors — the
  // per-user draws and append order match the historical inline prefilter
  // bit-for-bit (unsatisfied_prefilter contract).
  for (const UserId u : unsatisfied_prefilter(state, snapshot, users, count)) {
    const ResourceId current = assignment[u];
    PhiloxEngine rng = streams.user_stream(u);
    ResourceId best = kNoResource;
    double best_quality = 0.0;
    for (int probe = 0; probe < probes_; ++probe) {
      const ResourceId r = sample_reachable(state, u, rng);
      ++counters.probes;
      if (r == kNoResource || r == current) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      const double quality = instance.quality(u, r, snapshot[r] + 1);
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    const bool requested = best != kNoResource && bernoulli(rng, migrate_prob_);
    if (requested) out.requests.push_back(MigrationRequest{u, best});
    // Decision tracing last, after every draw for u, so attaching a sink
    // cannot shift the stream (prefilter survivors are unsatisfied).
    if (out.decisions != nullptr && out.decisions->sampled(u))
      out.decisions->records.push_back(DecisionRecord{
          u, current, best, requested ? best : kNoResource,
          best != kNoResource ? instance.threshold(u, best) : 0, false});
  }
}

}  // namespace qoslb
