#pragma once

#include "core/protocol.hpp"
#include "net/graph.hpp"

namespace qoslb {

/// P5 — topology-restricted sampling: resources form a graph and a user can
/// only probe (and migrate to) neighbors of its current resource — the
/// distributed-network variant of the protocols (E8). Supports both the
/// optimistic (λ-damped) and the admission-gated commit rule.
///
/// The graph is held by reference and must outlive the protocol; its vertex
/// count must equal the instance's resource count.
class NeighborhoodSampling : public Protocol {
 public:
  enum class Commit { kOptimistic, kAdmission };

  NeighborhoodSampling(const Graph& resource_graph, Commit commit,
                       double migrate_prob = 1.0, int probes_per_round = 1);

  std::string name() const override;

  bool supports_step_users() const override { return true; }
  bool active_set_compatible() const override { return true; }
  bool restricted_assignment_compatible() const override { return true; }

  void step_users(const State& state, const std::vector<int>& load_snapshot,
                  const UserId* users, std::size_t count, MigrationBuffer& out,
                  const RoundRng& rng, Counters& counters) override;

  /// Optimistic commit applies every request; admission commit merges the
  /// shards and runs the per-resource grant scan.
  void commit_round(State& state, std::vector<MigrationBuffer>& shards,
                    Counters& counters) override;

  /// Stability is relative to the reachable neighborhood: an unsatisfied user
  /// with a satisfying deviation outside its neighborhood is *not* unstable.
  bool is_stable(const State& state) const override;

 private:
  const Graph* graph_;
  Commit commit_;
  double migrate_prob_;
  int probes_;
  /// Commit-phase merge scratch (admission variant), reused across rounds.
  std::vector<MigrationRequest> merge_scratch_;
};

}  // namespace qoslb
