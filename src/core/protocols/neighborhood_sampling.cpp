#include "core/protocols/neighborhood_sampling.hpp"

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

NeighborhoodSampling::NeighborhoodSampling(const Graph& resource_graph,
                                           Commit commit, double migrate_prob,
                                           int probes_per_round)
    : graph_(&resource_graph),
      commit_(commit),
      migrate_prob_(migrate_prob),
      probes_(probes_per_round) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
  QOSLB_REQUIRE(probes_per_round >= 1, "need at least one probe per round");
}

std::string NeighborhoodSampling::name() const {
  return commit_ == Commit::kAdmission
             ? "nbr-admission"
             : "nbr-uniform(lambda=" + format_double(migrate_prob_, 3) + ")";
}

void NeighborhoodSampling::step_users(const State& state,
                                      const std::vector<int>& snapshot,
                                      const UserId* users, std::size_t count,
                                      MigrationBuffer& out,
                                      const RoundRng& streams,
                                      Counters& counters) {
  const Instance& instance = state.instance();
  QOSLB_REQUIRE(graph_->num_vertices() == state.num_resources(),
                "resource graph size mismatch");
  const ResourceId* assignment = state.assignment().data();
  for (const UserId u : unsatisfied_prefilter(state, snapshot, users, count)) {
    const ResourceId current = assignment[u];
    const auto neighbors = graph_->neighbors(current);
    if (neighbors.empty()) {
      if (out.decisions != nullptr && out.decisions->sampled(u))
        out.decisions->records.push_back(
            DecisionRecord{u, current, kNoResource, kNoResource, 0, false});
      continue;
    }

    PhiloxEngine rng = streams.user_stream(u);
    ResourceId best = kNoResource;
    double best_quality = 0.0;
    for (int probe = 0; probe < probes_; ++probe) {
      const ResourceId r = neighbors[uniform_u64_below(rng, neighbors.size())];
      ++counters.probes;
      // A dead or unreachable neighbor is drawn (keeping the draw count, and
      // thus the RNG stream position, identical to a churn-free run on an
      // unrestricted instance) but never targeted.
      if (!reachable_target(state, u, r)) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      const double quality = instance.quality(u, r, snapshot[r] + 1);
      if (best == kNoResource || quality > best_quality) {
        best = r;
        best_quality = quality;
      }
    }
    bool requested = false;
    if (best != kNoResource &&
        (commit_ != Commit::kOptimistic || bernoulli(rng, migrate_prob_))) {
      requested = true;
      out.requests.push_back(MigrationRequest{u, best});
    }
    // Decision tracing last, after every draw for u (the kOptimistic
    // bernoulli above draws exactly when the untraced path drew).
    if (out.decisions != nullptr && out.decisions->sampled(u))
      out.decisions->records.push_back(DecisionRecord{
          u, current, best, requested ? best : kNoResource,
          best != kNoResource ? instance.threshold(u, best) : 0, false});
  }
}

void NeighborhoodSampling::commit_round(State& state,
                                        std::vector<MigrationBuffer>& shards,
                                        Counters& counters) {
  if (commit_ == Commit::kAdmission) {
    merge_shard_requests(shards, merge_scratch_);
    apply_with_admission(state, merge_scratch_, counters);
    return;
  }
  for (MigrationBuffer& shard : shards) apply_all(state, shard.requests, counters);
}

namespace {

bool stable_user(const State& state, const Graph& graph, UserId u) {
  for (const ResourceId r : graph.neighbors(state.resource_of(u)))
    if (reachable_target(state, u, r) && satisfied_after_move(state, u, r))
      return false;
  return true;
}

}  // namespace

bool NeighborhoodSampling::is_stable(const State& state) const {
  if (state.satisfaction_tracking()) {
    for (const UserId u : state.unsatisfied_view())
      if (!stable_user(state, *graph_, u)) return false;
    return true;
  }
  for (UserId u = 0; u < state.num_users(); ++u) {
    if (state.satisfied(u)) continue;
    if (!stable_user(state, *graph_, u)) return false;
  }
  return true;
}

}  // namespace qoslb
