#include "core/protocols/berenbrink.hpp"

#include <algorithm>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"

namespace qoslb {

void BerenbrinkBalancing::step_users(const State& state,
                                     const std::vector<int>& snapshot,
                                     const UserId* users, std::size_t count,
                                     MigrationBuffer& out,
                                     const RoundRng& streams,
                                     Counters& counters) {
  const Instance& instance = state.instance();
  // QoS-oblivious: every user probes every round (no unsatisfied prefilter —
  // the protocol is not active_set_compatible), so the loop streams the raw
  // assignment array directly.
  const ResourceId* assignment = state.assignment().data();
  const int* thresholds = state.current_thresholds().data();
  for (std::size_t i = 0; i < count; ++i) {
    const UserId u = users[i];
    const ResourceId current = assignment[u];
    PhiloxEngine rng = streams.user_stream(u);
    const ResourceId r = sample_reachable(state, u, rng);
    ++counters.probes;
    // Normalized (capacity-relative) loads handle related resources; for
    // identical capacities this reduces to the original integer rule.
    bool requested = false;
    ResourceId probe = kNoResource;
    if (r != kNoResource && r != current) {
      probe = r;
      const double src = static_cast<double>(snapshot[current]) / instance.capacity(current);
      const double dst = static_cast<double>(snapshot[r] + 1) / instance.capacity(r);
      if (dst < src && bernoulli(rng, 1.0 - dst / src)) {
        requested = true;
        out.requests.push_back(MigrationRequest{u, r});
      }
    }
    // Decision tracing last, after every draw for u. The dynamic is
    // QoS-oblivious, so — unlike the prefiltered protocols — sampled users
    // can be satisfied at the round boundary; record which.
    if (out.decisions != nullptr && out.decisions->sampled(u))
      out.decisions->records.push_back(DecisionRecord{
          u, current, probe, requested ? probe : kNoResource,
          probe != kNoResource ? instance.threshold(u, probe) : 0,
          snapshot[current] <= thresholds[u]});
  }
}

bool BerenbrinkBalancing::is_stable(const State& state) const {
  const Instance& instance = state.instance();
  // Stability quantifies over migration targets, and only live resources are
  // targets — a dead (evicted, load-0) resource must not keep the spread open.
  const auto& live = state.live_resources();
  // The min/max-spread shortcut needs every user to see every live resource
  // as a potential target, so restricted instances take the general scan.
  if (instance.identical_capacities() && !instance.restricted()) {
    int min_load = state.load(live[0]);
    int max_load = min_load;
    for (const ResourceId r : live) {
      min_load = std::min(min_load, state.load(r));
      max_load = std::max(max_load, state.load(r));
    }
    return max_load - min_load <= 1;
  }
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    // The migration rule compares *normalized loads*, not user-rate-scaled
    // qualities, so stability must quantify over the same objective.
    const double own = instance.quality(current, state.load(current));
    for (const ResourceId r : live) {
      if (r == current || !reachable_target(state, u, r)) continue;
      if (instance.quality(r, state.load(r) + 1) > own) return false;
    }
  }
  return true;
}

}  // namespace qoslb
