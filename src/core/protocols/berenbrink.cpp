#include "core/protocols/berenbrink.hpp"

#include <algorithm>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"

namespace qoslb {

void BerenbrinkBalancing::step_users(const State& state,
                                     const std::vector<int>& snapshot,
                                     const UserId* users, std::size_t count,
                                     MigrationBuffer& out,
                                     const RoundRng& streams,
                                     Counters& counters) {
  const Instance& instance = state.instance();
  for (std::size_t i = 0; i < count; ++i) {
    const UserId u = users[i];
    const ResourceId current = state.resource_of(u);
    PhiloxEngine rng = streams.user_stream(u);
    const auto r = static_cast<ResourceId>(
        uniform_u64_below(rng, state.num_resources()));
    ++counters.probes;
    if (r == current) continue;
    // Normalized (capacity-relative) loads handle related resources; for
    // identical capacities this reduces to the original integer rule.
    const double src = static_cast<double>(snapshot[current]) / instance.capacity(current);
    const double dst = static_cast<double>(snapshot[r] + 1) / instance.capacity(r);
    if (dst >= src) continue;
    const double p = 1.0 - dst / src;
    if (bernoulli(rng, p)) out.requests.push_back(MigrationRequest{u, r});
  }
}

bool BerenbrinkBalancing::is_stable(const State& state) const {
  const Instance& instance = state.instance();
  if (instance.identical_capacities())
    return state.max_load() - state.min_load() <= 1;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    const double own = state.quality_of(u);
    for (ResourceId r = 0; r < state.num_resources(); ++r) {
      if (r == current) continue;
      if (instance.quality(r, state.load(r) + 1) > own) return false;
    }
  }
  return true;
}

}  // namespace qoslb
