#pragma once

#include "core/protocol.hpp"

namespace qoslb {

/// P2 — concurrent uniform sampling: in every round each unsatisfied user
/// probes `probes_per_round` resources uniformly at random, picks the best
/// satisfying one (judged against the loads observed at the round start),
/// and migrates there with probability `migrate_prob` (λ).
///
/// λ = 1 exhibits the herding anomaly the paper's damping analysis targets:
/// many users jump onto the same almost-free resource and overshoot its
/// capacity, so the system can oscillate (E5 demonstrates this). λ < 1
/// thins the herd; the adaptive and admission variants remove it entirely.
class UniformSampling : public Protocol {
 public:
  explicit UniformSampling(double migrate_prob = 1.0, int probes_per_round = 1);

  std::string name() const override;

  bool supports_step_users() const override { return true; }
  bool active_set_compatible() const override { return true; }
  bool restricted_assignment_compatible() const override { return true; }

  void step_users(const State& state, const std::vector<int>& load_snapshot,
                  const UserId* users, std::size_t count, MigrationBuffer& out,
                  const RoundRng& rng, Counters& counters) override;

  double migrate_prob() const { return migrate_prob_; }
  int probes_per_round() const { return probes_; }

 private:
  double migrate_prob_;
  int probes_;
};

}  // namespace qoslb
