#pragma once

#include "core/protocol.hpp"

namespace qoslb {

/// P4 — resource-gated admission: a two-phase round. Unsatisfied users probe
/// one random resource and send a MIGRATE request where the observed load
/// would satisfy them; each resource then *grants* the longest
/// threshold-descending prefix of its requesters that keeps everyone (the
/// admitted and the currently satisfied residents) satisfied, and rejects the
/// rest. Rounds therefore never decrease the satisfied count — migration is
/// conservative, which is what buys the geometric decay of the unsatisfied
/// population (E3) at the cost of REQUEST/GRANT/REJECT messages.
class AdmissionControl : public Protocol {
 public:
  explicit AdmissionControl(int probes_per_round = 1);

  std::string name() const override;

  bool supports_step_users() const override { return true; }
  bool active_set_compatible() const override { return true; }
  bool restricted_assignment_compatible() const override { return true; }

  void step_users(const State& state, const std::vector<int>& load_snapshot,
                  const UserId* users, std::size_t count, MigrationBuffer& out,
                  const RoundRng& rng, Counters& counters) override;

  /// The admission gate needs every requester of a resource at once, so the
  /// commit merges the shard buffers (shard order = ascending user id)
  /// before the per-resource grant scan.
  void commit_round(State& state, std::vector<MigrationBuffer>& shards,
                    Counters& counters) override;

 private:
  int probes_;
  /// Commit-phase merge scratch, capacity reused across rounds (commit is
  /// always sequential, so a member is race-free).
  std::vector<MigrationRequest> merge_scratch_;
};

}  // namespace qoslb
