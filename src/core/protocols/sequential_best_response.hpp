#pragma once

#include "core/protocol.hpp"

namespace qoslb {

/// P1 — sequential best-response baseline: one unsatisfied user per step
/// moves to its best satisfying deviation (highest post-move quality).
/// This is the classical centralized-scheduler dynamic the distributed
/// protocols are measured against (E9); a step costs a full O(m) probe scan.
class SequentialBestResponse : public Protocol {
 public:
  enum class Order {
    kRandom,      // a uniformly random unsatisfied mover each step
    kRoundRobin,  // cyclic scan over user ids
  };

  explicit SequentialBestResponse(Order order = Order::kRandom)
      : order_(order) {}

  std::string name() const override {
    return order_ == Order::kRandom ? "seq-br" : "seq-br-rr";
  }

  void step(State& state, Xoshiro256& rng, Counters& counters) override;

  /// The deviation scan is threshold-gated (threshold 0 on every
  /// unreachable pair), so no sampling helper is needed.
  bool restricted_assignment_compatible() const override { return true; }

  void reset() override { cursor_ = 0; }

 private:
  Order order_;
  UserId cursor_ = 0;
};

}  // namespace qoslb
