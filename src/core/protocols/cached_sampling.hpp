#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"

namespace qoslb {

/// Stale-information ablation (E17): identical to UniformSampling except
/// that users consult a shared load cache (think: piggybacked gossip or a
/// periodically refreshed bulletin board) and only pay for a fresh PROBE
/// when the cached entry is older than `ttl` rounds. With ttl = 0 an entry
/// is refreshed at most once per round and shared by every user that samples
/// the resource in that round (a round bulletin board) — already cheaper in
/// messages than per-user probing. Larger ttl trades messages for
/// staleness: decisions made on outdated "free" signals herd onto resources
/// that already filled up, so convergence slows and can stall — the
/// freshness/cost trade-off quantified by bench/e17_probe_cache.
class CachedSampling : public Protocol {
 public:
  CachedSampling(double migrate_prob, std::uint32_t ttl_rounds);

  std::string name() const override;

  void step(State& state, Xoshiro256& rng, Counters& counters) override;

  void reset() override {
    cached_load_.clear();
    cached_at_.clear();
    round_ = 0;
  }

  std::uint32_t ttl() const { return ttl_; }

 private:
  double migrate_prob_;
  std::uint32_t ttl_;
  std::uint64_t round_ = 0;
  std::vector<int> cached_load_;
  std::vector<std::uint64_t> cached_at_;  // round of the last refresh, per resource
};

}  // namespace qoslb
