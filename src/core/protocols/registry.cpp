#include "core/protocols/registry.hpp"

#include <functional>
#include <stdexcept>

#include "core/parallel/parallel_sampling.hpp"
#include "core/protocols/adaptive_sampling.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/berenbrink.hpp"
#include "core/protocols/cached_sampling.hpp"
#include "core/protocols/neighborhood_sampling.hpp"
#include "core/protocols/sequential_best_response.hpp"
#include "core/protocols/uniform_sampling.hpp"

namespace qoslb {

namespace {

struct Entry {
  ProtocolInfo info;
  std::function<std::unique_ptr<Protocol>(const ProtocolSpec&)> build;
};

NeighborhoodSampling::Commit commit_for(const std::string& kind) {
  return kind == "nbr-admission" ? NeighborhoodSampling::Commit::kAdmission
                                 : NeighborhoodSampling::Commit::kOptimistic;
}

std::unique_ptr<Protocol> make_neighborhood(const ProtocolSpec& spec) {
  if (spec.graph == nullptr)
    throw std::invalid_argument("protocol kind '" + spec.kind +
                                "' needs a resource graph");
  return std::make_unique<NeighborhoodSampling>(*spec.graph,
                                                commit_for(spec.kind),
                                                spec.lambda, spec.probes);
}

const std::vector<Entry>& entries() {
  static const std::vector<Entry> kEntries = {
      {{"seq-br", "sequential best response, random user order (P1)",
        /*active_set=*/false, /*restricted=*/true},
       [](const ProtocolSpec&) {
         return std::make_unique<SequentialBestResponse>(
             SequentialBestResponse::Order::kRandom);
       }},
      {{"seq-br-rr", "sequential best response, round-robin user order",
        /*active_set=*/false, /*restricted=*/true},
       [](const ProtocolSpec&) {
         return std::make_unique<SequentialBestResponse>(
             SequentialBestResponse::Order::kRoundRobin);
       }},
      {{"uniform",
        "uniform sampling with lambda-damped optimistic migration (P2)",
        /*active_set=*/true, /*restricted=*/true},
       [](const ProtocolSpec& spec) {
         return std::make_unique<UniformSampling>(spec.lambda, spec.probes);
       }},
      {{"adaptive",
        "contention-adaptive migration probability slack/intents (P3)",
        /*active_set=*/true, /*restricted=*/true},
       [](const ProtocolSpec& spec) {
         return std::make_unique<AdaptiveSampling>(spec.probes);
       }},
      {{"admission",
        "resource-gated admission: REQUEST/GRANT commit, monotone (P4)",
        /*active_set=*/true, /*restricted=*/true},
       [](const ProtocolSpec& spec) {
         return std::make_unique<AdmissionControl>(spec.probes);
       }},
      {{"nbr-uniform",
        "neighborhood-restricted optimistic sampling on a resource graph (P5)",
        /*active_set=*/true, /*restricted=*/true},
       make_neighborhood},
      {{"nbr-admission",
        "neighborhood-restricted sampling with admission commit (P5)",
        /*active_set=*/true, /*restricted=*/true},
       make_neighborhood},
      // Deliberately dense-only (qoslb-lint QL004 checks the pairing):
      // every user — satisfied or not — probes and may move each round, so
      // the active-set precondition (satisfied users draw no randomness)
      // does not hold; see berenbrink.hpp.
      {{"berenbrink",
        "classic selfish load balancing, QoS-oblivious baseline (P6)",
        /*active_set=*/false, /*restricted=*/true},
       [](const ProtocolSpec&) {
         return std::make_unique<BerenbrinkBalancing>();
       }},
      // Deliberately not restricted-assignment-compatible (QL009): the TTL
      // cache samples raw resource ids and would need a per-user cache walk.
      {{"cached",
        "uniform sampling against a shared load cache with ttl rounds (E17)",
        /*active_set=*/false, /*restricted=*/false},
       [](const ProtocolSpec& spec) {
         return std::make_unique<CachedSampling>(spec.lambda, spec.ttl);
       }},
      // Deliberately not restricted-assignment-compatible (QL009): the
      // sequential-protocol shard merge keys its own substreams and predates
      // the reachable-set helper; use "uniform" with engine threads instead.
      {{"par-uniform",
        "thread-parallel uniform sampling, Philox per-user substreams",
        /*active_set=*/false, /*restricted=*/false},
       [](const ProtocolSpec& spec) {
         return std::make_unique<ParallelUniformSampling>(
             spec.lambda, spec.seed, spec.threads);
       }},
  };
  return kEntries;
}

}  // namespace

const std::vector<ProtocolInfo>& protocol_registry() {
  static const std::vector<ProtocolInfo> kInfos = [] {
    std::vector<ProtocolInfo> infos;
    infos.reserve(entries().size());
    for (const Entry& entry : entries()) infos.push_back(entry.info);
    return infos;
  }();
  return kInfos;
}

std::vector<std::string> protocol_kinds() {
  std::vector<std::string> kinds;
  kinds.reserve(entries().size());
  for (const Entry& entry : entries()) kinds.push_back(entry.info.name);
  return kinds;
}

std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec) {
  for (const Entry& entry : entries())
    if (entry.info.name == spec.kind) return entry.build(spec);
  throw std::invalid_argument("unknown protocol kind '" + spec.kind + "'");
}

}  // namespace qoslb
