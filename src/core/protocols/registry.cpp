#include "core/protocols/registry.hpp"

#include <stdexcept>

#include "core/protocols/adaptive_sampling.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/berenbrink.hpp"
#include "core/protocols/neighborhood_sampling.hpp"
#include "core/protocols/sequential_best_response.hpp"
#include "core/protocols/uniform_sampling.hpp"

namespace qoslb {

std::vector<std::string> protocol_kinds() {
  return {"seq-br",    "seq-br-rr", "uniform",       "adaptive",
          "admission", "nbr-uniform", "nbr-admission", "berenbrink"};
}

std::unique_ptr<Protocol> make_protocol(const ProtocolSpec& spec) {
  if (spec.kind == "seq-br")
    return std::make_unique<SequentialBestResponse>(
        SequentialBestResponse::Order::kRandom);
  if (spec.kind == "seq-br-rr")
    return std::make_unique<SequentialBestResponse>(
        SequentialBestResponse::Order::kRoundRobin);
  if (spec.kind == "uniform")
    return std::make_unique<UniformSampling>(spec.lambda, spec.probes);
  if (spec.kind == "adaptive")
    return std::make_unique<AdaptiveSampling>(spec.probes);
  if (spec.kind == "admission")
    return std::make_unique<AdmissionControl>(spec.probes);
  if (spec.kind == "nbr-uniform" || spec.kind == "nbr-admission") {
    if (spec.graph == nullptr)
      throw std::invalid_argument("protocol kind '" + spec.kind +
                                  "' needs a resource graph");
    const auto commit = spec.kind == "nbr-admission"
                            ? NeighborhoodSampling::Commit::kAdmission
                            : NeighborhoodSampling::Commit::kOptimistic;
    return std::make_unique<NeighborhoodSampling>(*spec.graph, commit,
                                                  spec.lambda, spec.probes);
  }
  if (spec.kind == "berenbrink") return std::make_unique<BerenbrinkBalancing>();
  throw std::invalid_argument("unknown protocol kind '" + spec.kind + "'");
}

}  // namespace qoslb
