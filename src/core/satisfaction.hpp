#pragma once

#include <vector>

#include "core/state.hpp"

namespace qoslb {

/// Satisfaction-equilibrium predicates (Definition in DESIGN.md §1): a user
/// has a *satisfying deviation* if some other resource would satisfy it after
/// the move; a state is a satisfaction equilibrium iff no unsatisfied user
/// has a satisfying deviation.

/// Would user u be satisfied on resource r after moving there? Counts u in
/// the destination load; true for r == current iff u is currently satisfied.
bool satisfied_after_move(const State& state, UserId u, ResourceId r);

/// O(m) scan over all resources.
bool has_satisfying_deviation(const State& state, UserId u);

/// The satisfying deviation with the highest post-move quality, or
/// kNoResource. Ties break toward the lowest resource id.
ResourceId best_satisfying_deviation(const State& state, UserId u);

/// True iff every user is satisfied or deviation-free. Uses an O(n + m)
/// fast path for identical capacities (only the two smallest loads matter)
/// and an O(n·m) scan otherwise.
bool is_satisfaction_equilibrium(const State& state);

/// All users currently unsatisfied, ascending id.
std::vector<UserId> unsatisfied_users(const State& state);

}  // namespace qoslb
