#include "core/snapshot.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/protocol.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("qoslb snapshot: " + message);
}

/// Next non-empty, non-comment line; throws at EOF.
std::string next_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    return std::string(trimmed);
  }
  fail(std::string("unexpected end of input while reading ") + what);
}

std::uint64_t read_named_u64(std::istream& in, const std::string& keyword) {
  const std::string line = next_line(in, keyword.c_str());
  std::istringstream parts(line);
  std::string word;
  std::uint64_t value = 0;
  if (!(parts >> word >> value) || word != keyword)
    fail("expected '" + keyword + " <value>', got '" + line + "'");
  std::string extra;
  if (parts >> extra) fail("trailing garbage on '" + line + "'");
  return value;
}

std::size_t read_count(std::istream& in, const std::string& keyword) {
  return static_cast<std::size_t>(read_named_u64(in, keyword));
}

double read_named_double(std::istream& in, const std::string& keyword) {
  const std::string line = next_line(in, keyword.c_str());
  std::istringstream parts(line);
  std::string word, number;
  if (!(parts >> word >> number) || word != keyword)
    fail("expected '" + keyword + " <value>', got '" + line + "'");
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    fail("bad number on '" + line + "'");
  }
  if (consumed != number.size()) fail("trailing garbage on '" + line + "'");
  return value;
}

double read_double(std::istream& in, const char* what) {
  const std::string line = next_line(in, what);
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(line, &consumed);
  } catch (const std::exception&) {
    fail(std::string("bad number for ") + what + ": '" + line + "'");
  }
  if (consumed != line.size())
    fail(std::string("trailing garbage after ") + what + ": '" + line + "'");
  return value;
}

std::uint64_t read_u64(std::istream& in, const char* what) {
  const std::string line = next_line(in, what);
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(line, &consumed);
  } catch (const std::exception&) {
    fail(std::string("bad integer for ") + what + ": '" + line + "'");
  }
  if (consumed != line.size())
    fail(std::string("trailing garbage after ") + what + ": '" + line + "'");
  return value;
}

bool read_named_bool(std::istream& in, const std::string& keyword) {
  const std::uint64_t value = read_named_u64(in, keyword);
  if (value > 1) fail("boolean field '" + keyword + "' must be 0 or 1");
  return value != 0;
}

constexpr char kMagicV1[] = "qoslb-snapshot v1";
constexpr char kMagicV2[] = "qoslb-snapshot v2";

}  // namespace

void write_snapshot(std::ostream& out, const SnapshotV1& snapshot) {
  const auto previous = out.precision(std::numeric_limits<double>::max_digits10);
  out << kMagicV2 << '\n';
  out << "protocol " << snapshot.protocol << '\n';
  out << "next_round " << snapshot.next_round << '\n';
  out << "master_seed " << snapshot.master_seed << '\n';
  out << "resources " << snapshot.capacities.size() << '\n';
  for (const double capacity : snapshot.capacities) out << capacity << '\n';
  out << "users " << snapshot.requirements.size() << '\n';
  for (const double requirement : snapshot.requirements)
    out << requirement << '\n';
  const RateModel& rates = snapshot.rate_model;
  switch (rates.kind()) {
    case RateModelKind::kUniform:
      out << "rate_model " << "uniform" << '\n';
      break;
    case RateModelKind::kMatrix:
      out << "rate_model " << "matrix" << '\n';
      out << "rates " << rates.matrix_rates().size() << '\n';
      for (const double rate : rates.matrix_rates()) out << rate << '\n';
      break;
    case RateModelKind::kBipartite: {
      out << "rate_model " << "bipartite" << '\n';
      const std::vector<RateEdge> edges = rates.edges();
      out << "edges " << edges.size() << '\n';
      for (const RateEdge& e : edges)
        out << e.user << ' ' << e.resource << ' ' << e.rate << '\n';
      break;
    }
  }
  out << "assignment " << snapshot.assignment.size() << '\n';
  for (const ResourceId r : snapshot.assignment) out << r << '\n';
  out << "live " << snapshot.live.size() << '\n';
  for (const std::uint8_t bit : snapshot.live)
    out << static_cast<int>(bit) << '\n';
  const Counters& c = snapshot.counters;
  out << "counters " << 10 << '\n';
  out << "probes " << c.probes << '\n';
  out << "migrate_requests " << c.migrate_requests << '\n';
  out << "grants " << c.grants << '\n';
  out << "rejects " << c.rejects << '\n';
  out << "migrations " << c.migrations << '\n';
  out << "rounds " << c.rounds << '\n';
  out << "events " << c.events << '\n';
  out << "timeouts " << c.timeouts << '\n';
  out << "retries " << c.retries << '\n';
  out << "stale_drops " << c.stale_drops << '\n';
  const ChurnTracker& t = snapshot.churn;
  out << "churn " << 10 << '\n';
  out << "failures " << t.stats.failures << '\n';
  out << "recoveries " << t.stats.recoveries << '\n';
  out << "evicted " << t.stats.evicted << '\n';
  out << "max_dip_depth " << t.stats.max_dip_depth << '\n';
  out << "max_recovery_rounds " << t.stats.max_recovery_rounds << '\n';
  out << "dip_open " << (t.stats.dip_open ? 1 : 0) << '\n';
  out << "in_dip " << (t.in_dip ? 1 : 0) << '\n';
  out << "dip_start_round " << t.dip_start_round << '\n';
  out << "baseline_satisfied " << t.baseline_satisfied << '\n';
  out << "min_satisfied " << t.min_satisfied << '\n';
  std::size_t state_lines = 0;
  for (const char ch : snapshot.protocol_state)
    if (ch == '\n') ++state_lines;
  out << "protocol_state " << state_lines << '\n';
  out << snapshot.protocol_state;
  out.precision(previous);
}

SnapshotV1 read_snapshot(std::istream& in) {
  const std::string magic = next_line(in, "the format magic");
  if (magic != kMagicV1 && magic != kMagicV2)
    fail("unsupported format version '" + magic + "' (expected '" +
         kMagicV1 + "' or '" + kMagicV2 + "')");
  const bool v2 = magic == kMagicV2;
  SnapshotV1 snapshot;
  const std::string protocol_line = next_line(in, "the protocol name");
  const std::string protocol_keyword = "protocol ";
  if (protocol_line.rfind(protocol_keyword, 0) != 0)
    fail("expected 'protocol <name>', got '" + protocol_line + "'");
  snapshot.protocol = protocol_line.substr(protocol_keyword.size());
  if (snapshot.protocol.empty()) fail("empty protocol name");
  snapshot.next_round = read_named_u64(in, "next_round");
  snapshot.master_seed = read_named_u64(in, "master_seed");
  const std::size_t m = read_count(in, "resources");
  snapshot.capacities.resize(m);
  for (auto& capacity : snapshot.capacities)
    capacity = read_double(in, "capacity value");
  const std::size_t n = read_count(in, "users");
  snapshot.requirements.resize(n);
  for (auto& requirement : snapshot.requirements)
    requirement = read_double(in, "requirement value");
  if (v2) {
    // v1 predates the rate-model block; its absence means uniform rates.
    const std::string kind_line = next_line(in, "the rate model kind");
    std::istringstream kind_parts(kind_line);
    std::string word, kind;
    if (!(kind_parts >> word >> kind) || word != "rate_model")
      fail("expected 'rate_model <kind>', got '" + kind_line + "'");
    if (kind == "uniform") {
      snapshot.rate_model = RateModel::uniform();
    } else if (kind == "matrix") {
      const std::size_t values = read_count(in, "rates");
      if (values != n * m)
        fail("rates block lists " + std::to_string(values) + " values for a " +
             std::to_string(n) + " x " + std::to_string(m) + " instance");
      std::vector<double> rate_values(values);
      for (auto& rate : rate_values) rate = read_double(in, "rate value");
      try {
        snapshot.rate_model = RateModel::matrix(n, m, std::move(rate_values));
      } catch (const std::invalid_argument& error) {
        fail(std::string("invalid rate matrix: ") + error.what());
      }
    } else if (kind == "bipartite") {
      const std::size_t edge_count = read_count(in, "edges");
      std::vector<RateEdge> edge_list(edge_count);
      for (auto& edge : edge_list) {
        const std::string line = next_line(in, "an access-graph edge");
        std::istringstream parts(line);
        std::uint64_t user = 0;
        std::uint64_t resource = 0;
        double rate = 0.0;
        std::string extra;
        if (!(parts >> user >> resource >> rate) || (parts >> extra))
          fail("expected '<user> <resource> <rate>', got '" + line + "'");
        if (user >= n || resource >= m)
          fail("edge endpoint out of range on '" + line + "'");
        edge = {static_cast<UserId>(user), static_cast<ResourceId>(resource),
                rate};
      }
      try {
        snapshot.rate_model =
            RateModel::bipartite(n, m, std::move(edge_list));
      } catch (const std::invalid_argument& error) {
        fail(std::string("invalid access graph: ") + error.what());
      }
    } else {
      fail("unknown rate model kind '" + kind + "'");
    }
  }
  const std::size_t assigned = read_count(in, "assignment");
  if (assigned != n)
    fail("assignment block covers " + std::to_string(assigned) + " of " +
         std::to_string(n) + " users");
  snapshot.assignment.resize(n);
  for (auto& r : snapshot.assignment) {
    const std::uint64_t id = read_u64(in, "assignment entry");
    if (id >= m) fail("assignment entry " + std::to_string(id) + " out of range");
    r = static_cast<ResourceId>(id);
  }
  const std::size_t live_bits = read_count(in, "live");
  if (live_bits != m)
    fail("live block covers " + std::to_string(live_bits) + " of " +
         std::to_string(m) + " resources");
  snapshot.live.resize(m);
  for (auto& bit : snapshot.live) {
    const std::uint64_t value = read_u64(in, "live bit");
    if (value > 1) fail("live bit must be 0 or 1");
    bit = static_cast<std::uint8_t>(value);
  }
  const std::size_t counter_fields = read_count(in, "counters");
  if (counter_fields != 10)
    fail("counters block must list exactly 10 fields");
  Counters& c = snapshot.counters;
  c.probes = read_named_u64(in, "probes");
  c.migrate_requests = read_named_u64(in, "migrate_requests");
  c.grants = read_named_u64(in, "grants");
  c.rejects = read_named_u64(in, "rejects");
  c.migrations = read_named_u64(in, "migrations");
  c.rounds = read_named_u64(in, "rounds");
  c.events = read_named_u64(in, "events");
  c.timeouts = read_named_u64(in, "timeouts");
  c.retries = read_named_u64(in, "retries");
  c.stale_drops = read_named_u64(in, "stale_drops");
  const std::size_t churn_fields = read_count(in, "churn");
  if (churn_fields != 10) fail("churn block must list exactly 10 fields");
  ChurnTracker& t = snapshot.churn;
  t.stats.failures = read_named_u64(in, "failures");
  t.stats.recoveries = read_named_u64(in, "recoveries");
  t.stats.evicted = read_named_u64(in, "evicted");
  t.stats.max_dip_depth = read_named_double(in, "max_dip_depth");
  t.stats.max_recovery_rounds = read_named_u64(in, "max_recovery_rounds");
  t.stats.dip_open = read_named_bool(in, "dip_open");
  t.in_dip = read_named_bool(in, "in_dip");
  t.dip_start_round = read_named_u64(in, "dip_start_round");
  t.baseline_satisfied = read_named_u64(in, "baseline_satisfied");
  t.min_satisfied = read_named_u64(in, "min_satisfied");
  const std::size_t state_lines = read_count(in, "protocol_state");
  snapshot.protocol_state.clear();
  for (std::size_t i = 0; i < state_lines; ++i) {
    // Verbatim payload: raw getline, no blank/comment skipping.
    std::string line;
    if (!std::getline(in, line)) fail("truncated protocol state block");
    snapshot.protocol_state += line;
    snapshot.protocol_state += '\n';
  }
  return snapshot;
}

Instance SnapshotV1::make_instance() const {
  try {
    if (rate_model.is_uniform()) return Instance(capacities, requirements);
    return Instance(capacities, requirements, rate_model);
  } catch (const std::invalid_argument& error) {
    fail(std::string("invalid instance data: ") + error.what());
  }
}

State SnapshotV1::make_state(const Instance& instance) const {
  QOSLB_REQUIRE(instance.num_resources() == capacities.size() &&
                    instance.num_users() == requirements.size(),
                "instance does not match the checkpoint dimensions");
  for (const ResourceId r : assignment)
    QOSLB_REQUIRE(r < live.size() && live[r] != 0,
                  "checkpointed user resides on a dead resource");
  State state(instance, assignment);
  for (ResourceId r = 0; r < live.size(); ++r)
    if (live[r] == 0) state.set_resource_live(r, false);
  return state;
}

SnapshotV1 capture_snapshot(const Protocol& protocol, const State& state,
                            std::uint64_t master_seed,
                            std::uint64_t next_round, const Counters& counters,
                            const ChurnTracker& churn) {
  SnapshotV1 snapshot;
  snapshot.protocol = protocol.name();
  snapshot.next_round = next_round;
  snapshot.master_seed = master_seed;
  const Instance& instance = state.instance();
  snapshot.capacities.reserve(instance.num_resources());
  for (ResourceId r = 0; r < instance.num_resources(); ++r)
    snapshot.capacities.push_back(instance.capacity(r));
  snapshot.requirements.reserve(instance.num_users());
  for (UserId u = 0; u < instance.num_users(); ++u)
    snapshot.requirements.push_back(instance.requirement(u));
  snapshot.rate_model = instance.rate_model();
  snapshot.assignment.reserve(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    snapshot.assignment.push_back(state.resource_of(u));
  snapshot.live.reserve(state.num_resources());
  for (ResourceId r = 0; r < state.num_resources(); ++r)
    snapshot.live.push_back(state.resource_live(r) ? 1 : 0);
  snapshot.counters = counters;
  snapshot.churn = churn;
  std::ostringstream protocol_state;
  protocol.snapshot_write(protocol_state);
  snapshot.protocol_state = protocol_state.str();
  QOSLB_CHECK(snapshot.protocol_state.empty() ||
                  snapshot.protocol_state.back() == '\n',
              "protocol snapshot state must be newline-terminated");
  return snapshot;
}

std::uint64_t state_hash(const State& state) {
  std::uint64_t h = mix64(0xC0DE'5EED'5EED'C0DEULL);
  h = mix64(h ^ state.num_users());
  h = mix64(h ^ state.num_resources());
  for (UserId u = 0; u < state.num_users(); ++u)
    h = mix64(h ^ (state.resource_of(u) + 0x9E3779B97F4A7C15ULL));
  for (ResourceId r = 0; r < state.num_resources(); ++r)
    h = mix64(h ^ (state.resource_live(r) ? 2 : 1));
  return h;
}

}  // namespace qoslb
