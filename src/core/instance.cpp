#include "core/instance.hpp"

#include <cmath>

#include "util/check.hpp"

namespace qoslb {
namespace {

// Tolerance for the threshold floor: capacities and requirements are often
// constructed as ratios (q = s / T), where floating-point rounding can land
// s/q infinitesimally below the intended integer.
constexpr double kFloorEpsilon = 1e-9;

}  // namespace

Instance::Instance(std::vector<double> capacities, std::vector<double> requirements)
    : Instance(std::move(capacities), std::move(requirements), RateModel()) {}

Instance::Instance(std::vector<double> capacities,
                   std::vector<double> requirements, RateModel rates)
    : capacities_(std::move(capacities)),
      requirements_(std::move(requirements)),
      rates_(std::move(rates)) {
  QOSLB_REQUIRE(!capacities_.empty(), "instance needs at least one resource");
  QOSLB_REQUIRE(!requirements_.empty(), "instance needs at least one user");
  for (const double s : capacities_) {
    QOSLB_REQUIRE(std::isfinite(s) && s > 0.0, "capacities must be positive");
    if (s != capacities_.front()) identical_ = false;
  }
  inv_requirements_.reserve(requirements_.size());
  for (const double q : requirements_) {
    QOSLB_REQUIRE(std::isfinite(q) && q > 0.0, "requirements must be positive");
    inv_requirements_.push_back(1.0 / q);
  }
  // The RateModel validated its own shape (no empty reachable sets); here
  // only the dimensions need to agree with the scalar vectors.
  QOSLB_REQUIRE(rates_.is_uniform() ||
                    (rates_.num_users() == requirements_.size() &&
                     rates_.num_resources() == capacities_.size()),
                "rate model dimensions must match the instance");
  if (identical_ && rates_.is_uniform()) {
    // threshold(u, r) does not depend on r: precompute the per-user table
    // with the exact arithmetic of threshold() so lookups are bit-identical.
    flat_thresholds_.reserve(requirements_.size());
    const double cap = static_cast<double>(num_users());
    for (const double inv_q : inv_requirements_) {
      const double floored =
          std::floor(capacities_.front() * inv_q + kFloorEpsilon);
      flat_thresholds_.push_back(static_cast<int>(std::min(floored, cap)));
    }
  }
}

Instance Instance::identical(std::size_t m_resources, double capacity,
                             std::vector<double> requirements) {
  QOSLB_REQUIRE(m_resources >= 1, "need at least one resource");
  return Instance(std::vector<double>(m_resources, capacity), std::move(requirements));
}

double Instance::capacity(ResourceId r) const {
  QOSLB_REQUIRE(r < capacities_.size(), "resource out of range");
  return capacities_[r];
}

double Instance::requirement(UserId u) const {
  QOSLB_REQUIRE(u < requirements_.size(), "user out of range");
  return requirements_[u];
}

double Instance::quality(ResourceId r, int load) const {
  QOSLB_REQUIRE(load >= 1, "quality defined for load >= 1");
  return capacity(r) / static_cast<double>(load);
}

double Instance::quality(UserId u, ResourceId r, int load) const {
  QOSLB_REQUIRE(load >= 1, "quality defined for load >= 1");
  return rates_.rate(u, r) * capacity(r) / static_cast<double>(load);
}

int Instance::threshold(UserId u, ResourceId r) const {
  QOSLB_REQUIRE(u < requirements_.size(), "user out of range");
  QOSLB_REQUIRE(r < capacities_.size(), "resource out of range");
  if (!flat_thresholds_.empty()) return flat_thresholds_[u];
  double ratio = capacities_[r] * inv_requirements_[u];
  if (!rates_.is_uniform()) {
    const double rate = rates_.rate(u, r);
    if (rate == 0.0) return 0;
    ratio *= rate;
  }
  const double floored = std::floor(ratio + kFloorEpsilon);
  const double cap = static_cast<double>(num_users());
  return static_cast<int>(std::min(floored, cap));
}

}  // namespace qoslb
