#include "core/dynamics/hybrid.hpp"

#include "core/dynamics/quality_game.hpp"
#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

HybridEpsilonGreedy::HybridEpsilonGreedy(double migrate_prob, double epsilon)
    : migrate_prob_(migrate_prob), epsilon_(epsilon) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
  QOSLB_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon in [0,1]");
}

std::string HybridEpsilonGreedy::name() const {
  return "hybrid(lambda=" + format_double(migrate_prob_, 3) +
         ",eps=" + format_double(epsilon_, 3) + ")";
}

void HybridEpsilonGreedy::step(State& state, Xoshiro256& rng,
                               Counters& counters) {
  const Instance& instance = state.instance();
  const std::vector<int> snapshot = state.loads();

  std::vector<MigrationRequest> moves;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    const bool satisfied = snapshot[current] <= instance.threshold(u, current);

    if (!satisfied) {
      // Satisfaction phase: one probe, damped commit.
      const auto r = static_cast<ResourceId>(
          uniform_u64_below(rng, state.num_resources()));
      ++counters.probes;
      if (r == current) continue;
      if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
      if (bernoulli(rng, migrate_prob_)) moves.push_back(MigrationRequest{u, r});
      continue;
    }

    // Quality phase: satisfied users polish with probability ε.
    if (epsilon_ == 0.0 || !bernoulli(rng, epsilon_)) continue;
    const auto r = static_cast<ResourceId>(
        uniform_u64_below(rng, state.num_resources()));
    ++counters.probes;
    if (r == current) continue;
    const double src =
        static_cast<double>(snapshot[current]) / instance.capacity(current);
    const double dst =
        static_cast<double>(snapshot[r] + 1) / instance.capacity(r);
    if (dst >= src) continue;
    // The quality move must not break the mover's own satisfaction (it
    // cannot: better quality implies a lower relative load), but it is still
    // gated by the improvement coin to avoid herding.
    if (bernoulli(rng, 1.0 - dst / src)) moves.push_back(MigrationRequest{u, r});
  }
  apply_all(state, moves, counters);
}

bool HybridEpsilonGreedy::is_stable(const State& state) const {
  if (epsilon_ == 0.0) return is_satisfaction_equilibrium(state);
  return is_quality_nash(state);
}

}  // namespace qoslb
