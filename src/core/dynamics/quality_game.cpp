#include "core/dynamics/quality_game.hpp"

#include "rng/distributions.hpp"

namespace qoslb {
namespace {

// Strict improvement needs a margin: qualities are capacity ratios and exact
// float ties (identical capacities, equal loads) must not count as moves.
constexpr double kStrictMargin = 1e-12;

double post_move_quality(const State& state, UserId u, ResourceId r) {
  const Instance& instance = state.instance();
  const int post_load =
      state.resource_of(u) == r ? state.load(r) : state.load(r) + 1;
  return instance.quality(r, post_load);
}

}  // namespace

ResourceId best_quality_deviation(const State& state, UserId u) {
  const ResourceId current = state.resource_of(u);
  const double own = state.quality_of(u);
  ResourceId best = kNoResource;
  double best_quality = own;
  for (ResourceId r = 0; r < state.num_resources(); ++r) {
    if (r == current) continue;
    const double quality = post_move_quality(state, u, r);
    if (quality > best_quality + kStrictMargin) {
      best = r;
      best_quality = quality;
    }
  }
  return best;
}

bool is_quality_nash(const State& state) {
  for (UserId u = 0; u < state.num_users(); ++u)
    if (best_quality_deviation(state, u) != kNoResource) return false;
  return true;
}

void QualityBestResponse::step(State& state, Xoshiro256& rng,
                               Counters& counters) {
  if (order_ == Order::kRandom) {
    // Sample users until one can improve (bounded by n attempts).
    for (std::size_t attempt = 0; attempt < state.num_users(); ++attempt) {
      const auto u = static_cast<UserId>(
          uniform_u64_below(rng, state.num_users()));
      counters.probes += state.num_resources();
      const ResourceId target = best_quality_deviation(state, u);
      if (target != kNoResource) {
        state.move(u, target);
        ++counters.migrations;
        return;
      }
    }
    return;
  }
  for (std::size_t scanned = 0; scanned < state.num_users(); ++scanned) {
    const UserId u = cursor_;
    cursor_ = static_cast<UserId>((cursor_ + 1) % state.num_users());
    counters.probes += state.num_resources();
    const ResourceId target = best_quality_deviation(state, u);
    if (target != kNoResource) {
      state.move(u, target);
      ++counters.migrations;
      return;
    }
  }
}

void QualitySampling::step(State& state, Xoshiro256& rng, Counters& counters) {
  const Instance& instance = state.instance();
  const std::vector<int> snapshot = state.loads();

  struct Move {
    UserId user;
    ResourceId target;
  };
  std::vector<Move> moves;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId current = state.resource_of(u);
    const auto r = static_cast<ResourceId>(
        uniform_u64_below(rng, state.num_resources()));
    ++counters.probes;
    if (r == current) continue;
    // Normalized loads: identical capacities reduce to the original integer
    // Berenbrink rule; related capacities compare per-unit shares.
    const double src =
        static_cast<double>(snapshot[current]) / instance.capacity(current);
    const double dst =
        static_cast<double>(snapshot[r] + 1) / instance.capacity(r);
    if (dst + kStrictMargin >= src) continue;
    if (bernoulli(rng, 1.0 - dst / src)) moves.push_back(Move{u, r});
  }
  for (const Move& move : moves) {
    state.move(move.user, move.target);
    ++counters.migrations;
  }
}

}  // namespace qoslb
