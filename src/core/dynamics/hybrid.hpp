#pragma once

#include "core/protocol.hpp"

namespace qoslb {

/// ε-greedy hybrid of the two solution concepts (E19): unsatisfied users run
/// the damped satisfaction dynamic (probe one resource, migrate with
/// probability λ when it satisfies), while *satisfied* users, with small
/// probability ε per round, run one step of the quality-improvement dynamic
/// (Berenbrink-style coin on a strict improvement). ε = 0 is pure
/// satisfaction sampling (stops at "good enough"); ε → 1 approaches the
/// quality-sampling dynamic (polishes to a Nash balance). Stability is the
/// matching interpolation: satisfaction equilibrium for ε = 0, quality Nash
/// otherwise — because with any ε > 0 satisfied users keep drifting until no
/// strict improvement remains.
class HybridEpsilonGreedy : public Protocol {
 public:
  HybridEpsilonGreedy(double migrate_prob, double epsilon);

  std::string name() const override;

  void step(State& state, Xoshiro256& rng, Counters& counters) override;

  bool is_stable(const State& state) const override;

  double epsilon() const { return epsilon_; }

 private:
  double migrate_prob_;
  double epsilon_;
};

}  // namespace qoslb
