#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/state.hpp"

namespace qoslb {

/// The quality-maximization game underlying the QoS model: user utility is
/// the experienced quality s_r/ℓ_r itself (a weighted singleton congestion
/// game), not the binary satisfaction predicate. Satisfaction dynamics stop
/// at "good enough"; quality dynamics continue until no user can strictly
/// improve — a Nash equilibrium of the congestion game. This module provides
/// the Nash predicate and the classical dynamics for it, used by E14 to
/// compare the two solution concepts on the same instances.

/// True iff no user can strictly raise its quality with a unilateral move.
bool is_quality_nash(const State& state);

/// The resource offering user u the best post-move quality, excluding its
/// current one; kNoResource if every alternative is no better or equal.
ResourceId best_quality_deviation(const State& state, UserId u);

/// Sequential best-response dynamics for quality: one user per step moves to
/// its best strictly-improving resource. Stability = quality Nash. Converges
/// by Rosenthal potential descent (core/potential.hpp).
class QualityBestResponse : public Protocol {
 public:
  enum class Order { kRandom, kRoundRobin };
  explicit QualityBestResponse(Order order = Order::kRandom) : order_(order) {}

  std::string name() const override {
    return order_ == Order::kRandom ? "quality-br" : "quality-br-rr";
  }
  void step(State& state, Xoshiro256& rng, Counters& counters) override;
  bool is_stable(const State& state) const override {
    return is_quality_nash(state);
  }
  void reset() override { cursor_ = 0; }

 private:
  Order order_;
  UserId cursor_ = 0;
};

/// Concurrent quality-improvement sampling: every user probes one random
/// resource per round and migrates with probability
/// 1 − (normalized destination load)/(normalized source load) when strictly
/// better — the Berenbrink et al. rule driven by quality rather than raw
/// load (they coincide on identical capacities). Stability = quality Nash.
class QualitySampling : public Protocol {
 public:
  QualitySampling() = default;
  std::string name() const override { return "quality-sampling"; }
  void step(State& state, Xoshiro256& rng, Counters& counters) override;
  bool is_stable(const State& state) const override {
    return is_quality_nash(state);
  }
};

}  // namespace qoslb
