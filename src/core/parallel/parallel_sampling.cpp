#include "core/parallel/parallel_sampling.hpp"

#include <algorithm>
#include <vector>

#include "core/protocols/common.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {
namespace {

/// Per-user decision with Philox randomness at counter (round, user):
/// draw 0 picks the probed resource, draw 1 is the migration coin.
struct ChunkResult {
  std::vector<MigrationRequest> moves;
  std::uint64_t probes = 0;
};

ChunkResult decide_range(const State& state, const std::vector<int>& snapshot,
                         UserId begin, UserId end, std::uint64_t key,
                         double migrate_prob) {
  const Instance& instance = state.instance();
  const std::size_t m = state.num_resources();
  ChunkResult result;
  for (UserId u = begin; u < end; ++u) {
    const ResourceId current = state.resource_of(u);
    if (snapshot[current] <= instance.threshold(u, current)) continue;

    const std::uint64_t base = static_cast<std::uint64_t>(u) * 2;
    PhiloxEngine rng(key, base);
    const auto r = static_cast<ResourceId>(uniform_u64_below(rng, m));
    ++result.probes;
    if (r == current) continue;
    if (snapshot[r] + 1 > instance.threshold(u, r)) continue;
    // Fresh draw at a fixed counter so rejection sampling inside
    // uniform_u64_below cannot shift the coin's position.
    PhiloxEngine coin(key, base + 1);
    if (uniform_real(coin) < migrate_prob)
      result.moves.push_back(MigrationRequest{u, r});
  }
  return result;
}

}  // namespace

ParallelUniformSampling::ParallelUniformSampling(double migrate_prob,
                                                 std::uint64_t seed,
                                                 std::size_t threads)
    : migrate_prob_(migrate_prob), seed_(seed) {
  QOSLB_REQUIRE(migrate_prob > 0.0 && migrate_prob <= 1.0,
                "migrate_prob must be in (0,1]");
  if (threads != 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ParallelUniformSampling::~ParallelUniformSampling() = default;

std::size_t ParallelUniformSampling::threads() const {
  return pool_ ? pool_->size() : 1;
}

std::string ParallelUniformSampling::name() const {
  return "par-uniform(lambda=" + format_double(migrate_prob_, 3) +
         ",threads=" + std::to_string(threads()) + ")";
}

void ParallelUniformSampling::step(State& state, Xoshiro256& rng,
                                   Counters& counters) {
  (void)rng;  // randomness is counter-based; see the class comment
  const std::vector<int> snapshot = state.loads();
  const std::uint64_t key = mix64(seed_ ^ (round_ * 0x9E3779B97F4A7C15ULL));
  ++round_;

  const auto n = static_cast<UserId>(state.num_users());
  const std::size_t workers = threads();
  const UserId chunk = (n + static_cast<UserId>(workers) - 1) /
                       static_cast<UserId>(workers);

  std::vector<ChunkResult> results(workers);
  if (pool_) {
    pool_->parallel_for(workers, [&](std::size_t w) {
      const UserId begin = static_cast<UserId>(w) * chunk;
      const UserId end = std::min<UserId>(n, begin + chunk);
      if (begin < end)
        results[w] = decide_range(state, snapshot, begin, end, key,
                                  migrate_prob_);
    });
  } else {
    results[0] = decide_range(state, snapshot, 0, n, key, migrate_prob_);
  }

  // Merge in chunk order: user ids ascending, independent of thread timing.
  for (const ChunkResult& result : results) {
    counters.probes += result.probes;
    apply_all(state, result.moves, counters);
  }
}

}  // namespace qoslb
