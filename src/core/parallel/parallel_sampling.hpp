#pragma once

#include <cstdint>
#include <memory>

#include "core/protocol.hpp"
#include "util/thread_pool.hpp"

namespace qoslb {

/// Shared-memory-parallel uniform sampling (hpc-parallel substrate demo).
///
/// Semantically identical to UniformSampling(λ, 1 probe): in each round every
/// unsatisfied user probes one uniform resource and migrates with
/// probability λ if satisfied there. The decision phase — embarrassingly
/// parallel, since all decisions read the same round-start snapshot — fans
/// out over a ThreadPool in fixed user-range chunks.
///
/// Reproducibility is the point: each user's randomness comes from the
/// Philox counter-based generator keyed by (protocol seed, round, user), so
/// the outcome is **bit-identical for every thread count**, including the
/// serial path. The external engine passed to step() is ignored (and the
/// protocol documents that): sequential RNG state cannot be shared across
/// threads without ordering, which is exactly what counter-based streams
/// remove.
class ParallelUniformSampling : public Protocol {
 public:
  /// `threads == 0` selects hardware concurrency; `threads == 1` runs the
  /// serial reference path (no pool).
  ParallelUniformSampling(double migrate_prob, std::uint64_t seed,
                          std::size_t threads = 0);
  ~ParallelUniformSampling() override;

  std::string name() const override;

  void step(State& state, Xoshiro256& rng, Counters& counters) override;

  void reset() override { round_ = 0; }

  std::size_t threads() const;

 private:
  double migrate_prob_;
  std::uint64_t seed_;
  std::uint64_t round_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // null for the serial path
};

}  // namespace qoslb
