#include "core/churn.hpp"

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

std::vector<double> capacities_of(const Instance& instance) {
  std::vector<double> out(instance.num_resources());
  for (ResourceId r = 0; r < out.size(); ++r) out[r] = instance.capacity(r);
  return out;
}

std::vector<double> requirements_of(const Instance& instance) {
  std::vector<double> out(instance.num_users());
  for (UserId u = 0; u < out.size(); ++u) out[u] = instance.requirement(u);
  return out;
}

}  // namespace

World snapshot_world(const State& state) {
  const Instance& instance = state.instance();
  std::vector<ResourceId> assignment(instance.num_users());
  for (UserId u = 0; u < assignment.size(); ++u)
    assignment[u] = state.resource_of(u);
  return World{Instance(capacities_of(instance), requirements_of(instance)),
               std::move(assignment)};
}

World replace_users(const World& world, std::size_t count, double q_lo,
                    double q_hi, Xoshiro256& rng) {
  QOSLB_REQUIRE(q_lo > 0.0 && q_hi >= q_lo, "bad requirement range");
  const Instance& instance = world.instance;
  std::vector<double> requirements = requirements_of(instance);
  std::vector<ResourceId> assignment = world.assignment;
  for (const std::size_t u :
       sample_without_replacement(rng, instance.num_users(), count)) {
    requirements[u] = uniform_real(rng, q_lo, q_hi);
    assignment[u] = static_cast<ResourceId>(
        uniform_u64_below(rng, instance.num_resources()));
  }
  return World{Instance(capacities_of(instance), std::move(requirements)),
               std::move(assignment)};
}

World add_users(const World& world, std::size_t count, double q_lo, double q_hi,
                Xoshiro256& rng, ResourceId placement) {
  QOSLB_REQUIRE(q_lo > 0.0 && q_hi >= q_lo, "bad requirement range");
  const Instance& instance = world.instance;
  QOSLB_REQUIRE(placement == kNoResource || placement < instance.num_resources(),
                "placement out of range");
  std::vector<double> requirements = requirements_of(instance);
  std::vector<ResourceId> assignment = world.assignment;
  for (std::size_t i = 0; i < count; ++i) {
    requirements.push_back(uniform_real(rng, q_lo, q_hi));
    assignment.push_back(placement != kNoResource
                             ? placement
                             : static_cast<ResourceId>(uniform_u64_below(
                                   rng, instance.num_resources())));
  }
  return World{Instance(capacities_of(instance), std::move(requirements)),
               std::move(assignment)};
}

World remove_users(const World& world, std::size_t count, Xoshiro256& rng) {
  const Instance& instance = world.instance;
  QOSLB_REQUIRE(count < instance.num_users(), "cannot remove every user");
  std::vector<bool> removed(instance.num_users(), false);
  for (const std::size_t u :
       sample_without_replacement(rng, instance.num_users(), count))
    removed[u] = true;
  std::vector<double> requirements;
  std::vector<ResourceId> assignment;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    if (removed[u]) continue;
    requirements.push_back(instance.requirement(u));
    assignment.push_back(world.assignment[u]);
  }
  return World{Instance(capacities_of(instance), std::move(requirements)),
               std::move(assignment)};
}

World fail_resource(const World& world, ResourceId r, Xoshiro256& rng) {
  const Instance& instance = world.instance;
  if (r >= instance.num_resources())
    throw ChurnError("fail_resource: resource " + std::to_string(r) +
                     " out of range (world has " +
                     std::to_string(instance.num_resources()) + ")");
  if (instance.num_resources() < 2)
    throw ChurnError(
        "fail_resource: cannot fail the only resource — displaced users "
        "would have no surviving resource to land on");

  std::vector<double> capacities;
  for (ResourceId s = 0; s < instance.num_resources(); ++s)
    if (s != r) capacities.push_back(instance.capacity(s));

  const std::size_t survivors = capacities.size();
  std::vector<ResourceId> assignment(world.assignment.size());
  for (UserId u = 0; u < assignment.size(); ++u) {
    ResourceId placed = world.assignment[u];
    if (placed == r)
      placed = static_cast<ResourceId>(uniform_u64_below(rng, survivors));
    else if (placed > r)
      placed -= 1;  // ids above the failed resource shift down
    assignment[u] = placed;
  }
  return World{Instance(std::move(capacities), requirements_of(instance)),
               std::move(assignment)};
}

}  // namespace qoslb
