#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace qoslb {

/// Which rate structure an instance carries (docs/heterogeneity.md).
enum class RateModelKind : std::uint8_t {
  kUniform,    // rate(u, r) == 1 for every pair — the paper's base model
  kMatrix,     // dense per-(user, resource) rates; rate 0 == unreachable
  kBipartite,  // sparse access graph: only listed (u, r) edges are reachable
};

/// One access-graph edge of a bipartite rate model.
struct RateEdge {
  UserId user = 0;
  ResourceId resource = 0;
  double rate = 1.0;
};

/// Per-(user, resource) service-rate structure (the heterogeneous model of
/// Yun & Proutière): user `u` on resource `r` at occupancy `ℓ` receives
/// quality `rate(u, r) · s_r / ℓ`, so `Instance::threshold(u, r)` becomes
/// `⌊rate(u, r) · s_r / q_u⌋`. A rate of 0 means `u` cannot use `r` at all
/// ("restricted assignment"). The uniform model carries no storage and
/// keeps the base model's zero-overhead fast path.
///
/// Immutable after construction, like Instance.
class RateModel {
 public:
  /// Uniform: every rate is 1 (the default).
  RateModel() = default;
  static RateModel uniform() { return {}; }

  /// Dense row-major n×m rate matrix. Rates must be finite and ≥ 0, and
  /// every user needs at least one positive rate — an empty reachable set
  /// is rejected loudly here rather than hanging a run later.
  static RateModel matrix(std::size_t num_users, std::size_t num_resources,
                          std::vector<double> rates);

  /// Sparse bipartite access graph. Rates must be finite and > 0 (absent
  /// edges are the zeros), (user, resource) pairs unique, and every user
  /// needs at least one edge.
  static RateModel bipartite(std::size_t num_users, std::size_t num_resources,
                             std::vector<RateEdge> edges);

  RateModelKind kind() const { return kind_; }
  bool is_uniform() const { return kind_ == RateModelKind::kUniform; }

  /// Dimensions (0 for the uniform model, which fits any instance).
  std::size_t num_users() const { return num_users_; }
  std::size_t num_resources() const { return num_resources_; }

  /// True iff some user's reachable set is a proper subset of the resources
  /// (a zero matrix entry, or a bipartite user with degree < m). Sampling
  /// code gates on this: unrestricted models keep the whole-live-list draw
  /// bit-identical to the uniform model, restricted ones must draw from
  /// reachable().
  bool restricted() const { return restricted_; }

  /// rate(u, r): 1 for the uniform model, a matrix lookup, or a binary
  /// search over u's edges (0 when absent).
  double rate(UserId u, ResourceId r) const {
    if (kind_ == RateModelKind::kUniform) return 1.0;
    return rate_slow(u, r);
  }

  /// The resources user `u` can use, ascending. Available for bipartite
  /// and restricted matrix models — for the others the answer is "all of
  /// them" and no adjacency is materialized.
  std::span<const ResourceId> reachable(UserId u) const;

  // --- serialization accessors (snapshot / instance-io writers) ---
  /// kMatrix only: the n×m row-major rate values.
  const std::vector<double>& matrix_rates() const;
  /// kBipartite only: every edge, (user, resource) ascending.
  std::vector<RateEdge> edges() const;

 private:
  double rate_slow(UserId u, ResourceId r) const;

  RateModelKind kind_ = RateModelKind::kUniform;
  std::size_t num_users_ = 0;
  std::size_t num_resources_ = 0;
  bool restricted_ = false;
  std::vector<double> matrix_;            // kMatrix: n×m row-major
  std::vector<std::uint64_t> offsets_;    // CSR row offsets (n + 1 entries)
  std::vector<ResourceId> targets_;       // CSR columns, ascending per user
  std::vector<double> edge_rates_;        // kBipartite: parallel to targets_
};

}  // namespace qoslb
