#include "core/generators.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "rng/zipf.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

int balanced_load(std::size_t n, std::size_t m) {
  return static_cast<int>((n + m - 1) / m);  // ⌈n/m⌉
}

std::vector<double> thresholds_to_requirements(const std::vector<int>& thresholds) {
  std::vector<double> reqs;
  reqs.reserve(thresholds.size());
  for (const int t : thresholds) {
    QOSLB_REQUIRE(t >= 1, "threshold must be at least 1");
    reqs.push_back(1.0 / static_cast<double>(t));
  }
  return reqs;
}

}  // namespace

Instance make_uniform_feasible(std::size_t n, std::size_t m, double slack,
                               double heterogeneity, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1 && m >= 1, "need users and resources");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");
  QOSLB_REQUIRE(heterogeneity >= 1.0, "heterogeneity >= 1");
  const int load = balanced_load(n, m);
  const int t_min = static_cast<int>(
      std::ceil(static_cast<double>(load) / (1.0 - slack)));
  const int t_max = std::max(
      t_min, static_cast<int>(std::ceil(heterogeneity * t_min)));
  std::vector<int> thresholds(n);
  for (auto& t : thresholds)
    t = static_cast<int>(uniform_int(rng, t_min, t_max));
  return Instance::identical(m, 1.0, thresholds_to_requirements(thresholds));
}

Instance make_qos_classes(std::size_t m, std::size_t classes, int base_threshold,
                          double slack) {
  QOSLB_REQUIRE(m >= 1 && classes >= 1, "need resources and classes");
  QOSLB_REQUIRE(base_threshold >= 2, "base threshold too small");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");
  std::vector<int> thresholds;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t c = j % classes;
    const int t = base_threshold << c;
    const int group = std::max(
        1, static_cast<int>(std::floor(t * (1.0 - slack))));
    for (int i = 0; i < group; ++i) thresholds.push_back(t);
  }
  return Instance::identical(m, 1.0, thresholds_to_requirements(thresholds));
}

Instance make_zipf(std::size_t n, std::size_t m, double exponent, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1 && m >= 1, "need users and resources");
  const int top = std::max(2, static_cast<int>((2 * n + m - 1) / m));
  const ZipfSampler zipf(6, exponent);
  std::vector<int> thresholds(n);
  for (auto& t : thresholds) {
    const auto rank = static_cast<int>(zipf(rng));
    t = std::max(1, top >> rank);
  }
  return Instance::identical(m, 1.0, thresholds_to_requirements(thresholds));
}

Instance make_overloaded(std::size_t n, std::size_t m, double overload) {
  QOSLB_REQUIRE(overload > 1.0, "overload factor must exceed 1");
  const int t = std::max(
      1, static_cast<int>(std::floor(static_cast<double>(n) /
                                     (static_cast<double>(m) * overload))));
  return Instance::identical(m, 1.0,
                             thresholds_to_requirements(std::vector<int>(n, t)));
}

Instance make_herding(std::size_t n) {
  QOSLB_REQUIRE(n >= 5, "herding instance needs n >= 5");
  const int t = static_cast<int>(3 * n / 5);
  return Instance::identical(2, 1.0,
                             thresholds_to_requirements(std::vector<int>(n, t)));
}

Instance make_related_capacities(std::size_t n, std::size_t m, double slack,
                                 std::size_t speed_classes, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1 && m >= 1, "need users and resources");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");
  QOSLB_REQUIRE(speed_classes >= 1, "need at least one speed class");

  std::vector<double> capacities(m);
  double total_capacity = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    capacities[r] = static_cast<double>(1u << (r % speed_classes));
    total_capacity += capacities[r];
  }

  // Capacity-proportional loads (remainder on the fastest resources) give a
  // feasibility certificate: requirements are drawn low enough that every
  // user is satisfied under this assignment.
  std::vector<int> target_load(m);
  std::size_t placed = 0;
  for (std::size_t r = 0; r < m; ++r) {
    target_load[r] = static_cast<int>(
        std::floor(static_cast<double>(n) * capacities[r] / total_capacity));
    placed += static_cast<std::size_t>(target_load[r]);
  }
  std::size_t remainder = n - placed;
  while (remainder > 0) {
    const auto r = static_cast<std::size_t>(
        std::max_element(capacities.begin(), capacities.end()) -
        capacities.begin());
    // Spread the remainder round-robin over resources, weighted toward the
    // fastest first.
    for (std::size_t k = 0; k < m && remainder > 0; ++k) {
      ++target_load[(r + k) % m];
      --remainder;
    }
  }

  double q_base = capacities[0] / static_cast<double>(target_load[0] + 1);
  for (std::size_t r = 1; r < m; ++r)
    q_base = std::min(q_base,
                      capacities[r] / static_cast<double>(target_load[r] + 1));

  std::vector<double> requirements(n);
  for (auto& q : requirements)
    q = uniform_real(rng, 0.5, 1.0) * (1.0 - slack / 2.0) * q_base;
  return Instance(std::move(capacities), std::move(requirements));
}

Instance make_zipf_rates(std::size_t n, std::size_t m, double slack,
                         double exponent, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1 && m >= 1, "need users and resources");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");

  // Worst rate = 2^-(ranks-1) from the user's class, halved again by the
  // per-pair jitter; the base threshold absorbs it so floor(rate·T) ≥ L on
  // every pair and the balanced assignment stays feasible.
  constexpr int kRanks = 4;
  constexpr double kWorstRate = 1.0 / (1 << kRanks);  // 2^-3 class · 0.5 jitter
  const int load = balanced_load(n, m);
  const int t_base = static_cast<int>(
      std::ceil(static_cast<double>(load) / ((1.0 - slack) * kWorstRate)));

  const ZipfSampler zipf(kRanks, exponent);
  std::vector<double> rates(n * m);
  for (std::size_t u = 0; u < n; ++u) {
    const auto rank = static_cast<int>(zipf(rng));
    const double user_rate = std::ldexp(1.0, -rank);
    for (std::size_t r = 0; r < m; ++r)
      rates[u * m + r] = bernoulli(rng, 0.5) ? 0.5 * user_rate : user_rate;
  }

  std::vector<double> capacities(m, 1.0);
  std::vector<double> requirements =
      thresholds_to_requirements(std::vector<int>(n, t_base));
  return Instance(std::move(capacities), std::move(requirements),
                  RateModel::matrix(n, m, std::move(rates)));
}

Instance make_clustered_bipartite(std::size_t n, std::size_t m,
                                  std::size_t clusters, std::size_t extra,
                                  double slack, Xoshiro256& rng) {
  QOSLB_REQUIRE(n >= 1, "need users");
  QOSLB_REQUIRE(clusters >= 1 && m >= clusters, "need m >= clusters >= 1");
  QOSLB_REQUIRE(slack >= 0.0 && slack < 1.0, "slack in [0,1)");

  // Round-robin partition; the fullest cluster fixes the base threshold so
  // the within-cluster balanced assignment is feasible for every cluster.
  int worst_load = 1;
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::size_t users_c = n / clusters + (c < n % clusters ? 1 : 0);
    const std::size_t resources_c = m / clusters + (c < m % clusters ? 1 : 0);
    if (users_c >= 1)
      worst_load = std::max(worst_load, balanced_load(users_c, resources_c));
  }
  const int t_base = static_cast<int>(
      std::ceil(static_cast<double>(worst_load) / (1.0 - slack)));

  std::vector<RateEdge> edges;
  std::vector<ResourceId> remote;
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t home = u % clusters;
    remote.clear();
    for (std::size_t r = 0; r < m; ++r) {
      if (r % clusters == home)
        edges.push_back({static_cast<UserId>(u), static_cast<ResourceId>(r), 1.0});
      else
        remote.push_back(static_cast<ResourceId>(r));
    }
    const std::size_t picks = std::min(extra, remote.size());
    for (const std::size_t i :
         sample_without_replacement(rng, remote.size(), picks))
      edges.push_back({static_cast<UserId>(u), remote[i], 0.5});
  }

  std::vector<double> capacities(m, 1.0);
  std::vector<double> requirements =
      thresholds_to_requirements(std::vector<int>(n, t_base));
  return Instance(std::move(capacities), std::move(requirements),
                  RateModel::bipartite(n, m, std::move(edges)));
}

}  // namespace qoslb
