#pragma once

#include "core/instance.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Instance families used across the experiments (DESIGN.md §3). Thresholds
/// are encoded via capacity 1 and requirement q_u = 1/T_u unless stated
/// otherwise, so threshold(u, r) == T_u exactly on unit-capacity resources.

/// Feasible-by-construction with slack β ∈ [0, 1): every user's threshold is
/// at least ⌈L / (1−β)⌉ with L = ⌈n/m⌉ (balanced load), so the balanced
/// assignment satisfies everyone with ~β relative headroom. `heterogeneity`
/// h ≥ 1 spreads thresholds uniformly over [T_min, ⌈h·T_min⌉].
Instance make_uniform_feasible(std::size_t n, std::size_t m, double slack,
                               double heterogeneity, Xoshiro256& rng);

/// k geometric QoS classes: class c has threshold B·2^c; resource j hosts
/// class (j mod k) with ⌊T_c·(1−β)⌋ users, so the instance is feasible with
/// slack β. n is implied by the construction (use num_users()).
Instance make_qos_classes(std::size_t m, std::size_t classes, int base_threshold,
                          double slack);

/// Zipf-skewed demands: threshold T = max(1, L >> rank) with L = ⌈2n/m⌉ and
/// rank drawn from Zipf(exponent) over 6 demand classes — many light users,
/// few very demanding ones. Feasibility is NOT guaranteed (by design; E7).
Instance make_zipf(std::size_t n, std::size_t m, double exponent, Xoshiro256& rng);

/// Overloaded instance: every user has threshold ⌊n/(m·overload)⌋ (min 1), so
/// at most ~n/overload users can be satisfied simultaneously. overload > 1.
Instance make_overloaded(std::size_t n, std::size_t m, double overload);

/// Adversarial herding instance (E5): two resources, every threshold 3n/5.
/// Under undamped concurrent full-scan sampling from the all-on-one state the
/// entire population jumps back and forth forever; damping λ < 1 breaks the
/// symmetry. n must be ≥ 5.
Instance make_herding(std::size_t n);

/// Related (heterogeneous-capacity) instance: capacities follow powers of two
/// across `speed_classes` classes; user requirements drawn so the balanced
/// capacity-proportional assignment is feasible with slack β.
Instance make_related_capacities(std::size_t n, std::size_t m, double slack,
                                 std::size_t speed_classes, Xoshiro256& rng);

/// Heterogeneous service rates (docs/heterogeneity.md): a dense rate matrix
/// with per-user Zipf(exponent) rate classes over 4 ranks (rate 2^-rank) and
/// independent per-(user, resource) halving jitter. All rates are positive,
/// so the instance is NOT restricted — sampling keeps the uniform fast path
/// — but thresholds genuinely vary per pair. The base threshold absorbs the
/// worst rate, so the balanced assignment stays feasible with slack β.
Instance make_zipf_rates(std::size_t n, std::size_t m, double slack,
                         double exponent, Xoshiro256& rng);

/// Restricted assignment via a locality-clustered access graph: resources
/// and users are partitioned round-robin into `clusters` groups; each user
/// reaches its whole home cluster at rate 1.0 plus `extra` distinct remote
/// resources at rate 0.5. Thresholds make the within-cluster balanced
/// assignment feasible with slack β; remote edges are lower-quality escape
/// hatches. Requires m ≥ clusters ≥ 1.
Instance make_clustered_bipartite(std::size_t n, std::size_t m,
                                  std::size_t clusters, std::size_t extra,
                                  double slack, Xoshiro256& rng);

}  // namespace qoslb
