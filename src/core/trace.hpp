#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/protocol.hpp"
#include "core/state.hpp"

namespace qoslb {

/// Deprecated (kept one release): superseded by obs::TraceRow — attach an
/// obs::TraceSink through EngineConfig::telemetry instead
/// (docs/observability.md).
struct RoundRecord {
  std::uint64_t round = 0;
  std::uint32_t unsatisfied = 0;
  std::uint64_t migrations = 0;    // cumulative
  std::uint64_t messages = 0;      // cumulative
  std::int32_t max_load = 0;
  double potential = 0.0;          // Rosenthal potential
};

/// Deprecated shim (kept one release): now a thin adapter over Engine + an
/// in-memory obs::TraceSink — the former duplicated round loop is deleted.
/// Runs `protocol` for at most `max_rounds`, recording a RoundRecord after
/// every round (including a round-0 snapshot of the initial state). Stops
/// early when the protocol is stable. New code: Engine with
/// config.telemetry.sink (obs/trace_sink.hpp).
class TraceRecorder {
 public:
  std::vector<RoundRecord> run(Protocol& protocol, State& state, Xoshiro256& rng,
                               std::uint64_t max_rounds);

  static void write_csv(const std::vector<RoundRecord>& records, std::ostream& out);
};

}  // namespace qoslb
