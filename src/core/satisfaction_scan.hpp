#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace qoslb {

/// Branchless structure-of-arrays satisfaction scans (docs/performance.md).
///
/// The SoA State keeps three contiguous arrays — `assignment[u]`, `load[r]`,
/// and `threshold_here[u]` (user u's threshold on its *current* resource) —
/// so the satisfaction predicate collapses to one comparison over
/// sequentially-streamed memory:
///
///     satisfied(u)  <=>  load[assignment[u]] <= threshold_here[u]
///
/// The scalar loops below are written branch-free (the predicate result is
/// consumed arithmetically) so compilers can unroll and software-pipeline
/// them; the explicit AVX2 path exists because the load[] access is a
/// gather, which no production compiler auto-vectorizes from scalar source.
/// Both paths are bit-equivalent by construction: they evaluate the same
/// integer predicate per user and emit survivors in ascending input order,
/// which is what keeps the round realization identical to the historical
/// branchy scan (tests/core_soa_test.cpp pins the equivalence).

/// Number of satisfied users among users[0..count): one gather + compare per
/// user against `loads` (the round-boundary snapshot in engine use).
inline std::size_t count_satisfied_scan(const ResourceId* assignment,
                                        const int* threshold_here,
                                        const int* loads, const UserId* users,
                                        std::size_t count) {
  std::size_t unsatisfied = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= count; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(users + i));
    const __m256i res = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(assignment), idx, 4);
    const __m256i load = _mm256_i32gather_epi32(loads, res, 4);
    const __m256i thr = _mm256_i32gather_epi32(threshold_here, idx, 4);
    const __m256i over = _mm256_cmpgt_epi32(load, thr);
    unsatisfied += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(over)))));
  }
#endif
  for (; i < count; ++i) {
    const UserId u = users[i];
    unsatisfied +=
        static_cast<std::size_t>(loads[assignment[u]] > threshold_here[u]);
  }
  return count - unsatisfied;
}

/// Dense variant over users [0, n): no index gather for the per-user arrays.
inline std::size_t count_satisfied_dense(const ResourceId* assignment,
                                         const int* threshold_here,
                                         const int* loads, std::size_t n) {
  std::size_t unsatisfied = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m256i res = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(assignment + i));
    const __m256i load = _mm256_i32gather_epi32(loads, res, 4);
    const __m256i thr = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(threshold_here + i));
    const __m256i over = _mm256_cmpgt_epi32(load, thr);
    unsatisfied += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(over)))));
  }
#endif
  for (; i < n; ++i)
    unsatisfied +=
        static_cast<std::size_t>(loads[assignment[i]] > threshold_here[i]);
  return n - unsatisfied;
}

/// Compacts the unsatisfied members of users[0..count) — in ascending input
/// order — into `out` (capacity >= count) and returns how many were written.
/// This is the decision-phase prefilter: a protocol whose satisfied users
/// neither act nor draw runs its probe loop only over the survivors, so the
/// O(n) part of a round is this scan instead of n iterations of the probe
/// machinery. Preserving input order preserves the request append order,
/// which is what keeps commit order — and hence the realization — identical.
inline std::size_t collect_unsatisfied(const ResourceId* assignment,
                                       const int* threshold_here,
                                       const int* loads, const UserId* users,
                                       std::size_t count, UserId* out) {
  std::size_t written = 0;
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= count; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(users + i));
    const __m256i res = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(assignment), idx, 4);
    const __m256i load = _mm256_i32gather_epi32(loads, res, 4);
    const __m256i thr = _mm256_i32gather_epi32(threshold_here, idx, 4);
    const __m256i over = _mm256_cmpgt_epi32(load, thr);
    auto mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(over)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[written++] = users[i + lane];
      mask &= mask - 1;
    }
  }
#endif
  for (; i < count; ++i) {
    const UserId u = users[i];
    out[written] = u;
    written +=
        static_cast<std::size_t>(loads[assignment[u]] > threshold_here[u]);
  }
  return written;
}

}  // namespace qoslb
