#pragma once

#include <span>
#include <vector>

#include "core/rate_model.hpp"
#include "core/types.hpp"

namespace qoslb {

/// An instance of the QoS load-balancing problem (DESIGN.md §1).
///
/// `m` resources with capacities `s_r > 0` and `n` users with QoS
/// requirements `q_u > 0`. A resource serving `ℓ` users offers user `u`
/// quality `rate(u, r) · s_r / ℓ` (processor sharing scaled by the
/// per-(user, resource) service rate); user `u` is satisfied iff the
/// quality meets its requirement, i.e. iff `ℓ ≤ threshold(u, r)` with
/// `threshold(u, r) = ⌊rate(u, r) · s_r / q_u⌋`. The default RateModel is
/// uniform (`rate ≡ 1`, the paper's base model); see docs/heterogeneity.md
/// for the matrix and bipartite restricted-assignment forms.
///
/// Immutable after construction; States reference an Instance and must not
/// outlive it.
class Instance {
 public:
  /// Uniform rates: per-resource capacities, per-user requirements.
  Instance(std::vector<double> capacities, std::vector<double> requirements);

  /// Heterogeneous rates; `rates` dimensions must match (unless uniform).
  Instance(std::vector<double> capacities, std::vector<double> requirements,
           RateModel rates);

  /// All resources share one capacity (the paper's base model).
  static Instance identical(std::size_t m_resources, double capacity,
                            std::vector<double> requirements);

  std::size_t num_users() const { return requirements_.size(); }
  std::size_t num_resources() const { return capacities_.size(); }

  double capacity(ResourceId r) const;
  double requirement(UserId u) const;

  /// Rate-agnostic quality of resource `r` at occupancy `load` (load ≥ 1):
  /// `s_r / load`, every user's quality under the uniform model.
  double quality(ResourceId r, int load) const;

  /// Quality user `u` experiences on `r` at occupancy `load`:
  /// `rate(u, r) · s_r / load`.
  double quality(UserId u, ResourceId r, int load) const;

  /// Service rate of the (u, r) pair; 0 means `u` cannot use `r`.
  double rate(UserId u, ResourceId r) const { return rates_.rate(u, r); }

  /// Maximum occupancy of `r` at which user `u` is still satisfied; 0 means
  /// `u` can never be satisfied on `r` (in particular for every unreachable
  /// pair). Clamped to num_users() (occupancy can never exceed n, so larger
  /// thresholds are indistinguishable).
  int threshold(UserId u, ResourceId r) const;

  /// True when threshold(u, r) is independent of r (identical capacities and
  /// uniform rates — the paper's base model); the values are then the
  /// precomputed flat_thresholds() table and threshold() is a table lookup.
  bool flat_thresholds_available() const { return !flat_thresholds_.empty(); }

  /// The per-user threshold table when flat_thresholds_available(); the
  /// round hot path streams this instead of calling threshold() per probe.
  std::span<const int> flat_thresholds() const { return flat_thresholds_; }

  /// True if every resource has the same capacity (enables the O(n+m)
  /// equilibrium fast path — which additionally needs uniform_rates()).
  bool identical_capacities() const { return identical_; }

  const RateModel& rate_model() const { return rates_; }
  bool uniform_rates() const { return rates_.is_uniform(); }

  /// True iff some user's reachable set is a proper subset of the
  /// resources. Protocols must restrict sampling to reachable() exactly
  /// when this holds; see Protocol::restricted_assignment_compatible().
  bool restricted() const { return rates_.restricted(); }

  /// The resources user `u` can use (rate > 0), ascending. Requires a
  /// restricted (or bipartite) rate model.
  std::span<const ResourceId> reachable(UserId u) const {
    return rates_.reachable(u);
  }

 private:
  std::vector<double> capacities_;
  std::vector<double> requirements_;
  std::vector<double> inv_requirements_;  // 1/q_u, precomputed for threshold()
  std::vector<int> flat_thresholds_;      // threshold(u, ·) when r-independent
  RateModel rates_;
  bool identical_ = true;
};

}  // namespace qoslb
