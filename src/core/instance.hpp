#pragma once

#include <vector>

#include "core/types.hpp"

namespace qoslb {

/// An instance of the QoS load-balancing problem (DESIGN.md §1).
///
/// `m` resources with capacities `s_r > 0` and `n` users with QoS
/// requirements `q_u > 0`. A resource serving `ℓ` users offers quality
/// `s_r / ℓ` to each of them (processor sharing); user `u` is satisfied iff
/// the quality meets its requirement, i.e. iff `ℓ ≤ threshold(u, r)` with
/// `threshold(u, r) = ⌊s_r / q_u⌋`.
///
/// Immutable after construction; States reference an Instance and must not
/// outlive it.
class Instance {
 public:
  /// General constructor: per-resource capacities, per-user requirements.
  Instance(std::vector<double> capacities, std::vector<double> requirements);

  /// All resources share one capacity (the paper's base model).
  static Instance identical(std::size_t m_resources, double capacity,
                            std::vector<double> requirements);

  std::size_t num_users() const { return requirements_.size(); }
  std::size_t num_resources() const { return capacities_.size(); }

  double capacity(ResourceId r) const;
  double requirement(UserId u) const;

  /// Quality offered by resource `r` at occupancy `load` (load ≥ 1).
  double quality(ResourceId r, int load) const;

  /// Maximum occupancy of `r` at which user `u` is still satisfied; 0 means
  /// `u` can never be satisfied on `r`. Clamped to num_users() (occupancy can
  /// never exceed n, so larger thresholds are indistinguishable).
  int threshold(UserId u, ResourceId r) const;

  /// True if every resource has the same capacity (enables the O(n+m)
  /// equilibrium fast path).
  bool identical_capacities() const { return identical_; }

 private:
  std::vector<double> capacities_;
  std::vector<double> requirements_;
  std::vector<double> inv_requirements_;  // 1/q_u, precomputed for threshold()
  bool identical_ = true;
};

}  // namespace qoslb
