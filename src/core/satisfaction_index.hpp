#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/types.hpp"
#include "util/check.hpp"

namespace qoslb {

/// Incrementally-maintained satisfaction index: a per-resource user index
/// bucketed by threshold, the set of currently unsatisfied users, and an
/// O(1) satisfied counter. This is the substrate of the engine's active-set
/// execution mode (docs/performance.md).
///
/// The structural fact it exploits: user `u` sitting on resource `r` with
/// threshold `t = threshold(u, r)` is satisfied iff `load(r) <= t`, so a
/// committed move only changes loads on its two endpoint resources — and of
/// the users indexed there, exactly the ones whose threshold lies in the
/// half-open window the load change swept over flip satisfaction. Keeping
/// each resource's residents bucketed by threshold (an ordered map of
/// threshold -> users) turns that window into a contiguous map range, so
/// maintenance is O(log m_r + #flips) per move, and the total flip work over
/// a run is bounded by the run's true satisfaction churn.
///
/// `Load` is the load/threshold arithmetic type: `int` for the unit model
/// (every move sweeps a width-1 window) and `std::int64_t` for the weighted
/// model (window width = the mover's weight).
template <typename Load>
class SatisfactionIndex {
 public:
  /// Builds the index from scratch in O(n log n): `resource_of(u)` and
  /// `threshold_of(u)` describe the current assignment (the threshold on
  /// the user's *current* resource), `load_of(r)` the current loads.
  template <typename ResourceOf, typename ThresholdOf, typename LoadOf>
  void rebuild(std::size_t num_users, std::size_t num_resources,
               const ResourceOf& resource_of, const ThresholdOf& threshold_of,
               const LoadOf& load_of) {
    num_users_ = num_users;
    buckets_.assign(num_resources, {});
    bucket_pos_.assign(num_users, 0);
    unsat_.clear();
    unsat_pos_.assign(num_users, kNoSlot);
    for (UserId u = 0; u < num_users; ++u) {
      const ResourceId r = resource_of(u);
      const Load t = threshold_of(u);
      insert_bucket(r, t, u);
      if (load_of(r) > t) set_status(u, /*satisfied=*/false);
    }
  }

  /// Structure-of-arrays rebuild: the host state hands its contiguous
  /// assignment / cached-threshold / load arrays directly (State's SoA
  /// layout, docs/performance.md), so the build streams three flat arrays
  /// instead of bouncing through per-user callbacks. Equivalent to the
  /// callback overload by construction.
  void rebuild(std::size_t num_users, std::size_t num_resources,
               const ResourceId* resource_of, const Load* threshold_of,
               const Load* load_of) {
    rebuild(
        num_users, num_resources, [&](UserId u) { return resource_of[u]; },
        [&](UserId u) { return threshold_of[u]; },
        [&](ResourceId r) { return load_of[r]; });
  }

  /// Reflects a committed move of `u` from `src` to `dst` (src != dst) —
  /// call *after* the host state updated its loads. `*_load_after` are the
  /// post-move loads and `delta` the load shift (1 in the unit model, u's
  /// weight otherwise). Cost: two bucket updates plus one step per user
  /// whose satisfaction actually changed.
  void on_move(UserId u, ResourceId src, Load threshold_on_src, ResourceId dst,
               Load threshold_on_dst, Load src_load_after, Load dst_load_after,
               Load delta) {
    erase_bucket(src, threshold_on_src, u);
    // src's load fell from src_load_after + delta to src_load_after: the
    // users with threshold in [src_load_after, src_load_after + delta) were
    // unsatisfied before and are satisfied now.
    flip_range(src, src_load_after, src_load_after + delta, /*satisfied=*/true);
    // dst's load rose from dst_load_after - delta to dst_load_after: the
    // users with threshold in [dst_load_after - delta, dst_load_after) were
    // satisfied before and are unsatisfied now.
    flip_range(dst, dst_load_after - delta, dst_load_after,
               /*satisfied=*/false);
    insert_bucket(dst, threshold_on_dst, u);
    // The mover itself is re-evaluated on its new resource (set_status is
    // idempotent, so it does not matter what the flips above did to u).
    set_status(u, dst_load_after <= threshold_on_dst);
  }

  std::size_t num_users() const { return num_users_; }
  std::size_t satisfied_count() const { return num_users_ - unsat_.size(); }

  /// The currently unsatisfied users, in unspecified order. Stable between
  /// moves; any move may permute it.
  const std::vector<UserId>& unsatisfied() const { return unsat_; }

  bool is_unsatisfied(UserId u) const { return unsat_pos_[u] != kNoSlot; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  using Bucket = std::vector<UserId>;

  void insert_bucket(ResourceId r, Load t, UserId u) {
    Bucket& bucket = buckets_[r][t];
    bucket_pos_[u] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(u);
  }

  void erase_bucket(ResourceId r, Load t, UserId u) {
    const auto it = buckets_[r].find(t);
    QOSLB_CHECK(it != buckets_[r].end(),
                "satisfaction index: user missing from threshold bucket");
    Bucket& bucket = it->second;
    const std::uint32_t pos = bucket_pos_[u];
    const UserId moved = bucket.back();
    bucket[pos] = moved;
    bucket_pos_[moved] = pos;
    bucket.pop_back();
    if (bucket.empty()) buckets_[r].erase(it);
  }

  /// Marks every user of resource `r` with threshold in [lo, hi).
  void flip_range(ResourceId r, Load lo, Load hi, bool satisfied) {
    auto& buckets = buckets_[r];
    for (auto it = buckets.lower_bound(lo); it != buckets.end() && it->first < hi;
         ++it)
      for (const UserId v : it->second) set_status(v, satisfied);
  }

  /// Idempotent membership update of the unsatisfied swap-remove set.
  void set_status(UserId u, bool satisfied) {
    const std::uint32_t pos = unsat_pos_[u];
    if (satisfied) {
      if (pos == kNoSlot) return;
      const UserId moved = unsat_.back();
      unsat_[pos] = moved;
      unsat_pos_[moved] = pos;
      unsat_.pop_back();
      unsat_pos_[u] = kNoSlot;
    } else {
      if (pos != kNoSlot) return;
      unsat_pos_[u] = static_cast<std::uint32_t>(unsat_.size());
      unsat_.push_back(u);
    }
  }

  std::size_t num_users_ = 0;
  /// buckets_[r]: threshold -> users currently resident on r with exactly
  /// that threshold there.
  std::vector<std::map<Load, Bucket>> buckets_;
  std::vector<std::uint32_t> bucket_pos_;  // u's slot in its bucket
  std::vector<UserId> unsat_;              // swap-remove set
  std::vector<std::uint32_t> unsat_pos_;   // u's slot in unsat_, kNoSlot if satisfied
};

}  // namespace qoslb
