#include "core/potential.hpp"

#include <algorithm>

namespace qoslb {

double rosenthal_potential(const State& state) {
  const Instance& instance = state.instance();
  double total = 0.0;
  for (ResourceId r = 0; r < state.num_resources(); ++r) {
    const int load = state.load(r);
    // Σ_{k=1..load} k = load(load+1)/2.
    total += static_cast<double>(load) * (load + 1) / 2.0 / instance.capacity(r);
  }
  return total;
}

double quality_deficit(const State& state) {
  const Instance& instance = state.instance();
  double total = 0.0;
  for (UserId u = 0; u < state.num_users(); ++u)
    total += std::max(0.0, instance.requirement(u) - state.quality_of(u));
  return total;
}

double load_variance(const State& state) {
  const auto& loads = state.loads();
  const double mean = static_cast<double>(state.num_users()) /
                      static_cast<double>(state.num_resources());
  double acc = 0.0;
  for (const int load : loads) {
    const double d = static_cast<double>(load) - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(loads.size());
}

}  // namespace qoslb
