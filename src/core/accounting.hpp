#pragma once

#include <cstdint>

namespace qoslb {

/// Message/operation counters shared by both engines and all protocols.
/// "Messages" follow the distributed-computing cost model: one probe is a
/// round trip (PROBE + LOAD reply), a migration is a MIGRATE message, and the
/// admission-controlled protocols additionally exchange REQUEST/GRANT/REJECT.
struct Counters {
  std::uint64_t probes = 0;
  std::uint64_t migrate_requests = 0;
  std::uint64_t grants = 0;
  std::uint64_t rejects = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t events = 0;

  // Loss-tolerance accounting (asynchronous protocols under fault
  // injection; all zero in fault-free runs).
  std::uint64_t timeouts = 0;     // operations whose reply never arrived in time
  std::uint64_t retries = 0;      // re-sent probes/requests/leaves
  std::uint64_t stale_drops = 0;  // received messages ignored as stale/duplicate

  /// Total messages under the round-trip cost model. Retries are already
  /// counted by their operation counters; LEAVE acks ride on migrations.
  std::uint64_t messages() const {
    return 2 * probes + migrate_requests + grants + rejects + migrations;
  }

  Counters& operator+=(const Counters& other) {
    probes += other.probes;
    migrate_requests += other.migrate_requests;
    grants += other.grants;
    rejects += other.rejects;
    migrations += other.migrations;
    rounds += other.rounds;
    events += other.events;
    timeouts += other.timeouts;
    retries += other.retries;
    stale_drops += other.stale_drops;
    return *this;
  }
};

}  // namespace qoslb
