#pragma once

#include <iosfwd>

#include "core/instance.hpp"
#include "core/state.hpp"

namespace qoslb {

/// Plain-text serialization for instances and states, so the CLI can save a
/// generated workload and replay it later (or exchange it with other tools).
///
/// Format (line-oriented, '#' comments allowed between sections):
///
///   qoslb-instance v2
///   resources <m>
///   <m capacity lines>
///   users <n>
///   <n requirement lines>
///   rate_model uniform | matrix | bipartite
///   [rates <n·m> + value lines]            (matrix)
///   [edges <E> + "<u> <r> <rate>" lines]   (bipartite)
///
///   qoslb-state v1
///   users <n>
///   <n resource-id lines>
///
/// The writer always emits the newest version; the reader also accepts the
/// pre-rate-model `qoslb-instance v1` (read back as the uniform model).
/// Numbers are written with 17 significant digits so the round trip is
/// value-exact for doubles.

void write_instance(std::ostream& out, const Instance& instance);

/// Throws std::invalid_argument on malformed input.
Instance read_instance(std::istream& in);

void write_state(std::ostream& out, const State& state);

/// The instance must match the state being read (user count, resource
/// range); throws std::invalid_argument otherwise.
State read_state(std::istream& in, const Instance& instance);

}  // namespace qoslb
