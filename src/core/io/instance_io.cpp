#include "core/io/instance_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace qoslb {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("qoslb io: " + message);
}

/// Next non-empty, non-comment line; throws at EOF.
std::string next_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    return std::string(trimmed);
  }
  fail(std::string("unexpected end of input while reading ") + what);
}

std::size_t read_count(std::istream& in, const std::string& keyword) {
  const std::string line = next_line(in, keyword.c_str());
  std::istringstream parts(line);
  std::string word;
  long long count = -1;
  if (!(parts >> word >> count) || word != keyword || count < 0)
    fail("expected '" + keyword + " <count>', got '" + line + "'");
  return static_cast<std::size_t>(count);
}

double read_double(std::istream& in, const char* what) {
  const std::string line = next_line(in, what);
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(line, &consumed);
  } catch (const std::exception&) {
    fail(std::string("bad number for ") + what + ": '" + line + "'");
  }
  if (consumed != line.size())
    fail(std::string("trailing garbage after ") + what + ": '" + line + "'");
  return value;
}

void expect_magic(std::istream& in, const char* magic) {
  const std::string line = next_line(in, magic);
  if (line != magic) fail(std::string("expected '") + magic + "', got '" + line + "'");
}

}  // namespace

void write_instance(std::ostream& out, const Instance& instance) {
  const auto previous = out.precision(std::numeric_limits<double>::max_digits10);
  out << "qoslb-instance v1\n";
  out << "resources " << instance.num_resources() << '\n';
  for (ResourceId r = 0; r < instance.num_resources(); ++r)
    out << instance.capacity(r) << '\n';
  out << "users " << instance.num_users() << '\n';
  for (UserId u = 0; u < instance.num_users(); ++u)
    out << instance.requirement(u) << '\n';
  out.precision(previous);
}

Instance read_instance(std::istream& in) {
  expect_magic(in, "qoslb-instance v1");
  const std::size_t m = read_count(in, "resources");
  std::vector<double> capacities(m);
  for (auto& capacity : capacities) capacity = read_double(in, "capacity");
  const std::size_t n = read_count(in, "users");
  std::vector<double> requirements(n);
  for (auto& requirement : requirements)
    requirement = read_double(in, "requirement");
  try {
    return Instance(std::move(capacities), std::move(requirements));
  } catch (const std::invalid_argument& error) {
    fail(std::string("invalid instance data: ") + error.what());
  }
}

void write_state(std::ostream& out, const State& state) {
  out << "qoslb-state v1\n";
  out << "users " << state.num_users() << '\n';
  for (UserId u = 0; u < state.num_users(); ++u)
    out << state.resource_of(u) << '\n';
}

State read_state(std::istream& in, const Instance& instance) {
  expect_magic(in, "qoslb-state v1");
  const std::size_t n = read_count(in, "users");
  if (n != instance.num_users())
    fail("state has " + std::to_string(n) + " users, instance has " +
         std::to_string(instance.num_users()));
  std::vector<ResourceId> assignment(n);
  for (auto& r : assignment) {
    const double value = read_double(in, "resource id");
    const auto id = static_cast<long long>(value);
    if (value != static_cast<double>(id) || id < 0 ||
        static_cast<std::size_t>(id) >= instance.num_resources())
      fail("bad resource id " + std::to_string(value));
    r = static_cast<ResourceId>(id);
  }
  return State(instance, std::move(assignment));
}

}  // namespace qoslb
