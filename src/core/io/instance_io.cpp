#include "core/io/instance_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace qoslb {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("qoslb io: " + message);
}

/// Next non-empty, non-comment line; throws at EOF.
std::string next_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    return std::string(trimmed);
  }
  fail(std::string("unexpected end of input while reading ") + what);
}

std::size_t read_count(std::istream& in, const std::string& keyword) {
  const std::string line = next_line(in, keyword.c_str());
  std::istringstream parts(line);
  std::string word;
  long long count = -1;
  if (!(parts >> word >> count) || word != keyword || count < 0)
    fail("expected '" + keyword + " <count>', got '" + line + "'");
  return static_cast<std::size_t>(count);
}

double read_double(std::istream& in, const char* what) {
  const std::string line = next_line(in, what);
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(line, &consumed);
  } catch (const std::exception&) {
    fail(std::string("bad number for ") + what + ": '" + line + "'");
  }
  if (consumed != line.size())
    fail(std::string("trailing garbage after ") + what + ": '" + line + "'");
  return value;
}

void expect_magic(std::istream& in, const char* magic) {
  const std::string line = next_line(in, magic);
  if (line != magic) fail(std::string("expected '") + magic + "', got '" + line + "'");
}

}  // namespace

void write_instance(std::ostream& out, const Instance& instance) {
  const auto previous = out.precision(std::numeric_limits<double>::max_digits10);
  out << "qoslb-instance v2\n";
  out << "resources " << instance.num_resources() << '\n';
  for (ResourceId r = 0; r < instance.num_resources(); ++r)
    out << instance.capacity(r) << '\n';
  out << "users " << instance.num_users() << '\n';
  for (UserId u = 0; u < instance.num_users(); ++u)
    out << instance.requirement(u) << '\n';
  const RateModel& rates = instance.rate_model();
  switch (rates.kind()) {
    case RateModelKind::kUniform:
      out << "rate_model uniform\n";
      break;
    case RateModelKind::kMatrix:
      out << "rate_model matrix\n";
      out << "rates " << rates.matrix_rates().size() << '\n';
      for (const double rate : rates.matrix_rates()) out << rate << '\n';
      break;
    case RateModelKind::kBipartite: {
      out << "rate_model bipartite\n";
      const std::vector<RateEdge> edges = rates.edges();
      out << "edges " << edges.size() << '\n';
      for (const RateEdge& e : edges)
        out << e.user << ' ' << e.resource << ' ' << e.rate << '\n';
      break;
    }
  }
  out.precision(previous);
}

Instance read_instance(std::istream& in) {
  const std::string magic = next_line(in, "the format magic");
  if (magic != "qoslb-instance v1" && magic != "qoslb-instance v2")
    fail("expected 'qoslb-instance v1' or 'qoslb-instance v2', got '" +
         magic + "'");
  const bool v2 = magic == "qoslb-instance v2";
  const std::size_t m = read_count(in, "resources");
  std::vector<double> capacities(m);
  for (auto& capacity : capacities) capacity = read_double(in, "capacity");
  const std::size_t n = read_count(in, "users");
  std::vector<double> requirements(n);
  for (auto& requirement : requirements)
    requirement = read_double(in, "requirement");
  RateModel rates;  // v1 carries no block: uniform
  if (v2) {
    const std::string kind_line = next_line(in, "the rate model kind");
    std::istringstream kind_parts(kind_line);
    std::string word, kind;
    if (!(kind_parts >> word >> kind) || word != "rate_model")
      fail("expected 'rate_model <kind>', got '" + kind_line + "'");
    if (kind == "uniform") {
      rates = RateModel::uniform();
    } else if (kind == "matrix") {
      const std::size_t values = read_count(in, "rates");
      if (values != n * m)
        fail("rates block lists " + std::to_string(values) + " values for a " +
             std::to_string(n) + " x " + std::to_string(m) + " instance");
      std::vector<double> rate_values(values);
      for (auto& rate : rate_values) rate = read_double(in, "rate");
      try {
        rates = RateModel::matrix(n, m, std::move(rate_values));
      } catch (const std::invalid_argument& error) {
        fail(std::string("invalid rate matrix: ") + error.what());
      }
    } else if (kind == "bipartite") {
      const std::size_t edge_count = read_count(in, "edges");
      std::vector<RateEdge> edge_list(edge_count);
      for (auto& edge : edge_list) {
        const std::string line = next_line(in, "an access-graph edge");
        std::istringstream parts(line);
        unsigned long long user = 0;
        unsigned long long resource = 0;
        double rate = 0.0;
        std::string extra;
        if (!(parts >> user >> resource >> rate) || (parts >> extra))
          fail("expected '<user> <resource> <rate>', got '" + line + "'");
        if (user >= n || resource >= m)
          fail("edge endpoint out of range on '" + line + "'");
        edge = {static_cast<UserId>(user), static_cast<ResourceId>(resource),
                rate};
      }
      try {
        rates = RateModel::bipartite(n, m, std::move(edge_list));
      } catch (const std::invalid_argument& error) {
        fail(std::string("invalid access graph: ") + error.what());
      }
    } else {
      fail("unknown rate model kind '" + kind + "'");
    }
  }
  try {
    if (rates.is_uniform())
      return Instance(std::move(capacities), std::move(requirements));
    return Instance(std::move(capacities), std::move(requirements),
                    std::move(rates));
  } catch (const std::invalid_argument& error) {
    fail(std::string("invalid instance data: ") + error.what());
  }
}

void write_state(std::ostream& out, const State& state) {
  out << "qoslb-state v1\n";
  out << "users " << state.num_users() << '\n';
  for (UserId u = 0; u < state.num_users(); ++u)
    out << state.resource_of(u) << '\n';
}

State read_state(std::istream& in, const Instance& instance) {
  expect_magic(in, "qoslb-state v1");
  const std::size_t n = read_count(in, "users");
  if (n != instance.num_users())
    fail("state has " + std::to_string(n) + " users, instance has " +
         std::to_string(instance.num_users()));
  std::vector<ResourceId> assignment(n);
  for (auto& r : assignment) {
    const double value = read_double(in, "resource id");
    const auto id = static_cast<long long>(value);
    if (value != static_cast<double>(id) || id < 0 ||
        static_cast<std::size_t>(id) >= instance.num_resources())
      fail("bad resource id " + std::to_string(value));
    r = static_cast<ResourceId>(id);
  }
  return State(instance, std::move(assignment));
}

}  // namespace qoslb
