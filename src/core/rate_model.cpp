#include "core/rate_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"

namespace qoslb {

RateModel RateModel::matrix(std::size_t num_users, std::size_t num_resources,
                            std::vector<double> rates) {
  QOSLB_REQUIRE(num_users >= 1, "rate matrix needs at least one user");
  QOSLB_REQUIRE(num_resources >= 1, "rate matrix needs at least one resource");
  QOSLB_REQUIRE(rates.size() == num_users * num_resources,
                "rate matrix must be n×m row-major");
  RateModel model;
  model.kind_ = RateModelKind::kMatrix;
  model.num_users_ = num_users;
  model.num_resources_ = num_resources;
  model.matrix_ = std::move(rates);
  bool any_zero = false;
  for (UserId u = 0; u < num_users; ++u) {
    std::size_t degree = 0;
    for (ResourceId r = 0; r < num_resources; ++r) {
      const double rate = model.matrix_[u * num_resources + r];
      QOSLB_REQUIRE(std::isfinite(rate) && rate >= 0.0,
                    "rates must be finite and non-negative");
      if (rate > 0.0)
        ++degree;
      else
        any_zero = true;
    }
    QOSLB_REQUIRE(degree >= 1, "user " + std::to_string(u) +
                                   " has an empty reachable set (all rates 0)");
  }
  model.restricted_ = any_zero;
  if (model.restricted_) {
    // Materialize the reachable-set CSR so restricted sampling is a plain
    // indexed draw (no per-probe matrix scan).
    model.offsets_.reserve(num_users + 1);
    model.offsets_.push_back(0);
    for (UserId u = 0; u < num_users; ++u) {
      for (ResourceId r = 0; r < num_resources; ++r)
        if (model.matrix_[u * num_resources + r] > 0.0)
          model.targets_.push_back(r);
      model.offsets_.push_back(model.targets_.size());
    }
  }
  return model;
}

RateModel RateModel::bipartite(std::size_t num_users, std::size_t num_resources,
                               std::vector<RateEdge> edges) {
  QOSLB_REQUIRE(num_users >= 1, "access graph needs at least one user");
  QOSLB_REQUIRE(num_resources >= 1, "access graph needs at least one resource");
  std::sort(edges.begin(), edges.end(), [](const RateEdge& a, const RateEdge& b) {
    return a.user != b.user ? a.user < b.user : a.resource < b.resource;
  });
  RateModel model;
  model.kind_ = RateModelKind::kBipartite;
  model.num_users_ = num_users;
  model.num_resources_ = num_resources;
  model.offsets_.reserve(num_users + 1);
  model.targets_.reserve(edges.size());
  model.edge_rates_.reserve(edges.size());
  model.offsets_.push_back(0);
  std::size_t next = 0;
  for (UserId u = 0; u < num_users; ++u) {
    const std::size_t row_start = model.targets_.size();
    while (next < edges.size() && edges[next].user == u) {
      const RateEdge& e = edges[next];
      QOSLB_REQUIRE(e.resource < num_resources, "edge to unknown resource");
      QOSLB_REQUIRE(std::isfinite(e.rate) && e.rate > 0.0,
                    "edge rates must be finite and positive");
      QOSLB_REQUIRE(model.targets_.size() == row_start ||
                        model.targets_.back() != e.resource,
                    "duplicate (user, resource) edge");
      model.targets_.push_back(e.resource);
      model.edge_rates_.push_back(e.rate);
      ++next;
    }
    QOSLB_REQUIRE(model.targets_.size() > row_start,
                  "user " + std::to_string(u) +
                      " has an empty reachable set (no edges)");
    model.offsets_.push_back(model.targets_.size());
  }
  QOSLB_REQUIRE(next == edges.size(), "edge to unknown user");
  model.restricted_ = model.targets_.size() < num_users * num_resources;
  return model;
}

double RateModel::rate_slow(UserId u, ResourceId r) const {
  QOSLB_REQUIRE(u < num_users_, "user out of range");
  QOSLB_REQUIRE(r < num_resources_, "resource out of range");
  if (kind_ == RateModelKind::kMatrix) return matrix_[u * num_resources_ + r];
  const auto begin = targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto end = targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  const auto it = std::lower_bound(begin, end, r);
  if (it == end || *it != r) return 0.0;
  return edge_rates_[static_cast<std::size_t>(it - targets_.begin())];
}

std::span<const ResourceId> RateModel::reachable(UserId u) const {
  QOSLB_REQUIRE(!offsets_.empty(),
                "reachable() is only materialized for restricted (or "
                "bipartite) models");
  QOSLB_REQUIRE(u < num_users_, "user out of range");
  return {targets_.data() + offsets_[u], targets_.data() + offsets_[u + 1]};
}

const std::vector<double>& RateModel::matrix_rates() const {
  QOSLB_REQUIRE(kind_ == RateModelKind::kMatrix,
                "matrix_rates() needs a matrix model");
  return matrix_;
}

std::vector<RateEdge> RateModel::edges() const {
  QOSLB_REQUIRE(kind_ == RateModelKind::kBipartite,
                "edges() needs a bipartite model");
  std::vector<RateEdge> out;
  out.reserve(targets_.size());
  for (UserId u = 0; u < num_users_; ++u)
    for (std::uint64_t i = offsets_[u]; i < offsets_[u + 1]; ++i)
      out.push_back({u, targets_[i], edge_rates_[i]});
  return out;
}

}  // namespace qoslb
