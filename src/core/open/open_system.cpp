#include "core/open/open_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

/// Live user record in the open system. Slots are recycled via a free list
/// so ids stay dense across arrivals/departures.
struct LiveUser {
  int threshold = 0;       // in occupancy units on the identical resources
  std::uint32_t resource = 0;
  std::uint64_t arrived_round = 0;
  bool ever_satisfied = false;
  bool alive = false;
};

class OpenSystem {
 public:
  explicit OpenSystem(const OpenSystemConfig& config)
      : config_(config), rng_(config.seed), loads_(config.num_resources, 0) {
    QOSLB_REQUIRE(config.num_resources >= 2, "need at least two resources");
    QOSLB_REQUIRE(config.capacity > 0, "capacity must be positive");
    QOSLB_REQUIRE(config.arrival_rate >= 0, "arrival rate must be non-negative");
    QOSLB_REQUIRE(config.mean_lifetime >= 1, "mean lifetime must be >= 1 round");
    QOSLB_REQUIRE(config.q_lo > 0 && config.q_hi >= config.q_lo,
                  "bad requirement band");
    QOSLB_REQUIRE(config.warmup_rounds < config.rounds,
                  "warmup must end before the run does");
  }

  OpenSystemMetrics run() {
    for (std::uint64_t round = 0; round < config_.rounds; ++round) {
      depart(round);
      arrive(round);
      protocol_round();
      // Satisfaction marking runs every round (delays are measured from the
      // true arrival); population metrics accumulate only after warmup.
      record(round, /*accumulate=*/round >= config_.warmup_rounds);
    }
    finalize();
    return metrics_;
  }

 private:
  void depart(std::uint64_t round) {
    (void)round;
    const double p = 1.0 / config_.mean_lifetime;
    for (std::size_t i = 0; i < users_.size(); ++i) {
      if (!users_[i].alive || !bernoulli(rng_, p)) continue;
      if (!users_[i].ever_satisfied) ++metrics_.never_satisfied;
      --loads_[users_[i].resource];
      users_[i].alive = false;
      free_slots_.push_back(i);
      ++metrics_.departures;
    }
  }

  void arrive(std::uint64_t round) {
    const std::uint64_t count = poisson(rng_, config_.arrival_rate);
    for (std::uint64_t i = 0; i < count; ++i) {
      LiveUser user;
      const double q = uniform_real(rng_, config_.q_lo, config_.q_hi);
      user.threshold = static_cast<int>(
          std::floor(config_.capacity / q + 1e-9));
      user.resource = static_cast<std::uint32_t>(
          uniform_u64_below(rng_, config_.num_resources));
      user.arrived_round = round;
      user.alive = true;
      ++loads_[user.resource];
      if (free_slots_.empty()) {
        users_.push_back(user);
      } else {
        users_[free_slots_.back()] = user;
        free_slots_.pop_back();
      }
      ++metrics_.arrivals;
    }
  }

  /// One admission-gated round, mirroring AdmissionControl on the live set.
  void protocol_round() {
    // Satisfied-resident minimum thresholds (the admission gate).
    std::vector<int> resident_min(config_.num_resources,
                                  std::numeric_limits<int>::max());
    for (const LiveUser& user : users_) {
      if (!user.alive) continue;
      if (user.threshold >= loads_[user.resource])
        resident_min[user.resource] =
            std::min(resident_min[user.resource], user.threshold);
    }

    // Decision phase against the round-start loads.
    const std::vector<int> snapshot = loads_;
    std::vector<std::vector<std::size_t>> requests(config_.num_resources);
    for (std::size_t i = 0; i < users_.size(); ++i) {
      const LiveUser& user = users_[i];
      if (!user.alive || snapshot[user.resource] <= user.threshold) continue;
      const auto r = static_cast<std::uint32_t>(
          uniform_u64_below(rng_, config_.num_resources));
      ++metrics_.probes;
      if (r == user.resource || snapshot[r] + 1 > user.threshold) continue;
      requests[r].push_back(i);
    }

    // Grant phase: longest threshold-descending prefix that fits.
    for (std::uint32_t r = 0; r < config_.num_resources; ++r) {
      auto& requesters = requests[r];
      if (requesters.empty()) continue;
      std::sort(requesters.begin(), requesters.end(),
                [&](std::size_t a, std::size_t b) {
                  if (users_[a].threshold != users_[b].threshold)
                    return users_[a].threshold > users_[b].threshold;
                  return a < b;
                });
      const int base_load = loads_[r];
      std::size_t admitted = 0;
      while (admitted < requesters.size()) {
        const int post_load = base_load + static_cast<int>(admitted) + 1;
        const int kth = users_[requesters[admitted]].threshold;
        if (post_load > resident_min[r] || post_load > kth) break;
        ++admitted;
      }
      for (std::size_t i = 0; i < admitted; ++i) {
        LiveUser& user = users_[requesters[i]];
        --loads_[user.resource];
        user.resource = r;
        ++loads_[r];
        ++metrics_.migrations;
      }
    }
  }

  void record(std::uint64_t round, bool accumulate) {
    std::uint64_t population = 0;
    std::uint64_t unsatisfied = 0;
    for (std::size_t i = 0; i < users_.size(); ++i) {
      LiveUser& user = users_[i];
      if (!user.alive) continue;
      ++population;
      if (loads_[user.resource] <= user.threshold) {
        if (!user.ever_satisfied) {
          user.ever_satisfied = true;
          satisfaction_delay_total_ +=
              static_cast<double>(round - user.arrived_round);
          ++satisfaction_delay_count_;
        }
      } else {
        ++unsatisfied;
      }
    }
    if (!accumulate) return;
    population_total_ += population;
    unsatisfied_total_ += unsatisfied;
    ++recorded_rounds_;
  }

  void finalize() {
    if (recorded_rounds_ > 0) {
      metrics_.mean_population = static_cast<double>(population_total_) /
                                 static_cast<double>(recorded_rounds_);
      metrics_.mean_unsatisfied = static_cast<double>(unsatisfied_total_) /
                                  static_cast<double>(recorded_rounds_);
    }
    metrics_.violation_fraction =
        population_total_ == 0
            ? 0.0
            : static_cast<double>(unsatisfied_total_) /
                  static_cast<double>(population_total_);
    metrics_.mean_rounds_to_satisfaction =
        satisfaction_delay_count_ == 0
            ? 0.0
            : satisfaction_delay_total_ /
                  static_cast<double>(satisfaction_delay_count_);
  }

  OpenSystemConfig config_;
  Xoshiro256 rng_;
  std::vector<LiveUser> users_;
  std::vector<std::size_t> free_slots_;
  std::vector<int> loads_;
  OpenSystemMetrics metrics_;
  std::uint64_t population_total_ = 0;
  std::uint64_t unsatisfied_total_ = 0;
  std::uint64_t recorded_rounds_ = 0;
  double satisfaction_delay_total_ = 0.0;
  std::uint64_t satisfaction_delay_count_ = 0;
};

}  // namespace

OpenSystemMetrics run_open_system(const OpenSystemConfig& config) {
  OpenSystem system(config);
  return system.run();
}

}  // namespace qoslb
