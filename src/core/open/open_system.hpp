#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace qoslb {

/// Open-system (M/G-style) realization of QoS load balancing: users arrive
/// as a Poisson stream, live for a geometrically distributed number of
/// rounds, and the admission protocol runs continuously in between. There is
/// no "convergence" in an open system — the question (experiment E15) is the
/// steady-state *violation fraction* (user-rounds spent unsatisfied) as the
/// offered load approaches saturation.
struct OpenSystemConfig {
  std::size_t num_resources = 64;
  double capacity = 1.0;
  /// Expected arrivals per round (Poisson).
  double arrival_rate = 8.0;
  /// Expected lifetime in rounds (departure probability 1/mean per round).
  double mean_lifetime = 200.0;
  /// Requirement band for arrivals; offered load per resource is
  /// arrival_rate · mean_lifetime · E[q] / (m · capacity).
  double q_lo = 0.02;
  double q_hi = 0.05;
  std::uint64_t rounds = 2000;
  std::uint64_t warmup_rounds = 500;  // excluded from the metrics
  std::uint64_t seed = 1;
};

struct OpenSystemMetrics {
  double mean_population = 0.0;
  double mean_unsatisfied = 0.0;
  /// Unsatisfied user-rounds / total user-rounds, after warmup.
  double violation_fraction = 0.0;
  /// Arrivals that departed without ever being satisfied.
  std::uint64_t never_satisfied = 0;
  /// Mean rounds from arrival to first satisfaction (satisfied arrivals only).
  double mean_rounds_to_satisfaction = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t migrations = 0;
  std::uint64_t probes = 0;
};

/// Runs the open system with the admission-gated protocol.
OpenSystemMetrics run_open_system(const OpenSystemConfig& config);

}  // namespace qoslb
