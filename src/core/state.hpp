#pragma once

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/satisfaction_index.hpp"
#include "core/types.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {

/// A complete assignment of users to resources plus the derived load vector.
/// Holds a non-owning reference to its Instance (which must outlive it).
/// move() maintains the loads incrementally in O(1).
///
/// The storage is structure-of-arrays (docs/performance.md): three parallel
/// contiguous arrays — `assignment_[u]`, `loads_[r]`, and
/// `current_thresholds_[u]` (user u's threshold on its *current* resource,
/// maintained by move()) — so the satisfaction predicate is one branchless
/// comparison over streamed memory,
///
///     satisfied(u)  <=>  loads_[assignment_[u]] <= current_thresholds_[u],
///
/// and whole-population checks vectorize (core/satisfaction_scan.hpp). The
/// raw views below hand these arrays to the round hot path; they are
/// read-only and valid until the next mutating call.
class State {
 public:
  State(const Instance& instance, std::vector<ResourceId> assignment);

  /// Every user on resource `r`.
  static State all_on(const Instance& instance, ResourceId r);

  /// User u on resource u mod m (balanced deterministic start).
  static State round_robin(const Instance& instance);

  /// Independent uniform placement.
  static State random(const Instance& instance, Xoshiro256& rng);

  /// Sequential power-of-two-choices placement: each user samples two
  /// resources and joins the one with the smaller current load (ties toward
  /// the first sample). Classic O(log log n) max-load start.
  static State two_choices(const Instance& instance, Xoshiro256& rng);

  const Instance& instance() const { return *instance_; }
  std::size_t num_users() const { return assignment_.size(); }
  std::size_t num_resources() const { return loads_.size(); }

  ResourceId resource_of(UserId u) const;
  int load(ResourceId r) const;
  const std::vector<int>& loads() const { return loads_; }

  /// SoA views for the round hot path: the full assignment array and the
  /// per-user cached threshold-on-current-resource array (always equal to
  /// instance().threshold(u, resource_of(u)); check_invariants() audits the
  /// cache). Unlike resource_of(), reads through these views skip the
  /// per-call range check — callers iterate [0, num_users()).
  const std::vector<ResourceId>& assignment() const { return assignment_; }
  const std::vector<int>& current_thresholds() const {
    return current_thresholds_;
  }

  /// Resource liveness (mid-run churn, docs/faults.md). Every resource
  /// starts live; a dead resource stays in the load vector (id-stable) but
  /// is excluded from protocol sampling and deviation checks. Flipping
  /// liveness never touches loads — the engine evicts residents explicitly.
  bool resource_live(ResourceId r) const;
  std::size_t num_live_resources() const { return live_list_.size(); }

  /// The live resource ids, ascending. With every resource live this is the
  /// identity list [0, m), so sampling `live[uniform(live.size())]` draws
  /// bit-identically to the historical `uniform(num_resources())`.
  const std::vector<ResourceId>& live_resources() const { return live_list_; }

  /// Flips resource `r`'s liveness. Rejects no-op flips (they indicate a
  /// schedule bug) and killing the last live resource.
  void set_resource_live(ResourceId r, bool live);

  /// Moves user u to resource r (no-op allowed when r == current).
  void move(UserId u, ResourceId r);

  /// Quality currently experienced by user u.
  double quality_of(UserId u) const;

  /// True iff user u's requirement is met in the current state.
  bool satisfied(UserId u) const;

  /// Turns on the incremental satisfaction index (idempotent; O(n log n)
  /// build). Afterwards count_satisfied() is O(1), unsatisfied_view() is
  /// available, and every move() additionally maintains the index in
  /// O(log + #satisfaction flips). The engine enables this on every state
  /// it drives; states used as plain containers can stay untracked.
  void enable_satisfaction_tracking();
  bool satisfaction_tracking() const { return index_.has_value(); }

  /// The currently unsatisfied users in unspecified order (valid until the
  /// next move). Requires satisfaction tracking.
  const std::vector<UserId>& unsatisfied_view() const;

  std::size_t count_satisfied() const;
  std::size_t count_unsatisfied() const { return num_users() - count_satisfied(); }

  int max_load() const;
  int min_load() const;

  /// Recomputes loads from the assignment and compares; additionally
  /// cross-checks the satisfaction index against a recompute and verifies
  /// no user resides on a dead resource. Throws on any mismatch.
  void check_invariants() const;

 private:
  // Only assignment_ and live_ reach the checkpoint; everything else is
  // derived from them (SnapshotV1::make_state reconstructs via rebind +
  // set_resource_live), which QL014 requires us to say explicitly.
  const Instance* instance_;  // qoslb-snapshot: transient
  std::vector<ResourceId> assignment_;
  std::vector<int> loads_;  // qoslb-snapshot: transient
  // threshold(u, assignment_[u])
  std::vector<int> current_thresholds_;  // qoslb-snapshot: transient
  std::vector<std::uint8_t> live_;
  // live ids, ascending
  std::vector<ResourceId> live_list_;  // qoslb-snapshot: transient
  std::optional<SatisfactionIndex<int>> index_;  // qoslb-snapshot: transient
};

}  // namespace qoslb
