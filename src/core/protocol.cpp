#include "core/protocol.hpp"

#include "core/protocols/common.hpp"
#include "util/check.hpp"

namespace qoslb {

void Protocol::step(State& state, Xoshiro256& rng, Counters& counters) {
  QOSLB_REQUIRE(supports_step_range(),
                "protocol overrides neither step() nor step_range()");
  // Single-shard realization of the round: same decide logic, the caller's
  // sequential RNG, so this is bit-identical however many ranges the decide
  // loop is split into (the draws are consumed in user order either way).
  const std::vector<int> snapshot = state.loads();
  std::vector<MigrationBuffer> shards(1);
  AnyRng any(rng);
  step_range(state, snapshot, 0, static_cast<UserId>(state.num_users()),
             shards[0], any, counters);
  commit_round(state, shards, counters);
}

void Protocol::step_range(const State& state, const std::vector<int>&, UserId,
                          UserId, MigrationBuffer&, AnyRng&, Counters&) {
  (void)state;
  QOSLB_REQUIRE(false, "step_range() is not implemented by " + name());
}

void Protocol::commit_round(State& state, std::vector<MigrationBuffer>& shards,
                            Counters& counters) {
  for (MigrationBuffer& shard : shards)
    apply_all(state, shard.requests, counters);
}

}  // namespace qoslb
