#include "core/protocol.hpp"

#include <numeric>

#include "core/protocols/common.hpp"
#include "util/check.hpp"

namespace qoslb {

void Protocol::step(State& state, Xoshiro256& rng, Counters& counters) {
  QOSLB_REQUIRE(supports_step_users(),
                "protocol overrides neither step() nor step_users()");
  // Single-shard realization of the round: one draw of the caller's RNG
  // keys the round's per-user Philox substreams, so (protocol, rng state)
  // pins the realization exactly, and the outcome is bit-identical however
  // the user list is later split into shards.
  const std::vector<int> snapshot = state.loads();
  std::vector<UserId> users(state.num_users());
  std::iota(users.begin(), users.end(), UserId{0});
  std::vector<MigrationBuffer> shards(1);
  const RoundRng streams(rng(), 0);
  step_users(state, snapshot, users.data(), users.size(), shards[0], streams,
             counters);
  commit_round(state, shards, counters);
}

void Protocol::step_users(const State& state, const std::vector<int>&,
                          const UserId*, std::size_t, MigrationBuffer&,
                          const RoundRng&, Counters&) {
  (void)state;
  QOSLB_REQUIRE(false, "step_users() is not implemented by " + name());
}

void Protocol::commit_round(State& state, std::vector<MigrationBuffer>& shards,
                            Counters& counters) {
  for (MigrationBuffer& shard : shards)
    apply_all(state, shard.requests, counters);
}

void Protocol::snapshot_write(std::ostream& out) const { (void)out; }

void Protocol::snapshot_read(std::istream& in) { (void)in; }

}  // namespace qoslb
