#include "core/satisfaction.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace qoslb {

bool satisfied_after_move(const State& state, UserId u, ResourceId r) {
  const Instance& instance = state.instance();
  const int post_load =
      state.resource_of(u) == r ? state.load(r) : state.load(r) + 1;
  return post_load <= instance.threshold(u, r);
}

bool has_satisfying_deviation(const State& state, UserId u) {
  const ResourceId current = state.resource_of(u);
  // Dead resources are not migration targets, so they cannot ground a
  // deviation — otherwise a degraded world could never reach equilibrium.
  for (const ResourceId r : state.live_resources())
    if (r != current && satisfied_after_move(state, u, r)) return true;
  return false;
}

ResourceId best_satisfying_deviation(const State& state, UserId u) {
  const Instance& instance = state.instance();
  const ResourceId current = state.resource_of(u);
  ResourceId best = kNoResource;
  double best_quality = 0.0;
  for (const ResourceId r : state.live_resources()) {
    if (r == current || !satisfied_after_move(state, u, r)) continue;
    const double quality = instance.quality(u, r, state.load(r) + 1);
    if (best == kNoResource || quality > best_quality) {
      best = r;
      best_quality = quality;
    }
  }
  return best;
}

namespace {

/// Identical-capacity fast path: a user has a satisfying deviation iff
/// min-load-excluding-own + 1 <= its threshold, so only the two smallest
/// loads (with an argmin) are needed. `unsatisfied` iterates the candidate
/// users — all of them for an untracked state, just the tracked unsatisfied
/// view otherwise (every satisfied user is skipped anyway).
template <typename Unsatisfied>
bool equilibrium_identical(const State& state, const Unsatisfied& unsatisfied) {
  const Instance& instance = state.instance();
  const auto& loads = state.loads();
  // Only live resources can receive a deviation; with every resource live
  // the list is the identity and this is the historical all-resource scan.
  const auto& live = state.live_resources();
  ResourceId argmin = live[0];
  int min1 = loads[argmin];
  int min2 = std::numeric_limits<int>::max();
  for (std::size_t i = 1; i < live.size(); ++i) {
    const ResourceId r = live[i];
    if (loads[r] < min1) {
      min2 = min1;
      min1 = loads[r];
      argmin = r;
    } else if (loads[r] < min2) {
      min2 = loads[r];
    }
  }
  for (const UserId u : unsatisfied) {
    if (state.satisfied(u)) continue;
    const int candidate = state.resource_of(u) == argmin ? min2 : min1;
    // min2 stays at the sentinel when only one resource is live: the user
    // sitting there has nowhere to deviate to.
    if (candidate == std::numeric_limits<int>::max()) continue;
    // Thresholds are identical across resources for identical capacities.
    if (candidate + 1 <= instance.threshold(u, 0)) return false;
  }
  return true;
}

/// Counting iterable over [0, n) so both equilibrium paths share one body.
struct AllUsers {
  struct Iterator {
    UserId u;
    UserId operator*() const { return u; }
    Iterator& operator++() { ++u; return *this; }
    bool operator!=(const Iterator& other) const { return u != other.u; }
  };
  std::size_t n;
  Iterator begin() const { return {0}; }
  Iterator end() const { return {static_cast<UserId>(n)}; }
};

template <typename Unsatisfied>
bool equilibrium_general(const State& state, const Unsatisfied& unsatisfied) {
  for (const UserId u : unsatisfied)
    if (!state.satisfied(u) && has_satisfying_deviation(state, u)) return false;
  return true;
}

}  // namespace

bool is_satisfaction_equilibrium(const State& state) {
  // The fast path relies on thresholds being identical across resources for
  // each user, which needs identical capacities AND uniform rates.
  const bool identical = state.instance().identical_capacities() &&
                         state.instance().uniform_rates() &&
                         state.num_resources() > 1;
  // With satisfaction tracking on, only the unsatisfied view needs checking
  // — the equilibrium condition quantifies over unsatisfied users — which
  // makes the convergence-tail check O(|unsatisfied|), not O(n).
  if (state.satisfaction_tracking()) {
    const auto& unsatisfied = state.unsatisfied_view();
    return identical ? equilibrium_identical(state, unsatisfied)
                     : equilibrium_general(state, unsatisfied);
  }
  const AllUsers all{state.num_users()};
  return identical ? equilibrium_identical(state, all)
                   : equilibrium_general(state, all);
}

std::vector<UserId> unsatisfied_users(const State& state) {
  if (state.satisfaction_tracking()) {
    std::vector<UserId> out = state.unsatisfied_view();
    std::sort(out.begin(), out.end());  // the view's order is unspecified
    return out;
  }
  std::vector<UserId> out;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (!state.satisfied(u)) out.push_back(u);
  return out;
}

}  // namespace qoslb
