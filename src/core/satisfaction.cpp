#include "core/satisfaction.hpp"

#include <limits>

#include "util/check.hpp"

namespace qoslb {

bool satisfied_after_move(const State& state, UserId u, ResourceId r) {
  const Instance& instance = state.instance();
  const int post_load =
      state.resource_of(u) == r ? state.load(r) : state.load(r) + 1;
  return post_load <= instance.threshold(u, r);
}

bool has_satisfying_deviation(const State& state, UserId u) {
  const ResourceId current = state.resource_of(u);
  for (ResourceId r = 0; r < state.num_resources(); ++r)
    if (r != current && satisfied_after_move(state, u, r)) return true;
  return false;
}

ResourceId best_satisfying_deviation(const State& state, UserId u) {
  const Instance& instance = state.instance();
  const ResourceId current = state.resource_of(u);
  ResourceId best = kNoResource;
  double best_quality = 0.0;
  for (ResourceId r = 0; r < state.num_resources(); ++r) {
    if (r == current || !satisfied_after_move(state, u, r)) continue;
    const double quality = instance.quality(r, state.load(r) + 1);
    if (best == kNoResource || quality > best_quality) {
      best = r;
      best_quality = quality;
    }
  }
  return best;
}

namespace {

/// Identical-capacity fast path: a user has a satisfying deviation iff
/// min-load-excluding-own + 1 <= its threshold, so only the two smallest
/// loads (with an argmin) are needed.
bool equilibrium_identical(const State& state) {
  const Instance& instance = state.instance();
  const auto& loads = state.loads();
  ResourceId argmin = 0;
  int min1 = loads[0];
  int min2 = std::numeric_limits<int>::max();
  for (ResourceId r = 1; r < loads.size(); ++r) {
    if (loads[r] < min1) {
      min2 = min1;
      min1 = loads[r];
      argmin = r;
    } else if (loads[r] < min2) {
      min2 = loads[r];
    }
  }
  for (UserId u = 0; u < state.num_users(); ++u) {
    if (state.satisfied(u)) continue;
    const int candidate = state.resource_of(u) == argmin ? min2 : min1;
    // Thresholds are identical across resources for identical capacities.
    if (candidate + 1 <= instance.threshold(u, 0)) return false;
  }
  return true;
}

}  // namespace

bool is_satisfaction_equilibrium(const State& state) {
  if (state.instance().identical_capacities() && state.num_resources() > 1)
    return equilibrium_identical(state);
  for (UserId u = 0; u < state.num_users(); ++u)
    if (!state.satisfied(u) && has_satisfying_deviation(state, u)) return false;
  return true;
}

std::vector<UserId> unsatisfied_users(const State& state) {
  std::vector<UserId> out;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (!state.satisfied(u)) out.push_back(u);
  return out;
}

}  // namespace qoslb
