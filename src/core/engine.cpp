#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>

#include "core/async/async_protocols.hpp"
#include "core/potential.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "core/weighted/weighted_state.hpp"
#include "obs/decision_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace_sink.hpp"
#include "rng/splitmix64.hpp"
#include "sim/parallel_round_engine.hpp"
#include "sim/round_engine.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

/// Exports the run's final counters, fault stats, state gauges, and phase
/// timers into the attached MetricsRegistry (catalog in
/// docs/observability.md). Called once per run, after the loop — never from
/// the hot path.
void export_metrics(const obs::Telemetry& options, EngineResult& result,
                    const State* state) {
  if (options.metrics == nullptr) return;
  obs::MetricsRegistry& m = *options.metrics;
  const Counters& c = result.counters;
  m.add(m.counter("engine/rounds"), c.rounds);
  m.add(m.counter("engine/migrations"), c.migrations);
  m.add(m.counter("engine/messages"), c.messages());
  m.add(m.counter("engine/probes"), c.probes);
  m.add(m.counter("engine/migrate_requests"), c.migrate_requests);
  m.add(m.counter("engine/grants"), c.grants);
  m.add(m.counter("engine/rejects"), c.rejects);
  m.add(m.counter("engine/timeouts"), c.timeouts);
  m.add(m.counter("engine/retries"), c.retries);
  m.add(m.counter("engine/stale_drops"), c.stale_drops);
  m.add(m.counter("trace/rows"), result.telemetry.trace_rows);
  m.set(m.gauge("engine/threads"), static_cast<double>(result.threads_used));
  if (result.events > 0 || result.virtual_time > 0.0) {
    m.add(m.counter("des/events"), result.events);
    m.set(m.gauge("des/virtual_time"), result.virtual_time);
  }
  if (result.faults.total() > 0) {
    m.add(m.counter("faults/dropped"), result.faults.dropped);
    m.add(m.counter("faults/duplicated"), result.faults.duplicated);
    m.add(m.counter("faults/delayed"), result.faults.delayed);
    m.add(m.counter("faults/crash_dropped"), result.faults.crash_dropped);
  }
  if (result.churn.failures > 0) {
    m.add(m.counter("churn/failures"), result.churn.failures);
    m.add(m.counter("churn/recoveries"), result.churn.recoveries);
    m.add(m.counter("churn/evicted"), result.churn.evicted);
    m.set(m.gauge("churn/max_dip_depth"), result.churn.max_dip_depth);
    m.set(m.gauge("churn/max_recovery_rounds"),
          static_cast<double>(result.churn.max_recovery_rounds));
  }
  if (state != nullptr) {
    m.set(m.gauge("state/unsatisfied"),
          static_cast<double>(state->count_unsatisfied()));
    m.set(m.gauge("state/max_load"), static_cast<double>(state->max_load()));
    m.set(m.gauge("state/potential"), rosenthal_potential(*state));
  }
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    const obs::PhaseStat& stat = result.telemetry.phases.stats[i];
    if (stat.count == 0) continue;
    const auto phase = static_cast<obs::Phase>(i);
    m.set(m.gauge(std::string("phase/") + obs::phase_name(phase) +
                  "_seconds"),
          stat.seconds);
  }
  if (options.decisions != nullptr) {
    m.add(m.counter("decisions/events"), result.telemetry.decision_events);
    m.add(m.counter("decisions/spans"), result.telemetry.span_events);
    m.add(m.counter("diag/herding_findings"),
          result.telemetry.herding_findings);
    m.set(m.gauge("diag/max_herding_ratio"),
          result.telemetry.max_herding_ratio);
  }
  if (options.perf != nullptr) {
    m.set(m.gauge("perf/available"),
          result.telemetry.perf_available ? 1.0 : 0.0);
    for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
      const obs::PerfSample& sample = result.telemetry.perf.totals[i];
      if (sample.cycles == 0 && sample.instructions == 0) continue;
      const auto phase = static_cast<obs::Phase>(i);
      const std::string prefix = std::string("perf/") + obs::phase_name(phase);
      m.set(m.gauge(prefix + "_cycles"), static_cast<double>(sample.cycles));
      m.set(m.gauge(prefix + "_instructions"),
            static_cast<double>(sample.instructions));
      m.set(m.gauge(prefix + "_cache_misses"),
            static_cast<double>(sample.cache_misses));
      m.set(m.gauge(prefix + "_branch_misses"),
            static_cast<double>(sample.branch_misses));
    }
  }
}

/// RAII per-phase hardware-counter attribution, mirroring ScopedPhase: an
/// unattached or unavailable wrapper costs one branch, and reads happen on
/// the driving thread only (perf fds are per-thread; see
/// obs/perf_counters.hpp on what that misses at threads > 1).
class ScopedPerf {
 public:
  ScopedPerf(obs::PerfCounters* perf, obs::PhasePerf* totals, obs::Phase phase)
      : perf_(perf != nullptr && perf->available() ? perf : nullptr),
        totals_(totals), phase_(phase),
        start_(perf_ != nullptr ? perf_->read() : obs::PerfSample{}) {}

  ScopedPerf(const ScopedPerf&) = delete;
  ScopedPerf& operator=(const ScopedPerf&) = delete;

  ~ScopedPerf() {
    if (perf_ != nullptr) totals_->add(phase_, start_, perf_->read());
  }

 private:
  obs::PerfCounters* perf_;
  obs::PhasePerf* totals_;
  obs::Phase phase_;
  obs::PerfSample start_;
};

/// (after - before) - (claimed1 - claimed0), per counter, saturating at
/// zero: the step share of a whole-round reading net of what the commit
/// phase already attributed — the hardware-counter twin of the round-wall
/// minus commit-bucket clock subtraction in drive_step_users.
obs::PerfSample perf_step_share(const obs::PerfSample& before,
                                const obs::PerfSample& after,
                                const obs::PerfSample& claimed0,
                                const obs::PerfSample& claimed1) {
  const auto share = [](std::uint64_t b, std::uint64_t a, std::uint64_t c0,
                        std::uint64_t c1) -> std::uint64_t {
    const std::uint64_t total = a > b ? a - b : 0;
    const std::uint64_t claimed = c1 > c0 ? c1 - c0 : 0;
    return total > claimed ? total - claimed : 0;
  };
  obs::PerfSample out;
  out.cycles = share(before.cycles, after.cycles, claimed0.cycles,
                     claimed1.cycles);
  out.instructions = share(before.instructions, after.instructions,
                           claimed0.instructions, claimed1.instructions);
  out.cache_misses = share(before.cache_misses, after.cache_misses,
                           claimed0.cache_misses, claimed1.cache_misses);
  out.branch_misses = share(before.branch_misses, after.branch_misses,
                            claimed0.branch_misses, claimed1.branch_misses);
  return out;
}

/// Per-round migration-flow aggregates, tallied by UserSetRoundTask::commit
/// from the shard-ordered request list (so every field is
/// thread/mode/layout-invariant) and turned into a DiagRow + detector
/// verdict by TelemetryDriver::decision_round.
struct RoundDiagData {
  std::uint64_t migrations = 0;  // granted moves this round
  std::uint64_t inflow_max = 0;
  ResourceId inflow_argmax = kNoResource;
  std::uint64_t outflow_at_argmax = 0;
};

/// Per-run driver for config.telemetry. Every hook reads simulation state
/// from the driving thread, strictly between rounds, and feeds nothing back
/// — which is why sinks on/off cannot change the realization
/// (tests/core_telemetry_test.cpp pins the assignment hashes).
class TelemetryDriver {
 public:
  TelemetryDriver(const obs::Telemetry& options, EngineResult& result,
                  const Protocol& protocol, const State& state,
                  std::uint64_t seed, std::size_t threads, const char* mode)
      : options_(options), result_(&result) {
    if (!options_.any()) return;
    result_->telemetry.enabled = true;
    result_->telemetry.perf_available =
        options_.perf != nullptr && options_.perf->available();
    if (options_.sink != nullptr || options_.decisions != nullptr) {
      obs::TraceRunInfo info;
      info.protocol = protocol.name();
      info.users = state.num_users();
      info.resources = state.num_resources();
      info.seed = seed;
      info.threads = threads;
      info.mode = mode;
      if (options_.sink != nullptr) options_.sink->begin_run(info);
      if (options_.decisions != nullptr)
        options_.decisions->begin_run(info, options_.decision_sample);
    }
    if (options_.metrics != nullptr) {
      const auto hi =
          static_cast<double>(std::max<std::size_t>(state.num_users(), 1));
      active_hist_ =
          options_.metrics->histogram("engine/active_set_size", 0.0, hi, 32);
    }
  }

  const obs::Clock* clock() const { return options_.clock; }
  obs::PhaseTimers* timers() { return &result_->telemetry.phases; }
  obs::PerfCounters* perf() const { return options_.perf; }
  obs::PhasePerf* phase_perf() { return &result_->telemetry.perf; }
  bool decisions_on() const { return options_.decisions != nullptr; }
  std::uint64_t decision_sample() const { return options_.decision_sample; }

  /// Round-boundary hook (round 0 = the pre-run snapshot): samples the
  /// active-set-size histogram for executed rounds and emits the trace row,
  /// thinned by trace_every (round 0 and — via finish() — the final round
  /// are always kept).
  void round_row(std::uint64_t round, const State& state,
                 std::uint64_t active_size) {
    if (round != 0 && active_hist_.valid())
      options_.metrics->observe(active_hist_,
                                static_cast<double>(active_size));
    if (options_.sink == nullptr) return;
    if (round != 0 && options_.trace_every > 1 &&
        round % options_.trace_every != 0) {
      // Held back; finish() flushes it if this stays the run's last round
      // (the state it would describe is then still the current state).
      pending_ = true;
      pending_round_ = round;
      pending_active_ = active_size;
      return;
    }
    emit(round, state, active_size);
  }

  /// Post-commit hook for one executed round (driving thread, decisions
  /// sink attached): drains the per-shard decision records in shard order —
  /// resolving `to`/`granted`/`satisfied_after` against the committed state,
  /// which is what captures admission rejects — then emits the round's
  /// diagnostics row and runs the herding detector.
  void decision_round(std::uint64_t round, const State& state,
                      const std::vector<DecisionScratch>& shards,
                      const RoundDiagData& diag) {
    obs::ScopedPhase phase(options_.clock, timers(), obs::Phase::kTrace);
    ScopedPerf perf(options_.perf, phase_perf(), obs::Phase::kTrace);
    obs::DecisionSink& sink = *options_.decisions;
    const auto to_field = [](ResourceId r) {
      return r == kNoResource ? obs::kNoDecisionTarget
                              : static_cast<std::int64_t>(r);
    };
    for (const DecisionScratch& shard : shards) {
      for (const DecisionRecord& rec : shard.records) {
        obs::DecisionEvent event;
        event.round = round;
        event.user = rec.user;
        event.from = to_field(rec.from);
        event.probe = to_field(rec.probe);
        event.target = to_field(rec.target);
        const ResourceId now = state.resource_of(rec.user);
        event.to = to_field(now);
        event.threshold = rec.threshold;
        event.requested = rec.target != kNoResource;
        event.granted = event.requested && now == rec.target;
        event.satisfied_before = rec.satisfied_before;
        event.satisfied_after = state.satisfied(rec.user);
        sink.decision(event);
        ++result_->telemetry.decision_events;
      }
    }
    obs::DiagRow row;
    row.round = round;
    row.migrations = diag.migrations;
    row.inflow_max = diag.inflow_max;
    row.inflow_argmax = to_field(diag.inflow_argmax);
    row.outflow_at_argmax = diag.outflow_at_argmax;
    row.herding_ratio =
        static_cast<double>(diag.inflow_max) /
        static_cast<double>(std::max<std::uint64_t>(1, diag.outflow_at_argmax));
    const auto& loads = state.loads();
    const auto& live = state.live_resources();
    double mean = 0.0;
    for (const ResourceId r : live) mean += loads[r];
    mean /= static_cast<double>(live.size());
    double sq = 0.0;
    for (const ResourceId r : live) {
      const double dev = loads[r] - mean;
      row.l_inf = std::max(row.l_inf, std::abs(dev));
      sq += dev * dev;
    }
    row.l2 = std::sqrt(sq / static_cast<double>(live.size()));
    sink.diag(row);
    result_->telemetry.max_herding_ratio =
        std::max(result_->telemetry.max_herding_ratio, row.herding_ratio);
    if (row.inflow_max > 1 && row.herding_ratio > options_.herding_factor) {
      obs::DecisionFinding finding;
      finding.detector = "herding";
      finding.round = round;
      finding.resource = row.inflow_argmax;
      finding.inflow = row.inflow_max;
      finding.outflow = row.outflow_at_argmax;
      finding.ratio = row.herding_ratio;
      sink.finding(finding);
      ++result_->telemetry.herding_findings;
    }
  }

  /// Flushes a held-back final row, closes the sinks, exports the metrics.
  void finish(const State& state) {
    if (!options_.any()) return;
    if (options_.sink != nullptr) {
      if (pending_) emit(pending_round_, state, pending_active_);
      options_.sink->end_run();
    }
    if (options_.decisions != nullptr) options_.decisions->end_run();
    export_metrics(options_, *result_, &state);
  }

 private:
  void emit(std::uint64_t round, const State& state,
            std::uint64_t active_size) {
    pending_ = false;
    obs::ScopedPhase phase(options_.clock, timers(), obs::Phase::kTrace);
    obs::TraceRow row;
    row.round = round;
    row.unsatisfied = state.count_unsatisfied();
    row.migrations = result_->counters.migrations;
    row.messages = result_->counters.messages();
    row.max_load = state.max_load();
    row.potential = rosenthal_potential(state);
    row.active_size = active_size;
    options_.sink->row(row);
    ++result_->telemetry.trace_rows;
  }

  obs::Telemetry options_;
  EngineResult* result_;
  obs::HistogramHandle active_hist_;
  bool pending_ = false;
  std::uint64_t pending_round_ = 0;
  std::uint64_t pending_active_ = 0;
};

/// Classic sequential driver (the former runner.cpp ProtocolTask) for
/// protocols that only implement step(): one step() per round, the
/// stability check on the fast path (all satisfied) every round and on the
/// period otherwise. All satisfaction reads go through the state's O(1)
/// tracked counter — the engine enables tracking before driving the task,
/// which also removed the historical duplicate O(n) recount around round 0.
class SequentialTask : public RoundTask {
 public:
  SequentialTask(Protocol& protocol, State& state, Xoshiro256& rng,
                 const EngineConfig& config, EngineResult& result,
                 TelemetryDriver& telemetry)
      : protocol_(&protocol), state_(&state), rng_(&rng), config_(&config),
        result_(&result), telemetry_(&telemetry) {}

  void round(std::uint64_t round_index) override {
    (void)round_index;
    {
      obs::ScopedPhase phase(telemetry_->clock(), telemetry_->timers(),
                             obs::Phase::kStep);
      ScopedPerf perf(telemetry_->perf(), telemetry_->phase_perf(),
                      obs::Phase::kStep);
      protocol_->step(*state_, *rng_, result_->counters);
    }
    ++result_->counters.rounds;
    if (config_->record_trajectory)
      result_->unsatisfied_trajectory.push_back(
          static_cast<std::uint32_t>(state_->count_unsatisfied()));
    ++rounds_done_;
    if (config_->invariant_check_period != 0 &&
        rounds_done_ % config_->invariant_check_period == 0)
      state_->check_invariants();
    // step() scans every user, so the round's active size is n.
    telemetry_->round_row(rounds_done_, *state_, state_->num_users());
  }

  bool converged() const override {
    obs::ScopedPhase phase(telemetry_->clock(), telemetry_->timers(),
                           obs::Phase::kSatisfactionCheck);
    ScopedPerf perf(telemetry_->perf(), telemetry_->phase_perf(),
                    obs::Phase::kSatisfactionCheck);
    // Fast path: full satisfaction implies stability for the satisfaction
    // protocols and is cheap to confirm for the others.
    if (state_->count_satisfied() == state_->num_users())
      return protocol_->is_stable(*state_);
    if (rounds_done_ % config_->stability_check_period == 0)
      return protocol_->is_stable(*state_);
    return false;
  }

 private:
  Protocol* protocol_;
  State* state_;
  Xoshiro256* rng_;
  const EngineConfig* config_;
  EngineResult* result_;
  TelemetryDriver* telemetry_;
  std::uint64_t rounds_done_ = 0;
};

/// Binds Protocol::step_users/commit_round to the sharded round engine over
/// an explicit iteration list (all users in dense mode, the sorted
/// unsatisfied set in active mode): the decide fan-out writes into
/// per-shard buffers and per-shard counters, the commit merges both in
/// shard order — so the outcome is independent of which worker executed
/// which shard. Randomness comes from the round's per-user substreams, so
/// it is independent of the shard partition too.
class UserSetRoundTask : public ShardedRoundTask {
 public:
  UserSetRoundTask(Protocol& protocol, State& state, Counters& counters)
      : protocol_(&protocol), state_(&state), counters_(&counters) {}

  void set_round(const std::vector<UserId>& users, const RoundRng& streams) {
    users_ = &users;
    streams_ = streams;
  }

  void begin_round(std::size_t num_shards) override {
    snapshot_ = state_->loads();
    // Reuse the staging buffers' capacity across rounds: clear the vectors
    // in place instead of destroying them, so steady-state rounds allocate
    // nothing in the fan-out path.
    shards_.resize(num_shards);
    if (decisions_on_) decision_shards_.resize(num_shards);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      MigrationBuffer& shard = shards_[i];
      shard.requests.clear();
      shard.resource_tallies.clear();
      if (decisions_on_) {
        DecisionScratch& scratch = decision_shards_[i];
        scratch.sample_seed = sample_seed_;
        scratch.sample_every = sample_every_;
        scratch.records.clear();
        shard.decisions = &scratch;
      } else {
        shard.decisions = nullptr;
      }
    }
    shard_counters_.assign(num_shards, Counters{});
  }

  void decide(std::size_t shard, std::size_t begin, std::size_t end,
              PhiloxEngine& rng) override {
    (void)rng;  // superseded by the per-user streams in streams_
    protocol_->step_users(*state_, snapshot_, users_->data() + begin,
                          end - begin, shards_[shard], streams_,
                          shard_counters_[shard]);
  }

  /// Phase-timer and perf-counter hookup (driving thread only; null clock
  /// and null perf = no reads).
  void set_telemetry(const obs::Clock* clock, obs::PhaseTimers* timers,
                     obs::PerfCounters* perf, obs::PhasePerf* phase_perf) {
    clock_ = clock;
    timers_ = timers;
    perf_ = perf;
    phase_perf_ = phase_perf;
  }

  /// Turns on per-shard decision recording and round-flow diagnostics.
  void enable_decisions(std::uint64_t sample_seed, std::uint64_t sample_every) {
    decisions_on_ = true;
    sample_seed_ = sample_seed;
    sample_every_ = sample_every;
  }

  const std::vector<DecisionScratch>& decision_shards() const {
    return decision_shards_;
  }
  const RoundDiagData& round_diag() const { return diag_; }

  void commit() override {
    // commit() runs on the caller thread after the decide fan-out joined,
    // so timing it here races with nothing.
    obs::ScopedPhase phase(clock_, timers_, obs::Phase::kCommit);
    ScopedPerf perf(perf_, phase_perf_, obs::Phase::kCommit);
    for (const Counters& shard : shard_counters_) *counters_ += shard;
    if (!decisions_on_) {
      protocol_->commit_round(*state_, shards_, *counters_);
      return;
    }
    // Pre-commit: remember every request's source resource (shard order —
    // one request per user per round), then let the protocol commit, then
    // tally the granted flows. All reads, so the realization is untouched.
    round_moves_.clear();
    for (const MigrationBuffer& shard : shards_)
      for (const MigrationRequest& req : shard.requests)
        round_moves_.push_back(
            PendingMove{req.user, req.target, state_->resource_of(req.user)});
    protocol_->commit_round(*state_, shards_, *counters_);
    inflow_.assign(state_->num_resources(), 0);
    outflow_.assign(state_->num_resources(), 0);
    diag_ = RoundDiagData{};
    for (const PendingMove& mv : round_moves_) {
      if (state_->resource_of(mv.user) != mv.target || mv.target == mv.from)
        continue;
      ++inflow_[mv.target];
      ++outflow_[mv.from];
      ++diag_.migrations;
    }
    for (ResourceId r = 0; r < inflow_.size(); ++r) {
      if (inflow_[r] > diag_.inflow_max) {
        diag_.inflow_max = inflow_[r];
        diag_.inflow_argmax = r;
      }
    }
    if (diag_.inflow_argmax != kNoResource)
      diag_.outflow_at_argmax = outflow_[diag_.inflow_argmax];
  }

 private:
  struct PendingMove {
    UserId user;
    ResourceId target;
    ResourceId from;
  };

  Protocol* protocol_;
  State* state_;
  Counters* counters_;
  const obs::Clock* clock_ = nullptr;
  obs::PhaseTimers* timers_ = nullptr;
  obs::PerfCounters* perf_ = nullptr;
  obs::PhasePerf* phase_perf_ = nullptr;
  const std::vector<UserId>* users_ = nullptr;
  RoundRng streams_;
  std::vector<int> snapshot_;
  std::vector<MigrationBuffer> shards_;
  std::vector<Counters> shard_counters_;
  bool decisions_on_ = false;
  std::uint64_t sample_seed_ = 0;
  std::uint64_t sample_every_ = 1;
  std::vector<DecisionScratch> decision_shards_;
  std::vector<PendingMove> round_moves_;
  std::vector<std::uint64_t> inflow_;
  std::vector<std::uint64_t> outflow_;
  RoundDiagData diag_;
};

EngineResult from_async(const AsyncRunResult& async) {
  EngineResult result;
  result.termination = async.termination;
  result.converged = async.termination == Termination::kQuiesced;
  result.all_satisfied = async.all_satisfied;
  result.final_satisfied = async.satisfied;
  result.virtual_time = async.virtual_time;
  result.events = async.events;
  result.counters = async.counters;
  result.faults = async.faults;
  result.rounds = async.counters.rounds;
  result.telemetry = async.telemetry;
  return result;
}

}  // namespace

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  QOSLB_REQUIRE(config_.stability_check_period >= 1,
                "stability_check_period must be positive");
  QOSLB_REQUIRE(config_.shard_size >= 1, "shard_size must be positive");
  for (std::size_t i = 1; i < config_.snapshot_rounds.size(); ++i)
    QOSLB_REQUIRE(config_.snapshot_rounds[i - 1] < config_.snapshot_rounds[i],
                  "snapshot_rounds must be strictly increasing");
  QOSLB_REQUIRE(config_.snapshot_rounds.empty() ||
                    config_.snapshot_sink != nullptr,
                "snapshot_rounds without a snapshot_sink");
}

EngineResult Engine::run(Protocol& protocol, State& state,
                         Xoshiro256& rng) const {
  // Churn and checkpointing live in the sharded round loop only; the
  // sequential step() path has no round-boundary hook to apply them at.
  QOSLB_REQUIRE(!config_.churn.any() || protocol.supports_step_users(),
                "churn plans need a sharded (step_users) protocol");
  QOSLB_REQUIRE(config_.snapshot_rounds.empty() ||
                    protocol.supports_step_users(),
                "checkpointing needs a sharded (step_users) protocol");
  // A protocol that samples the whole resource set would migrate users onto
  // rate-0 pairs; only opted-in protocols may drive restricted instances.
  QOSLB_REQUIRE(!state.instance().restricted() ||
                    protocol.restricted_assignment_compatible(),
                "protocol '" + protocol.name() +
                    "' does not support restricted-assignment instances");
  protocol.reset();
  // O(1) per-round satisfaction reads on every path; the build is O(n log n)
  // once and idempotent across chained runs on the same state.
  state.enable_satisfaction_tracking();
  if (protocol.supports_step_users())
    return run_step_users(protocol, state, rng);
  return run_sequential(protocol, state, rng);
}

EngineResult Engine::run_sequential(Protocol& protocol, State& state,
                                    Xoshiro256& rng) const {
  EngineResult result;
  TelemetryDriver telemetry(config_.telemetry, result, protocol, state,
                            config_.seed, /*threads=*/1, "sequential");
  telemetry.round_row(0, state, 0);
  SequentialTask task(protocol, state, rng, config_, result, telemetry);
  const RoundRunResult rounds = run_rounds(task, config_.max_rounds);
  result.rounds = rounds.rounds;
  result.converged = rounds.converged;
  result.termination =
      rounds.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.all_satisfied = result.final_satisfied == state.num_users();
  result.threads_used = 1;
  telemetry.finish(state);
  return result;
}

EngineResult Engine::run_step_users(Protocol& protocol, State& state,
                                    Xoshiro256& rng) const {
  // Fold one draw of the caller's RNG into the master seed so replications
  // that advance that RNG (the established seeding idiom) stay distinct
  // while (config, rng state) still pins the run exactly. The folded value
  // is what a checkpoint stores — resume() reuses it without re-folding.
  return drive_step_users(protocol, state, derive_seed(config_.seed, rng()),
                          /*start_round=*/0, Counters{}, ChurnTracker{});
}

namespace {

/// The churn-eviction substream salt: victims of a failed resource draw
/// their relocation target from RoundRng(derive_seed(master, kChurnSalt),
/// round).user_stream(user) — keyed like the decision streams but on a
/// disjoint branch, so evictions are thread/mode-invariant and never
/// perturb protocol draws.
constexpr std::uint64_t kChurnSalt = 0xC0DEFA11ULL;

void apply_churn_event(const ChurnEvent& event, State& state,
                       std::uint64_t master_seed, ChurnTracker& tracker) {
  if (event.kind == ChurnKind::kRecover) {
    state.set_resource_live(event.resource, true);
    tracker.on_recovery();
    return;
  }
  tracker.on_failure(event.round, state.count_satisfied());
  std::vector<UserId> victims;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (state.resource_of(u) == event.resource) victims.push_back(u);
  state.set_resource_live(event.resource, false);
  const auto& live = state.live_resources();
  const RoundRng streams(derive_seed(master_seed, kChurnSalt), event.round);
  const Instance& instance = state.instance();
  std::vector<ResourceId> candidates;
  for (const UserId u : victims) {
    PhiloxEngine rng = streams.user_stream(u);
    if (!instance.restricted()) {
      state.move(u, live[uniform_u64_below(rng, live.size())]);
      continue;
    }
    // Victims of a restricted instance relocate within reachable(u) ∩ live.
    // A user whose only reachable resources are all dead cannot be placed
    // anywhere — that is a schedule bug, reported loudly rather than
    // silently parking the user on a rate-0 pair.
    candidates.clear();
    for (const ResourceId r : instance.reachable(u))
      if (state.resource_live(r)) candidates.push_back(r);
    QOSLB_REQUIRE(!candidates.empty(),
                  "churn stranded user " + std::to_string(u) +
                      ": every reachable resource is dead");
    state.move(u, candidates[uniform_u64_below(rng, candidates.size())]);
  }
  tracker.on_eviction(victims.size());
}

}  // namespace

EngineResult Engine::drive_step_users(Protocol& protocol, State& state,
                                      std::uint64_t master_seed,
                                      std::uint64_t start_round,
                                      Counters start_counters,
                                      ChurnTracker tracker) const {
  config_.churn.validate(state.num_resources());
  EngineResult result;
  result.counters = start_counters;
  result.rounds = start_round;
  const std::size_t n = state.num_users();

  ParallelRoundEngine::Options options;
  options.threads =
      config_.execution == RoundExecution::kSequential ? 1 : config_.threads;
  options.shard_size = config_.shard_size;
  options.seed = master_seed;
  ParallelRoundEngine engine(options);
  UserSetRoundTask task(protocol, state, result.counters);

  // Active mode iterates only the unsatisfied set; protocols whose
  // satisfied users do act (berenbrink) keep the dense scan regardless.
  const bool active =
      config_.mode == EngineMode::kActive && protocol.active_set_compatible();
  std::vector<UserId> iteration;
  if (!active) {
    iteration.resize(n);
    std::iota(iteration.begin(), iteration.end(), UserId{0});
  }

  TelemetryDriver telemetry(config_.telemetry, result, protocol, state,
                            options.seed, engine.threads(),
                            active ? "active" : "dense");
  const obs::Clock* clock = config_.telemetry.clock;
  obs::PhaseTimers* timers = &result.telemetry.phases;
  obs::PerfCounters* perf =
      result.telemetry.perf_available ? config_.telemetry.perf : nullptr;
  obs::PhasePerf* phase_perf = &result.telemetry.perf;
  task.set_telemetry(clock, timers, perf, phase_perf);
  // The decision sample key is the run's master seed — the same value a
  // checkpoint stores — so a resumed run samples the same users.
  if (telemetry.decisions_on())
    task.enable_decisions(master_seed, telemetry.decision_sample());
  telemetry.round_row(0, state, 0);

  // Already-applied schedule entries (rounds before start_round) are part of
  // the checkpointed liveness; only the tail replays.
  const std::vector<ChurnEvent>& events = config_.churn.events;
  std::size_t churn_idx = 0;
  while (churn_idx < events.size() && events[churn_idx].round < start_round)
    ++churn_idx;
  std::size_t snap_idx = 0;
  while (snap_idx < config_.snapshot_rounds.size() &&
         config_.snapshot_rounds[snap_idx] < start_round)
    ++snap_idx;
  const auto pending_churn = [&] { return churn_idx < events.size(); };

  std::uint64_t rounds_done = start_round;
  const auto converged = [&] {
    // A run with unapplied churn events is never done — the schedule must
    // play out (and the system re-converge) first.
    if (pending_churn()) return false;
    obs::ScopedPhase phase(clock, timers, obs::Phase::kSatisfactionCheck);
    ScopedPerf perf_scope(perf, phase_perf, obs::Phase::kSatisfactionCheck);
    if (state.count_satisfied() == n) return protocol.is_stable(state);
    if (rounds_done % config_.stability_check_period == 0)
      return protocol.is_stable(state);
    return false;
  };

  if (converged()) {
    result.converged = true;
  } else {
    for (std::uint64_t r = start_round; r < config_.max_rounds; ++r) {
      // Checkpoint at the boundary, before this round's churn and decisions
      // — exactly the cut resume() restarts from.
      if (snap_idx < config_.snapshot_rounds.size() &&
          config_.snapshot_rounds[snap_idx] == r) {
        ++snap_idx;
        config_.snapshot_sink(capture_snapshot(protocol, state, master_seed,
                                               r, result.counters, tracker));
      }
      while (churn_idx < events.size() && events[churn_idx].round == r) {
        apply_churn_event(events[churn_idx], state, master_seed, tracker);
        ++churn_idx;
      }
      if (active) {
        // Sorted copy of the unsatisfied view: per-user streams make the
        // draws order-independent, but the ascending order keeps the
        // applied migration sequence — and hence the trajectory — exactly
        // the dense scan's.
        iteration.assign(state.unsatisfied_view().begin(),
                         state.unsatisfied_view().end());
        std::sort(iteration.begin(), iteration.end());
      }
      task.set_round(iteration, RoundRng(options.seed, r));
      // Mirror the clock's subtraction for the hardware counters: whole-
      // round reading minus what commit() already claimed is the step share.
      const obs::PerfSample perf_commit0 =
          perf != nullptr ? (*phase_perf)[obs::Phase::kCommit]
                          : obs::PerfSample{};
      const obs::PerfSample perf_before =
          perf != nullptr ? perf->read() : obs::PerfSample{};
      if (clock != nullptr) {
        // The decide fan-out joins inside round() and commit() runs on this
        // thread, so round-wall minus the commit's own bucket delta is the
        // decide (step) time — no per-worker clock reads needed.
        const double commit_before =
            (*timers)[obs::Phase::kCommit].seconds;
        const double start = clock->now();
        engine.round(task, iteration.size(), r);
        const double elapsed = clock->now() - start;
        timers->add(obs::Phase::kStep,
                    elapsed - ((*timers)[obs::Phase::kCommit].seconds -
                               commit_before));
      } else {
        engine.round(task, iteration.size(), r);
      }
      if (perf != nullptr) {
        const obs::PerfSample share = perf_step_share(
            perf_before, perf->read(), perf_commit0,
            (*phase_perf)[obs::Phase::kCommit]);
        (*phase_perf)[obs::Phase::kStep].cycles += share.cycles;
        (*phase_perf)[obs::Phase::kStep].instructions += share.instructions;
        (*phase_perf)[obs::Phase::kStep].cache_misses += share.cache_misses;
        (*phase_perf)[obs::Phase::kStep].branch_misses += share.branch_misses;
      }
      ++result.counters.rounds;
      ++result.rounds;
      ++rounds_done;
      if (telemetry.decisions_on())
        telemetry.decision_round(rounds_done, state, task.decision_shards(),
                                 task.round_diag());
      tracker.on_round_end(rounds_done, state.count_satisfied(), n);
      if (config_.record_trajectory)
        result.unsatisfied_trajectory.push_back(
            static_cast<std::uint32_t>(n - state.count_satisfied()));
      if (config_.invariant_check_period != 0 &&
          rounds_done % config_.invariant_check_period == 0)
        state.check_invariants();
      telemetry.round_row(rounds_done, state, iteration.size());
      if (converged()) {
        result.converged = true;
        break;
      }
    }
  }

  result.termination =
      result.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.all_satisfied = result.final_satisfied == n;
  result.threads_used = engine.threads();
  result.churn = tracker.stats;
  telemetry.finish(state);
  return result;
}

SnapshotV1 Engine::save_snapshot(Protocol& protocol, State& state,
                                 Xoshiro256& rng,
                                 std::uint64_t at_round) const {
  QOSLB_REQUIRE(protocol.supports_step_users(),
                "checkpointing needs a sharded (step_users) protocol");
  EngineConfig config = config_;
  config.snapshot_rounds = {at_round};
  std::optional<SnapshotV1> captured;
  config.snapshot_sink = [&captured](const SnapshotV1& snapshot) {
    captured = snapshot;
  };
  Engine(std::move(config)).run(protocol, state, rng);
  QOSLB_REQUIRE(captured.has_value(),
                "the run ended before the requested snapshot round");
  return *std::move(captured);
}

EngineResult Engine::resume(Protocol& protocol, const SnapshotV1& snapshot,
                            State& state) const {
  QOSLB_REQUIRE(protocol.supports_step_users(),
                "resume needs a sharded (step_users) protocol");
  protocol.reset();
  QOSLB_REQUIRE(protocol.name() == snapshot.protocol,
                "protocol '" + protocol.name() +
                    "' does not match the checkpoint's '" + snapshot.protocol +
                    "'");
  QOSLB_REQUIRE(state.num_users() == snapshot.assignment.size() &&
                    state.num_resources() == snapshot.live.size(),
                "state dimensions do not match the checkpoint");
  for (UserId u = 0; u < state.num_users(); ++u)
    QOSLB_REQUIRE(state.resource_of(u) == snapshot.assignment[u],
                  "state assignment does not match the checkpoint");
  for (ResourceId r = 0; r < state.num_resources(); ++r)
    QOSLB_REQUIRE(state.resource_live(r) == (snapshot.live[r] != 0),
                  "state liveness does not match the checkpoint");
  std::istringstream protocol_state(snapshot.protocol_state);
  protocol.snapshot_read(protocol_state);
  state.enable_satisfaction_tracking();
  return drive_step_users(protocol, state, snapshot.master_seed,
                          snapshot.next_round, snapshot.counters,
                          snapshot.churn);
}

EngineResult Engine::run(WeightedProtocol& protocol, WeightedState& state,
                         Xoshiro256& rng) const {
  // The weighted loop checks stability *before* each step (matching the
  // historical run_weighted_protocol semantics exactly).
  EngineResult result;
  protocol.reset();
  state.enable_satisfaction_tracking();
  // Weighted runs fill metrics and phase timers; trace rows are a State
  // concept and stay empty (docs/observability.md).
  result.telemetry.enabled = config_.telemetry.any();
  const obs::Clock* clock = config_.telemetry.clock;
  obs::PhaseTimers* timers = &result.telemetry.phases;
  for (std::uint64_t round = 0; round <= config_.max_rounds; ++round) {
    const std::size_t satisfied = state.count_satisfied();
    const bool check_now = round % config_.stability_check_period == 0;
    if (satisfied == state.num_users() || check_now) {
      obs::ScopedPhase phase(clock, timers, obs::Phase::kSatisfactionCheck);
      if (protocol.is_stable(state)) {
        result.converged = true;
        break;
      }
    }
    if (round == config_.max_rounds) break;
    {
      obs::ScopedPhase phase(clock, timers, obs::Phase::kStep);
      protocol.step(state, rng, result.counters);
    }
    ++result.counters.rounds;
    ++result.rounds;
  }
  result.termination =
      result.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.final_satisfied_weight = state.satisfied_weight();
  result.all_satisfied = result.final_satisfied == state.num_users();
  export_metrics(config_.telemetry, result, nullptr);
  return result;
}

EngineResult Engine::run_async_admission(const Instance& instance) const {
  EngineResult result = from_async(::qoslb::run_async_admission(instance, config_));
  export_metrics(config_.telemetry, result, nullptr);
  return result;
}

EngineResult Engine::run_async_optimistic(const Instance& instance,
                                          double lambda) const {
  EngineResult result =
      from_async(::qoslb::run_async_optimistic(instance, lambda, config_));
  export_metrics(config_.telemetry, result, nullptr);
  return result;
}

}  // namespace qoslb
