#include "core/engine.hpp"

#include <algorithm>
#include <numeric>

#include "core/async/async_protocols.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "core/weighted/weighted_state.hpp"
#include "rng/splitmix64.hpp"
#include "sim/parallel_round_engine.hpp"
#include "sim/round_engine.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

/// Classic sequential driver (the former runner.cpp ProtocolTask) for
/// protocols that only implement step(): one step() per round, the
/// stability check on the fast path (all satisfied) every round and on the
/// period otherwise. All satisfaction reads go through the state's O(1)
/// tracked counter — the engine enables tracking before driving the task,
/// which also removed the historical duplicate O(n) recount around round 0.
class SequentialTask : public RoundTask {
 public:
  SequentialTask(Protocol& protocol, State& state, Xoshiro256& rng,
                 const EngineConfig& config, EngineResult& result)
      : protocol_(&protocol), state_(&state), rng_(&rng), config_(&config),
        result_(&result) {}

  void round(std::uint64_t round_index) override {
    (void)round_index;
    protocol_->step(*state_, *rng_, result_->counters);
    ++result_->counters.rounds;
    if (config_->record_trajectory)
      result_->unsatisfied_trajectory.push_back(
          static_cast<std::uint32_t>(state_->count_unsatisfied()));
    ++rounds_done_;
  }

  bool converged() const override {
    // Fast path: full satisfaction implies stability for the satisfaction
    // protocols and is cheap to confirm for the others.
    if (state_->count_satisfied() == state_->num_users())
      return protocol_->is_stable(*state_);
    if (rounds_done_ % config_->stability_check_period == 0)
      return protocol_->is_stable(*state_);
    return false;
  }

 private:
  Protocol* protocol_;
  State* state_;
  Xoshiro256* rng_;
  const EngineConfig* config_;
  EngineResult* result_;
  std::uint64_t rounds_done_ = 0;
};

/// Binds Protocol::step_users/commit_round to the sharded round engine over
/// an explicit iteration list (all users in dense mode, the sorted
/// unsatisfied set in active mode): the decide fan-out writes into
/// per-shard buffers and per-shard counters, the commit merges both in
/// shard order — so the outcome is independent of which worker executed
/// which shard. Randomness comes from the round's per-user substreams, so
/// it is independent of the shard partition too.
class UserSetRoundTask : public ShardedRoundTask {
 public:
  UserSetRoundTask(Protocol& protocol, State& state, Counters& counters)
      : protocol_(&protocol), state_(&state), counters_(&counters) {}

  void set_round(const std::vector<UserId>& users, const RoundRng& streams) {
    users_ = &users;
    streams_ = streams;
  }

  void begin_round(std::size_t num_shards) override {
    snapshot_ = state_->loads();
    shards_.clear();
    shards_.resize(num_shards);
    shard_counters_.assign(num_shards, Counters{});
  }

  void decide(std::size_t shard, std::size_t begin, std::size_t end,
              PhiloxEngine& rng) override {
    (void)rng;  // superseded by the per-user streams in streams_
    protocol_->step_users(*state_, snapshot_, users_->data() + begin,
                          end - begin, shards_[shard], streams_,
                          shard_counters_[shard]);
  }

  void commit() override {
    for (const Counters& shard : shard_counters_) *counters_ += shard;
    protocol_->commit_round(*state_, shards_, *counters_);
  }

 private:
  Protocol* protocol_;
  State* state_;
  Counters* counters_;
  const std::vector<UserId>* users_ = nullptr;
  RoundRng streams_;
  std::vector<int> snapshot_;
  std::vector<MigrationBuffer> shards_;
  std::vector<Counters> shard_counters_;
};

EngineResult from_async(const AsyncRunResult& async) {
  EngineResult result;
  result.termination = async.termination;
  result.converged = async.termination == Termination::kQuiesced;
  result.all_satisfied = async.all_satisfied;
  result.final_satisfied = async.satisfied;
  result.virtual_time = async.virtual_time;
  result.events = async.events;
  result.counters = async.counters;
  result.faults = async.faults;
  result.rounds = async.counters.rounds;
  return result;
}

}  // namespace

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  QOSLB_REQUIRE(config_.stability_check_period >= 1,
                "stability_check_period must be positive");
  QOSLB_REQUIRE(config_.shard_size >= 1, "shard_size must be positive");
}

EngineResult Engine::run(Protocol& protocol, State& state,
                         Xoshiro256& rng) const {
  protocol.reset();
  // O(1) per-round satisfaction reads on every path; the build is O(n log n)
  // once and idempotent across chained runs on the same state.
  state.enable_satisfaction_tracking();
  if (protocol.supports_step_users())
    return run_step_users(protocol, state, rng);
  return run_sequential(protocol, state, rng);
}

EngineResult Engine::run_sequential(Protocol& protocol, State& state,
                                    Xoshiro256& rng) const {
  EngineResult result;
  SequentialTask task(protocol, state, rng, config_, result);
  const RoundRunResult rounds = run_rounds(task, config_.max_rounds);
  result.rounds = rounds.rounds;
  result.converged = rounds.converged;
  result.termination =
      rounds.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.all_satisfied = result.final_satisfied == state.num_users();
  result.threads_used = 1;
  return result;
}

EngineResult Engine::run_step_users(Protocol& protocol, State& state,
                                    Xoshiro256& rng) const {
  EngineResult result;
  const std::size_t n = state.num_users();

  ParallelRoundEngine::Options options;
  options.threads =
      config_.execution == RoundExecution::kSequential ? 1 : config_.threads;
  options.shard_size = config_.shard_size;
  // Fold one draw of the caller's RNG into the master seed so replications
  // that advance that RNG (the established seeding idiom) stay distinct
  // while (config, rng state) still pins the run exactly.
  options.seed = derive_seed(config_.seed, rng());
  ParallelRoundEngine engine(options);
  UserSetRoundTask task(protocol, state, result.counters);

  // Active mode iterates only the unsatisfied set; protocols whose
  // satisfied users do act (berenbrink) keep the dense scan regardless.
  const bool active =
      config_.mode == EngineMode::kActive && protocol.active_set_compatible();
  std::vector<UserId> iteration;
  if (!active) {
    iteration.resize(n);
    std::iota(iteration.begin(), iteration.end(), UserId{0});
  }

  std::uint64_t rounds_done = 0;
  const auto converged = [&] {
    if (state.count_satisfied() == n) return protocol.is_stable(state);
    if (rounds_done % config_.stability_check_period == 0)
      return protocol.is_stable(state);
    return false;
  };

  if (converged()) {
    result.converged = true;
  } else {
    for (std::uint64_t r = 0; r < config_.max_rounds; ++r) {
      if (active) {
        // Sorted copy of the unsatisfied view: per-user streams make the
        // draws order-independent, but the ascending order keeps the
        // applied migration sequence — and hence the trajectory — exactly
        // the dense scan's.
        iteration.assign(state.unsatisfied_view().begin(),
                         state.unsatisfied_view().end());
        std::sort(iteration.begin(), iteration.end());
      }
      task.set_round(iteration, RoundRng(options.seed, r));
      engine.round(task, iteration.size(), r);
      ++result.counters.rounds;
      ++result.rounds;
      ++rounds_done;
      if (config_.record_trajectory)
        result.unsatisfied_trajectory.push_back(
            static_cast<std::uint32_t>(n - state.count_satisfied()));
      if (converged()) {
        result.converged = true;
        break;
      }
    }
  }

  result.termination =
      result.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.all_satisfied = result.final_satisfied == n;
  result.threads_used = engine.threads();
  return result;
}

EngineResult Engine::run_weighted(WeightedProtocol& protocol,
                                  WeightedState& state, Xoshiro256& rng) const {
  // The weighted loop checks stability *before* each step (matching the
  // historical run_weighted_protocol semantics exactly).
  EngineResult result;
  protocol.reset();
  state.enable_satisfaction_tracking();
  for (std::uint64_t round = 0; round <= config_.max_rounds; ++round) {
    const std::size_t satisfied = state.count_satisfied();
    const bool check_now = round % config_.stability_check_period == 0;
    if ((satisfied == state.num_users() || check_now) &&
        protocol.is_stable(state)) {
      result.converged = true;
      break;
    }
    if (round == config_.max_rounds) break;
    protocol.step(state, rng, result.counters);
    ++result.counters.rounds;
    ++result.rounds;
  }
  result.termination =
      result.converged ? Termination::kConverged : Termination::kRoundCap;
  result.final_satisfied = state.count_satisfied();
  result.final_satisfied_weight = state.satisfied_weight();
  result.all_satisfied = result.final_satisfied == state.num_users();
  return result;
}

EngineResult Engine::run_async_admission(const Instance& instance) const {
  return from_async(::qoslb::run_async_admission(instance, config_));
}

EngineResult Engine::run_async_optimistic(const Instance& instance,
                                          double lambda) const {
  return from_async(::qoslb::run_async_optimistic(instance, lambda, config_));
}

}  // namespace qoslb
