#include "core/experiment.hpp"

#include <vector>

#include "rng/splitmix64.hpp"
#include "stats/quantile.hpp"
#include "util/check.hpp"

namespace qoslb {

AggregatedRuns aggregate_runs(
    std::uint64_t root_seed, std::size_t replications,
    const std::function<ReplicatedRun(std::uint64_t seed)>& body) {
  QOSLB_REQUIRE(replications > 0, "need at least one replication");
  AggregatedRuns agg;
  agg.replications = replications;
  std::vector<double> rounds;
  rounds.reserve(replications);
  std::size_t converged = 0;

  for (std::size_t r = 0; r < replications; ++r) {
    const ReplicatedRun run = body(derive_seed(root_seed, r));
    if (run.result.converged) ++converged;
    agg.rounds.add(static_cast<double>(run.result.rounds));
    rounds.push_back(static_cast<double>(run.result.rounds));
    agg.migrations.add(static_cast<double>(run.result.counters.migrations));
    agg.messages.add(static_cast<double>(run.result.counters.messages()));
    QOSLB_CHECK(run.num_users > 0, "replication reported zero users");
    agg.satisfied_fraction.add(static_cast<double>(run.result.final_satisfied) /
                               static_cast<double>(run.num_users));
  }
  agg.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(replications);
  agg.rounds_p95 = quantile(rounds, 0.95);
  agg.rounds_max = quantile(rounds, 1.0);
  return agg;
}

}  // namespace qoslb
