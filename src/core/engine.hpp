#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/churn_plan.hpp"
#include "core/protocol.hpp"
#include "core/snapshot.hpp"
#include "core/state.hpp"
#include "obs/telemetry.hpp"
#include "core/accounting.hpp"
#include "sim/faults.hpp"
#include "util/backoff.hpp"

namespace qoslb {

class Instance;
class WeightedProtocol;
class WeightedState;

/// Why a run stopped.
enum class Termination : std::uint8_t {
  kConverged,  // reached the protocol's stability notion
  kRoundCap,   // max_rounds exhausted first
  kQuiesced,   // async: the event queue drained
  kEventCap,   // async: max_events deliveries happened first (best-effort)
};

/// How the synchronous round loop executes. Since the per-user stream
/// re-keying (docs/performance.md) every policy produces the same
/// realization for step_users() protocols; the policy only picks the worker
/// count. Protocols without step_users() always take the classic
/// caller-RNG-driven step() path.
enum class RoundExecution : std::uint8_t {
  kAuto,        // config().threads workers (1 = inline serial)
  kSequential,  // force a single inline worker
  kSharded,     // same as kAuto (kept for source compatibility)
};

/// Which users a synchronous round iterates (the PR 3 tentpole).
enum class EngineMode : std::uint8_t {
  /// Scan all n users every round — the classic engine.
  kDense,
  /// Iterate only the incrementally-tracked unsatisfied set, making round
  /// cost O(|active| + migrations). Bit-identical to kDense for protocols
  /// with active_set_compatible() (their satisfied users neither act nor
  /// draw); the others (berenbrink) silently run densely.
  kActive,
};

/// The one run configuration (DESIGN.md §6, docs/engine.md). Supersedes the
/// former RunConfig / AsyncConfig / weighted runner arguments; fields that
/// don't apply to a given entry point are simply ignored by it.
struct EngineConfig {
  // --- synchronous rounds ---
  std::uint64_t max_rounds = 1u << 20;  // qoslb-snapshot: transient
  /// The (possibly O(n·m)) protocol stability check runs every this many
  /// rounds; the all-satisfied fast path is checked every round, so feasible
  /// runs report exact round counts.
  std::uint32_t stability_check_period = 4;  // qoslb-snapshot: transient
  bool record_trajectory = false;  // qoslb-snapshot: transient

  // --- sharded execution (see docs/engine.md, docs/performance.md) ---
  RoundExecution execution = RoundExecution::kAuto;  // qoslb-snapshot: transient
  /// Dense or active-set round iteration (see EngineMode).
  EngineMode mode = EngineMode::kDense;  // qoslb-snapshot: transient
  /// Worker threads for the sharded path: 0 = hardware concurrency,
  /// 1 = single worker. With kAuto, threads == 1 keeps the sequential path.
  std::size_t threads = 1;  // qoslb-snapshot: transient
  /// Users per shard. The shard partition is fixed (independent of the
  /// thread count), which is what makes sharded results thread-invariant —
  /// and per-user substreams make the realization independent of this value
  /// altogether, so it is purely a performance knob. The default keeps a
  /// shard's SoA working set inside a per-core L2 (see
  /// ParallelRoundEngine::Options::shard_size).
  std::size_t shard_size = 8192;  // qoslb-snapshot: transient

  /// Master seed for the sharded path's counter-based substreams and for
  /// async runs. The sharded path additionally folds in one draw from the
  /// caller's RNG, so replications seeded through that RNG stay distinct.
  std::uint64_t seed = 1;  // qoslb-snapshot: as(master_seed)

  // --- asynchronous (DES) runs ---
  double latency_jitter = 0.5;  // qoslb-snapshot: transient
  std::uint64_t max_events = 5'000'000;  // qoslb-snapshot: transient
  // false: all users start on resource 0
  bool random_start = true;  // qoslb-snapshot: transient
  /// Non-empty: user u starts on initial_assignment[u] (overrides
  /// random_start). Used to chain churn transforms with an async re-run.
  std::vector<ResourceId> initial_assignment;  // qoslb-snapshot: transient
  /// Message/crash fault plan; inert by default (see sim/faults.hpp).
  FaultPlan faults;  // qoslb-snapshot: transient
  /// Timeout/retry policy for loss-tolerant mode.
  ExponentialBackoff backoff;  // qoslb-snapshot: transient
  /// Arm timeouts/sequence numbers even with an inert fault plan (testing).
  bool force_timeouts = false;  // qoslb-snapshot: transient

  // --- robustness (docs/faults.md) ---
  /// Scheduled mid-run resource churn, applied at round boundaries by the
  /// sharded path. Empty by default; sequential-only protocols reject a
  /// non-empty plan.
  ChurnPlan churn;
  /// Every this many rounds the sharded and sequential paths run the full
  /// O(n + m) State::check_invariants() audit (assignment/load/index/
  /// liveness cross-checks). 0 = off (the default; audits are for the chaos
  /// harness and CI, not the hot path).
  std::uint32_t invariant_check_period = 0;  // qoslb-snapshot: transient
  /// Round boundaries at which the sharded path hands a checkpoint to
  /// snapshot_sink (strictly increasing; each fires before that round's
  /// churn events and decisions). Requires snapshot_sink.
  std::vector<std::uint64_t> snapshot_rounds;  // qoslb-snapshot: transient
  /// Receives each captured checkpoint. Borrowed for the run's duration.
  std::function<void(const SnapshotV1&)> snapshot_sink;  // qoslb-snapshot: transient

  // --- observability (see docs/observability.md) ---
  /// Optional metrics registry / trace sink / phase clock. All borrowed, all
  /// null by default. Telemetry is read-only with respect to the run: with
  /// any combination attached, the realization (assignments, counters,
  /// round counts) is bit-identical to the all-null configuration — a
  /// contract tested across thread counts and engine modes.
  obs::Telemetry telemetry;  // qoslb-snapshot: transient
};

/// The one run result. Supersedes RunResult / AsyncRunResult /
/// WeightedRunResult; entry points leave the fields they don't produce at
/// their zero defaults.
struct EngineResult {
  std::uint64_t rounds = 0;
  Termination termination = Termination::kRoundCap;
  bool converged = false;      // termination == kConverged or kQuiesced
  bool all_satisfied = false;  // every user satisfied at the end
  std::size_t final_satisfied = 0;
  std::uint64_t final_satisfied_weight = 0;  // weighted runs only
  double virtual_time = 0.0;                 // async: time of the last event
  std::uint64_t events = 0;                  // async: deliveries executed
  std::size_t threads_used = 1;              // sharded runs: worker count
  Counters counters;
  FaultStats faults;  // what the injector actually did (zero if off)
  /// Graceful-degradation metrics of the run's churn plan (zero if none).
  ChurnStats churn;
  /// Unsatisfied count after each round (only if record_trajectory).
  std::vector<std::uint32_t> unsatisfied_trajectory;
  /// Phase timers and trace-row accounting (enabled iff config.telemetry
  /// attached anything; zero otherwise).
  obs::RunTelemetry telemetry;
};

/// The unified run facade: one configuration, one result, every execution
/// substrate — the classic sequential round loop, the sharded parallel round
/// engine (sim/parallel_round_engine), the weighted-model runner, and the
/// asynchronous DES realizations. See docs/engine.md for the API migration
/// table from the former entry points.
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineConfig config);

  const EngineConfig& config() const { return config_; }

  /// Drives `protocol` on `state` until stable or max_rounds, resetting the
  /// protocol's adaptive state first and enabling the state's incremental
  /// satisfaction tracking (so per-round satisfaction reads are O(1)).
  /// Protocols implementing step_users() run on the sharded round engine
  /// with per-(seed, round, user) Philox substreams: the realization is
  /// deterministic in (config().seed, rng state) and bit-identical for
  /// every thread count, execution policy, and engine mode (dense vs.
  /// active, for active-set-compatible protocols). Other protocols take the
  /// classic sequential step() path.
  EngineResult run(Protocol& protocol, State& state, Xoshiro256& rng) const;

  /// Weighted-model overload: the state/protocol kinds select the weighted
  /// sequential path, so callers use one run() entry point for both models.
  EngineResult run(WeightedProtocol& protocol, WeightedState& state,
                   Xoshiro256& rng) const;

  /// Asynchronous (DES) admission protocol under this config's seed,
  /// latency, start and fault plan.
  EngineResult run_async_admission(const Instance& instance) const;

  /// Asynchronous optimistic (λ-damped) protocol.
  EngineResult run_async_optimistic(const Instance& instance,
                                    double lambda) const;

  /// Runs `protocol` on `state` like run() and captures the checkpoint at
  /// the boundary of round `at_round` (before that round's churn events and
  /// decisions). The run continues to completion — `state` ends final, the
  /// returned snapshot is the mid-run cut. Requires a step_users() protocol
  /// and that the run actually reaches `at_round`.
  SnapshotV1 save_snapshot(Protocol& protocol, State& state, Xoshiro256& rng,
                           std::uint64_t at_round) const;

  /// Continues a checkpointed run to completion. `state` must match the
  /// snapshot (same assignment and liveness — build it with
  /// SnapshotV1::make_state) and this config must carry the original run's
  /// churn plan; remaining events replay on schedule. The continuation is
  /// bit-identical to the uninterrupted run for every thread count and
  /// engine mode: per-round randomness re-derives from the checkpointed
  /// master seed, which is reused verbatim (never re-folded).
  EngineResult resume(Protocol& protocol, const SnapshotV1& snapshot,
                      State& state) const;

 private:
  EngineResult run_sequential(Protocol& protocol, State& state,
                              Xoshiro256& rng) const;
  EngineResult run_step_users(Protocol& protocol, State& state,
                              Xoshiro256& rng) const;
  EngineResult drive_step_users(Protocol& protocol, State& state,
                                std::uint64_t master_seed,
                                std::uint64_t start_round,
                                Counters start_counters,
                                ChurnTracker tracker) const;

  EngineConfig config_;
};

}  // namespace qoslb
