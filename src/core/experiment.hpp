#pragma once

#include <cstdint>
#include <functional>

#include "core/engine.hpp"
#include "stats/summary.hpp"

namespace qoslb {

/// Aggregate over independent replications of one experiment configuration
/// (one row of an experiment table).
struct AggregatedRuns {
  std::size_t replications = 0;
  double converged_fraction = 0.0;
  RunningStat rounds;               // rounds to convergence (capped runs included)
  RunningStat migrations;
  RunningStat messages;
  RunningStat satisfied_fraction;   // at the end of each run
  double rounds_p95 = 0.0;
  double rounds_max = 0.0;
};

/// Runs `body` once per derived child seed and aggregates. `body` builds the
/// instance/state/protocol for the given seed and returns the EngineResult plus
/// the user count (for the satisfied fraction).
struct ReplicatedRun {
  EngineResult result;
  std::size_t num_users = 0;
};

AggregatedRuns aggregate_runs(
    std::uint64_t root_seed, std::size_t replications,
    const std::function<ReplicatedRun(std::uint64_t seed)>& body);

}  // namespace qoslb
