#include "core/async/async_protocols.hpp"

#include <limits>
#include <set>
#include <map>
#include <memory>
#include <vector>

#include "rng/distributions.hpp"
#include "sim/des.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

// Agent layout: resources occupy agent ids [0, m), users [m, m+n).

class ResourceAgent : public DesAgent {
 public:
  /// `gated` selects the admission handshake (P4). Ungated resources accept
  /// every join and instead notify residents displaced by the arrival — the
  /// optimistic realization (P2).
  ResourceAgent(ResourceId rid, Counters* counters, bool gated = true)
      : rid_(rid), counters_(counters), gated_(gated) {}

  /// Registers an initial resident before the simulation starts.
  void seed_resident(AgentId user, int threshold) {
    residents_[user] = threshold;
    by_threshold_[threshold].insert(user);
  }

  int load() const { return static_cast<int>(residents_.size()); }

  void on_message(const Message& msg, DesEngine& engine) override {
    switch (msg.type) {
      case MsgType::kProbe: {
        Message reply;
        reply.type = MsgType::kLoadReply;
        reply.src = rid_;
        reply.dst = msg.src;
        reply.a = load();
        engine.send(reply);
        break;
      }
      case MsgType::kMigrateRequest: {
        const int requester_threshold = static_cast<int>(msg.a);
        const int post_load = load() + 1;
        const bool fits_requester = post_load <= requester_threshold;
        const bool fits_residents = post_load <= satisfied_resident_min();
        Message reply;
        reply.src = rid_;
        reply.dst = msg.src;
        if (!gated_ || (fits_requester && fits_residents)) {
          residents_[msg.src] = requester_threshold;
          by_threshold_[requester_threshold].insert(msg.src);
          reply.type = MsgType::kGrant;
          reply.a = load();
          ++counters_->grants;
          ++counters_->migrations;
          if (!gated_) notify_newly_displaced(engine, msg.src);
        } else {
          reply.type = MsgType::kReject;
          ++counters_->rejects;
        }
        engine.send(reply);
        break;
      }
      case MsgType::kLeave: {
        const auto it = residents_.find(msg.src);
        QOSLB_CHECK(it != residents_.end(), "leave from non-resident");
        const auto bucket = by_threshold_.find(it->second);
        bucket->second.erase(msg.src);
        if (bucket->second.empty()) by_threshold_.erase(bucket);
        residents_.erase(it);
        notify_newly_satisfied(engine);
        break;
      }
      default:
        break;  // resources ignore other message kinds
    }
  }

 private:
  /// Minimum threshold among residents that are satisfied at the current
  /// load; residents already unsatisfied cannot be hurt further and do not
  /// gate admission (same rule as the synchronous P4). O(log n) via the
  /// threshold index.
  int satisfied_resident_min() const {
    const auto it = by_threshold_.lower_bound(load());
    return it == by_threshold_.end() ? std::numeric_limits<int>::max()
                                     : it->first;
  }

  /// After a departure, residents whose threshold now covers the load become
  /// satisfied in place (exactly the threshold == load bucket); tell them so
  /// they stop searching.
  void notify_newly_satisfied(DesEngine& engine) {
    const auto it = by_threshold_.find(load());
    if (it == by_threshold_.end()) return;
    for (const AgentId user : it->second) {
      Message reply;
      reply.type = MsgType::kLoadReply;
      reply.src = rid_;
      reply.dst = user;
      reply.a = load();
      engine.send(reply);
    }
  }

  /// Ungated arrivals can push previously satisfied residents over their
  /// threshold: exactly the threshold == load()-1 bucket. Tell them (the
  /// joiner learns its own fate from the grant's load payload).
  void notify_newly_displaced(DesEngine& engine, AgentId joiner) {
    const auto it = by_threshold_.find(load() - 1);
    if (it == by_threshold_.end()) return;
    for (const AgentId user : it->second) {
      if (user == joiner) continue;
      Message reply;
      reply.type = MsgType::kLoadReply;
      reply.src = rid_;
      reply.dst = user;
      reply.a = load();
      engine.send(reply);
    }
  }

  ResourceId rid_;
  Counters* counters_;
  bool gated_;
  std::map<AgentId, int> residents_;  // resident user agent id -> threshold here
  std::map<int, std::set<AgentId>> by_threshold_;  // threshold -> residents
};

class UserAgent : public DesAgent {
 public:
  /// `lambda` is the optimistic-commit probability (only drawn for ungated
  /// runs; the gated protocol always requests and lets the resource decide).
  UserAgent(UserId uid, const Instance* instance, ResourceId start,
            Counters* counters, bool gated = true, double lambda = 1.0)
      : uid_(uid), instance_(instance), current_(start), counters_(counters),
        gated_(gated), lambda_(lambda) {}

  ResourceId current_resource() const { return current_; }

  void on_start(DesEngine& engine) override { probe_own(engine); }

  void on_message(const Message& msg, DesEngine& engine) override {
    switch (msg.type) {
      case MsgType::kLoadReply:
        handle_load_reply(msg, engine);
        break;
      case MsgType::kGrant: {
        // Leave the old resource, adopt the new one.
        Message leave;
        leave.type = MsgType::kLeave;
        leave.src = agent_id(engine);
        leave.dst = current_;
        engine.send(leave);
        current_ = static_cast<ResourceId>(msg.src);
        pending_request_ = false;
        // Ungated joins can overshoot: the grant reports the post-join load,
        // so an unlucky joiner keeps searching.
        if (static_cast<int>(msg.a) > threshold_on(current_)) {
          searching_ = true;
          probe_own(engine);
        } else {
          searching_ = false;
        }
        break;
      }
      case MsgType::kReject:
        pending_request_ = false;
        if (searching_) probe_own(engine, /*delay=*/2.0);
        break;
      case MsgType::kTimer:
        probe_own(engine);
        break;
      default:
        break;
    }
  }

 private:
  AgentId agent_id(DesEngine& engine) const {
    (void)engine;
    return static_cast<AgentId>(instance_->num_resources() + uid_);
  }

  int threshold_on(ResourceId r) const { return instance_->threshold(uid_, r); }

  void probe_own(DesEngine& engine, double delay = 1.0) {
    Message probe;
    probe.type = MsgType::kProbe;
    probe.src = agent_id(engine);
    probe.dst = current_;
    ++counters_->probes;
    engine.send(probe, delay);
  }

  void probe_random_other(DesEngine& engine) {
    const std::size_t m = instance_->num_resources();
    if (m <= 1) return;
    ResourceId target = current_;
    while (target == current_)
      target = static_cast<ResourceId>(uniform_u64_below(engine.rng(), m));
    Message probe;
    probe.type = MsgType::kProbe;
    probe.src = agent_id(engine);
    probe.dst = target;
    ++counters_->probes;
    engine.send(probe);
  }

  void handle_load_reply(const Message& msg, DesEngine& engine) {
    const auto from = static_cast<ResourceId>(msg.src);
    const int load = static_cast<int>(msg.a);
    if (from == current_) {
      if (load <= threshold_on(current_)) {
        searching_ = false;  // satisfied in place
      } else {
        searching_ = true;
        if (!pending_request_) probe_random_other(engine);
      }
      return;
    }
    // Reply from a candidate resource.
    if (!searching_ || pending_request_) return;
    if (load + 1 <= threshold_on(from)) {
      if (!gated_ && !bernoulli(engine.rng(), lambda_)) {
        probe_own(engine, /*delay=*/1.0);  // damped: skip this opportunity
        return;
      }
      Message request;
      request.type = MsgType::kMigrateRequest;
      request.src = agent_id(engine);
      request.dst = from;
      request.a = threshold_on(from);
      ++counters_->migrate_requests;
      pending_request_ = true;
      engine.send(request);
    } else {
      probe_own(engine, /*delay=*/1.0);  // rescan from the top
    }
  }

  UserId uid_;
  const Instance* instance_;
  ResourceId current_;
  Counters* counters_;
  bool gated_;
  double lambda_;
  bool searching_ = false;
  bool pending_request_ = false;
};

}  // namespace

namespace {

AsyncRunResult run_async(const Instance& instance, const AsyncConfig& config,
                         bool gated, double lambda) {
  const std::size_t m = instance.num_resources();
  const std::size_t n = instance.num_users();

  AsyncRunResult result;
  DesEngine engine(config.seed, config.latency_jitter);

  std::vector<std::unique_ptr<ResourceAgent>> resources;
  std::vector<std::unique_ptr<UserAgent>> users;
  resources.reserve(m);
  users.reserve(n);

  for (ResourceId r = 0; r < m; ++r) {
    resources.push_back(
        std::make_unique<ResourceAgent>(r, &result.counters, gated));
    const AgentId id = engine.add_agent(resources.back().get());
    QOSLB_CHECK(id == r, "resource agent ids must equal resource ids");
  }

  Xoshiro256 placement_rng(config.seed ^ 0xA5A5A5A5ULL);
  for (UserId u = 0; u < n; ++u) {
    const ResourceId start =
        config.random_start
            ? static_cast<ResourceId>(uniform_u64_below(placement_rng, m))
            : ResourceId{0};
    users.push_back(std::make_unique<UserAgent>(u, &instance, start,
                                                &result.counters, gated,
                                                lambda));
    const AgentId id = engine.add_agent(users.back().get());
    QOSLB_CHECK(id == m + u, "user agent ids must follow resource ids");
    resources[start]->seed_resident(id, instance.threshold(u, start));
  }

  result.events = engine.run(config.max_events);
  result.virtual_time = engine.now();
  result.counters.events = result.events;

  // Final satisfaction from the users' own view (consistent when the queue
  // drained; best-effort when max_events was hit).
  std::vector<int> loads(m, 0);
  for (const auto& user : users) ++loads[user->current_resource()];
  for (UserId u = 0; u < n; ++u) {
    const ResourceId r = users[u]->current_resource();
    if (loads[r] <= instance.threshold(u, r)) ++result.satisfied;
  }
  result.all_satisfied = result.satisfied == n;
  return result;
}

}  // namespace

AsyncRunResult run_async_admission(const Instance& instance,
                                   const AsyncConfig& config) {
  return run_async(instance, config, /*gated=*/true, /*lambda=*/1.0);
}

AsyncRunResult run_async_optimistic(const Instance& instance, double lambda,
                                    const AsyncConfig& config) {
  QOSLB_REQUIRE(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1]");
  return run_async(instance, config, /*gated=*/false, lambda);
}

}  // namespace qoslb
