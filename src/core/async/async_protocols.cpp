#include "core/async/async_protocols.hpp"

#include <limits>
#include <set>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "obs/decision_sink.hpp"
#include "obs/phase_timer.hpp"
#include "rng/distributions.hpp"
#include "sim/des.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

/// Message-span emission state shared by the run's user agents (null when no
/// DecisionSink is attached). Emission is purely observational — it reads
/// the DES virtual clock and consumes no engine randomness — so spans on/off
/// cannot change the realization. The DES loop is single-threaded, so the
/// shared counter needs no synchronization.
struct SpanTrace {
  obs::DecisionSink* sink = nullptr;
  const obs::Clock* clock = nullptr;
  std::uint64_t sample_seed = 0;
  std::uint64_t sample_every = 1;
  std::uint64_t span_events = 0;
};

// Agent layout: resources occupy agent ids [0, m), users [m, m+n).
//
// Two operating modes share these agents. In *trusting* mode (no fault plan)
// the message flow is exactly the paper's realization — no sequence numbers,
// no timers — and stays byte-identical to the pre-fault-layer code. In
// *loss-tolerant* mode (robust == true; armed whenever faults are injected)
// every user-initiated operation carries a per-user monotone sequence
// number, replies are matched against the outstanding operation, silence is
// detected by timeouts and answered with bounded exponential-backoff
// retries, and departures are retransmitted until acknowledged so a lost
// LEAVE cannot strand a phantom resident.

class ResourceAgent : public DesAgent {
 public:
  /// `gated` selects the admission handshake (P4). Ungated resources accept
  /// every join and instead notify residents displaced by the arrival — the
  /// optimistic realization (P2).
  ResourceAgent(ResourceId rid, Counters* counters, bool gated = true,
                bool robust = false)
      : rid_(rid), counters_(counters), gated_(gated), robust_(robust) {}

  /// Registers an initial resident before the simulation starts.
  void seed_resident(AgentId user, int threshold) {
    residents_[user] = threshold;
    by_threshold_[threshold].insert(user);
  }

  int load() const { return static_cast<int>(residents_.size()); }

  void on_message(const Message& msg, DesEngine& engine) override {
    switch (msg.type) {
      case MsgType::kProbe: {
        if (robust_ && stale_or_record(msg)) {
          ++counters_->stale_drops;
          break;
        }
        Message reply;
        reply.type = MsgType::kLoadReply;
        reply.src = rid_;
        reply.dst = msg.src;
        reply.seq = msg.seq;
        reply.a = load();
        engine.send(reply);
        break;
      }
      case MsgType::kMigrateRequest: {
        if (robust_ && stale_or_record(msg)) {
          ++counters_->stale_drops;
          break;
        }
        if (robust_ && residents_.count(msg.src) != 0) {
          // Duplicate (or retried) request from someone already admitted:
          // re-grant idempotently, without touching state or counters.
          ++counters_->stale_drops;
          Message again;
          again.type = MsgType::kGrant;
          again.src = rid_;
          again.dst = msg.src;
          again.seq = msg.seq;
          again.a = load();
          engine.send(again);
          break;
        }
        const int requester_threshold = static_cast<int>(msg.a);
        const int post_load = load() + 1;
        const bool fits_requester = post_load <= requester_threshold;
        const bool fits_residents = post_load <= satisfied_resident_min();
        Message reply;
        reply.src = rid_;
        reply.dst = msg.src;
        reply.seq = msg.seq;
        if (!gated_ || (fits_requester && fits_residents)) {
          residents_[msg.src] = requester_threshold;
          by_threshold_[requester_threshold].insert(msg.src);
          reply.type = MsgType::kGrant;
          reply.a = load();
          ++counters_->grants;
          ++counters_->migrations;
          if (!gated_) notify_newly_displaced(engine, msg.src);
        } else {
          reply.type = MsgType::kReject;
          ++counters_->rejects;
        }
        engine.send(reply);
        break;
      }
      case MsgType::kLeave: {
        if (robust_) {
          if (stale_or_record(msg)) {
            ++counters_->stale_drops;
            break;
          }
          const auto it = residents_.find(msg.src);
          if (it == residents_.end()) {
            // Duplicate of an already-processed departure: the state change
            // happened, only the ack was lost. Re-ack, change nothing.
            ++counters_->stale_drops;
            send_leave_ack(engine, msg);
            break;
          }
          erase_resident(it);
          send_leave_ack(engine, msg);
          notify_newly_satisfied(engine);
          break;
        }
        const auto it = residents_.find(msg.src);
        QOSLB_CHECK(it != residents_.end(), "leave from non-resident");
        erase_resident(it);
        notify_newly_satisfied(engine);
        break;
      }
      default:
        break;  // resources ignore other message kinds (incl. kRecover:
                // resource state survives a crash; only its inbox is lost)
    }
  }

 private:
  /// Per-sender monotone sequence guard (loss-tolerant mode): a message
  /// whose seq is below the highest seen from that sender was overtaken by a
  /// newer operation (e.g. a heavy-tail-delayed LEAVE arriving after the
  /// user already re-joined) and must be ignored. Equality is allowed — a
  /// retransmission of the latest operation is handled idempotently above.
  bool stale_or_record(const Message& msg) {
    if (msg.seq == 0) return false;
    auto& last = last_seq_[msg.src];
    if (msg.seq < last) return true;
    last = msg.seq;
    return false;
  }

  void erase_resident(std::map<AgentId, int>::iterator it) {
    const auto bucket = by_threshold_.find(it->second);
    bucket->second.erase(it->first);
    if (bucket->second.empty()) by_threshold_.erase(bucket);
    residents_.erase(it);
  }

  void send_leave_ack(DesEngine& engine, const Message& leave) {
    Message ack;
    ack.type = MsgType::kLeaveAck;
    ack.src = rid_;
    ack.dst = leave.src;
    ack.seq = leave.seq;
    engine.send(ack);
  }

  /// Minimum threshold among residents that are satisfied at the current
  /// load; residents already unsatisfied cannot be hurt further and do not
  /// gate admission (same rule as the synchronous P4). O(log n) via the
  /// threshold index.
  int satisfied_resident_min() const {
    const auto it = by_threshold_.lower_bound(load());
    return it == by_threshold_.end() ? std::numeric_limits<int>::max()
                                     : it->first;
  }

  /// After a departure, residents whose threshold now covers the load become
  /// satisfied in place (exactly the threshold == load bucket); tell them so
  /// they stop searching.
  void notify_newly_satisfied(DesEngine& engine) {
    const auto it = by_threshold_.find(load());
    if (it == by_threshold_.end()) return;
    for (const AgentId user : it->second) {
      Message reply;
      reply.type = MsgType::kLoadReply;
      reply.src = rid_;
      reply.dst = user;
      reply.a = load();
      engine.send(reply);
    }
  }

  /// Ungated arrivals can push previously satisfied residents over their
  /// threshold: exactly the threshold == load()-1 bucket. Tell them (the
  /// joiner learns its own fate from the grant's load payload).
  void notify_newly_displaced(DesEngine& engine, AgentId joiner) {
    const auto it = by_threshold_.find(load() - 1);
    if (it == by_threshold_.end()) return;
    for (const AgentId user : it->second) {
      if (user == joiner) continue;
      Message reply;
      reply.type = MsgType::kLoadReply;
      reply.src = rid_;
      reply.dst = user;
      reply.a = load();
      engine.send(reply);
    }
  }

  ResourceId rid_;
  Counters* counters_;
  bool gated_;
  bool robust_;
  std::map<AgentId, int> residents_;  // resident user agent id -> threshold here
  std::map<int, std::set<AgentId>> by_threshold_;  // threshold -> residents
  std::map<AgentId, std::uint32_t> last_seq_;  // staleness guard (robust mode)
};

class UserAgent : public DesAgent {
 public:
  /// `lambda` is the optimistic-commit probability (only drawn for ungated
  /// runs; the gated protocol always requests and lets the resource decide).
  UserAgent(UserId uid, const Instance* instance, ResourceId start,
            Counters* counters, bool gated = true, double lambda = 1.0,
            bool robust = false, ExponentialBackoff backoff = {},
            SpanTrace* spans = nullptr)
      : uid_(uid), instance_(instance), current_(start), counters_(counters),
        gated_(gated), lambda_(lambda), robust_(robust), backoff_(backoff),
        spans_(spans),
        traced_(spans != nullptr &&
                decision_sampled(spans->sample_seed, uid, spans->sample_every)) {
  }

  ResourceId current_resource() const { return current_; }

  void on_start(DesEngine& engine) override { probe_own(engine); }

  void on_message(const Message& msg, DesEngine& engine) override {
    switch (msg.type) {
      case MsgType::kLoadReply:
        handle_load_reply(msg, engine);
        break;
      case MsgType::kGrant: {
        if (robust_) {
          handle_grant_robust(msg, engine);
          break;
        }
        emit_span(op_span_, "ack", "grant", static_cast<ResourceId>(msg.src),
                  0);
        // Leave the old resource, adopt the new one.
        Message leave;
        leave.type = MsgType::kLeave;
        leave.src = agent_id(engine);
        leave.dst = current_;
        engine.send(leave);
        current_ = static_cast<ResourceId>(msg.src);
        pending_request_ = false;
        // Ungated joins can overshoot: the grant reports the post-join load,
        // so an unlucky joiner keeps searching.
        if (static_cast<int>(msg.a) > threshold_on(current_)) {
          searching_ = true;
          probe_own(engine);
        } else {
          searching_ = false;
        }
        break;
      }
      case MsgType::kReject:
        if (robust_) {
          if (op_kind_ != Op::kRequest || msg.seq != op_seq_) {
            ++counters_->stale_drops;
            break;
          }
          emit_span(op_span_, "ack", "reject",
                    static_cast<ResourceId>(msg.src), op_retries_);
          clear_op();
          if (searching_) probe_own(engine, /*delay=*/2.0);
          break;
        }
        emit_span(op_span_, "ack", "reject", static_cast<ResourceId>(msg.src),
                  0);
        pending_request_ = false;
        if (searching_) probe_own(engine, /*delay=*/2.0);
        break;
      case MsgType::kLeaveAck:
        if (robust_) {
          const auto it = pending_leaves_.find(msg.seq);
          if (it != pending_leaves_.end()) {
            emit_span(it->second.span, "ack", "leave_ack",
                      it->second.resource, it->second.retries);
            pending_leaves_.erase(it);
          } else {
            ++counters_->stale_drops;  // ack for a retransmitted/cancelled leave
          }
        }
        break;
      case MsgType::kTimer:
        if (robust_) {
          handle_timer_robust(msg, engine);
          break;
        }
        probe_own(engine);
        break;
      case MsgType::kRecover:
        if (robust_) handle_recover(engine);
        break;
      default:
        break;
    }
  }

 private:
  enum class Op : std::uint8_t { kNone, kProbeOwn, kProbeOther, kRequest };

  struct PendingLeave {
    ResourceId resource;
    unsigned retries;
    std::uint64_t span = 0;
  };

  /// Emits one span event for this (sampled) user. `span` groups every
  /// send/retry/timeout/ack of one operation attempt chain.
  void emit_span(std::uint64_t span, const char* op, const char* msg,
                 ResourceId target, std::uint64_t seq) {
    if (!traced_) return;
    obs::SpanEvent event;
    event.span = span;
    event.user = uid_;
    event.op = op;
    event.msg = msg;
    event.target = static_cast<std::int64_t>(target);
    event.seq = seq;
    event.time = spans_->clock->now();
    spans_->sink->span(event);
    ++spans_->span_events;
  }

  /// A fresh span id: user id in the high bits, per-user operation counter
  /// in the low — globally unique and deterministic, no RNG involved.
  std::uint64_t new_span() {
    return (static_cast<std::uint64_t>(uid_) << 20) |
           (++span_counter_ & 0xFFFFFULL);
  }

  const char* op_msg() const {
    return op_kind_ == Op::kRequest ? "request" : "probe";
  }

  AgentId agent_id(DesEngine& engine) const {
    (void)engine;
    return static_cast<AgentId>(instance_->num_resources() + uid_);
  }

  int threshold_on(ResourceId r) const { return instance_->threshold(uid_, r); }

  bool op_active() const { return op_kind_ != Op::kNone; }
  void clear_op() { op_kind_ = Op::kNone; }

  /// "Am I already busy?" gate. Loss-tolerant mode enforces one outstanding
  /// operation per user (every op has a timeout, so nothing can be lost by
  /// waiting); trusting mode reproduces the legacy gating exactly, which
  /// only serializes migrate requests.
  bool busy() const {
    return robust_ ? op_active() : pending_request_;
  }

  std::uint32_t next_seq() {
    if (++seq_ == 0) ++seq_;  // 0 is the unsolicited marker
    return seq_;
  }

  void probe_own(DesEngine& engine, double delay = 1.0) {
    begin_probe(engine, current_, delay);
  }

  void probe_random_other(DesEngine& engine) {
    const std::size_t m = instance_->num_resources();
    if (m <= 1) return;
    ResourceId target = current_;
    while (target == current_)
      target = static_cast<ResourceId>(uniform_u64_below(engine.rng(), m));
    begin_probe(engine, target, 1.0);
  }

  void begin_probe(DesEngine& engine, ResourceId target, double delay) {
    if (robust_) {
      op_kind_ = target == current_ ? Op::kProbeOwn : Op::kProbeOther;
      op_target_ = target;
      op_seq_ = next_seq();
      op_retries_ = 0;
    }
    op_span_ = new_span();
    emit_span(op_span_, "send", "probe", target, 0);
    send_probe(engine, target, delay);
  }

  void send_probe(DesEngine& engine, ResourceId target, double delay) {
    Message probe;
    probe.type = MsgType::kProbe;
    probe.src = agent_id(engine);
    probe.dst = target;
    probe.seq = robust_ ? op_seq_ : 0;
    ++counters_->probes;
    engine.send(probe, delay);
    if (robust_) arm_op_timer(engine, delay);
  }

  void begin_request(DesEngine& engine, ResourceId target) {
    op_kind_ = Op::kRequest;
    op_target_ = target;
    op_seq_ = next_seq();
    op_retries_ = 0;
    op_span_ = new_span();
    emit_span(op_span_, "send", "request", target, 0);
    send_request(engine);
  }

  void send_request(DesEngine& engine) {
    Message request;
    request.type = MsgType::kMigrateRequest;
    request.src = agent_id(engine);
    request.dst = op_target_;
    request.seq = op_seq_;
    request.a = threshold_on(op_target_);
    ++counters_->migrate_requests;
    engine.send(request);
    arm_op_timer(engine, 1.0);
  }

  /// Arms the timeout for the outstanding operation: the send's base delay
  /// plus the backoff budget for the current attempt (which must exceed a
  /// round trip, or healthy replies would race the timer).
  void arm_op_timer(DesEngine& engine, double base_delay) {
    engine.schedule_timer(
        agent_id(engine),
        base_delay + backoff_.jittered(engine.rng(), op_retries_),
        static_cast<std::int64_t>(op_seq_));
  }

  void retry_op(DesEngine& engine) {
    ++op_retries_;
    ++counters_->retries;
    op_seq_ = next_seq();
    emit_span(op_span_, "retry", op_msg(), op_target_, op_retries_);
    if (op_kind_ == Op::kRequest)
      send_request(engine);
    else
      send_probe(engine, op_target_, 1.0);
  }

  /// Starts (or skips, if already in flight) an acknowledged departure from
  /// `resource`: LEAVE is retransmitted with backoff until the kLeaveAck
  /// lands, so a lost departure cannot strand a phantom resident.
  void begin_leave(DesEngine& engine, ResourceId resource) {
    for (const auto& [seq, leave] : pending_leaves_)
      if (leave.resource == resource) return;  // already departing
    const std::uint32_t seq = next_seq();
    pending_leaves_.emplace(seq, PendingLeave{resource, 0, new_span()});
    emit_span(pending_leaves_.at(seq).span, "send", "leave", resource, 0);
    send_leave(engine, resource, seq);
  }

  void send_leave(DesEngine& engine, ResourceId resource, std::uint32_t seq) {
    Message leave;
    leave.type = MsgType::kLeave;
    leave.src = agent_id(engine);
    leave.dst = resource;
    leave.seq = seq;
    engine.send(leave);
    engine.schedule_timer(
        agent_id(engine),
        1.0 + backoff_.jittered(engine.rng(), pending_leaves_.at(seq).retries),
        static_cast<std::int64_t>(seq));
  }

  /// Cancels a pending departure from `resource` (we just re-joined it); a
  /// still-in-flight old LEAVE is neutralized by the resource's per-sender
  /// sequence guard.
  void cancel_leave(ResourceId resource) {
    for (auto it = pending_leaves_.begin(); it != pending_leaves_.end(); ++it) {
      if (it->second.resource == resource) {
        pending_leaves_.erase(it);
        return;
      }
    }
  }

  void handle_grant_robust(const Message& msg, DesEngine& engine) {
    const auto from = static_cast<ResourceId>(msg.src);
    const bool matches =
        op_kind_ == Op::kRequest && msg.seq == op_seq_ && from == op_target_;
    if (!matches) {
      ++counters_->stale_drops;
      // A stale grant (we timed out and moved on) still admitted us over
      // there; undo the phantom residency — unless it is where we live now,
      // or we are still retrying a request to that very resource (the retry
      // will be answered by an idempotent re-grant we do want to keep).
      const bool still_requesting_it =
          op_kind_ == Op::kRequest && op_target_ == from;
      if (from != current_ && !still_requesting_it) begin_leave(engine, from);
      return;
    }
    emit_span(op_span_, "ack", "grant", from, op_retries_);
    clear_op();
    begin_leave(engine, current_);
    cancel_leave(from);
    current_ = from;
    if (static_cast<int>(msg.a) > threshold_on(current_)) {
      searching_ = true;
      probe_own(engine);
    } else {
      searching_ = false;
    }
  }

  void handle_timer_robust(const Message& msg, DesEngine& engine) {
    const auto seq = static_cast<std::uint32_t>(msg.a);
    if (const auto it = pending_leaves_.find(seq); it != pending_leaves_.end()) {
      ++counters_->timeouts;
      emit_span(it->second.span, "timeout", "leave", it->second.resource,
                it->second.retries);
      if (backoff_.exhausted(it->second.retries)) {
        // Give up: if the resource comes back it will reconcile through the
        // idempotent re-grant / sequence-guard paths.
        pending_leaves_.erase(it);
        return;
      }
      ++it->second.retries;
      ++counters_->retries;
      emit_span(it->second.span, "retry", "leave", it->second.resource,
                it->second.retries);
      send_leave(engine, it->second.resource, seq);
      return;
    }
    if (op_active() && seq == op_seq_) {
      ++counters_->timeouts;
      emit_span(op_span_, "timeout", op_msg(), op_target_, op_retries_);
      if (backoff_.exhausted(op_retries_)) {
        const Op timed_out = op_kind_;
        clear_op();
        // Graceful degradation: persistent silence means the target is down
        // or unreachable. A silent *own* resource cannot certify our
        // satisfaction — assume the worst and re-enter search elsewhere; a
        // silent candidate is abandoned for a fresh scan from our own.
        if (timed_out == Op::kProbeOwn) {
          searching_ = true;
          probe_random_other(engine);
        } else {
          probe_own(engine);
        }
        return;
      }
      retry_op(engine);
      return;
    }
    // Stale timer: the operation it guarded already completed.
  }

  void handle_recover(DesEngine& engine) {
    // Our crash window just ended. Whatever was in flight is gone (the
    // inbox, including our own timers, was dropped); restart cleanly.
    clear_op();
    for (auto& [seq, leave] : pending_leaves_)
      send_leave(engine, leave.resource, seq);
    probe_own(engine);
  }

  void handle_load_reply(const Message& msg, DesEngine& engine) {
    const auto from = static_cast<ResourceId>(msg.src);
    const int load = static_cast<int>(msg.a);
    if (robust_ && msg.seq != 0) {
      // Solicited reply: must answer the outstanding probe, else it is a
      // duplicate or overtaken by a timeout retry.
      const bool matches =
          (op_kind_ == Op::kProbeOwn || op_kind_ == Op::kProbeOther) &&
          msg.seq == op_seq_ && from == op_target_;
      if (!matches) {
        ++counters_->stale_drops;
        return;
      }
      emit_span(op_span_, "ack", "load_reply", from, op_retries_);
      clear_op();
    } else if (!robust_) {
      // Trusting mode has no operation matching; attribute the reply
      // (solicited or an unsolicited notification) to the latest probe span.
      emit_span(op_span_, "ack", "load_reply", from, 0);
    }
    if (from == current_) {
      if (load <= threshold_on(current_)) {
        searching_ = false;  // satisfied in place
      } else {
        searching_ = true;
        if (!busy()) probe_random_other(engine);
      }
      return;
    }
    // Reply from a candidate resource.
    if (!searching_ || busy()) return;
    if (load + 1 <= threshold_on(from)) {
      if (!gated_ && !bernoulli(engine.rng(), lambda_)) {
        probe_own(engine, /*delay=*/1.0);  // damped: skip this opportunity
        return;
      }
      if (robust_) {
        begin_request(engine, from);
        return;
      }
      op_span_ = new_span();
      emit_span(op_span_, "send", "request", from, 0);
      Message request;
      request.type = MsgType::kMigrateRequest;
      request.src = agent_id(engine);
      request.dst = from;
      request.a = threshold_on(from);
      ++counters_->migrate_requests;
      pending_request_ = true;
      engine.send(request);
    } else {
      probe_own(engine, /*delay=*/1.0);  // rescan from the top
    }
  }

  UserId uid_;
  const Instance* instance_;
  ResourceId current_;
  Counters* counters_;
  bool gated_;
  double lambda_;
  bool robust_;
  ExponentialBackoff backoff_;
  bool searching_ = false;
  bool pending_request_ = false;  // trusting mode only

  // Loss-tolerant mode state.
  std::uint32_t seq_ = 0;
  Op op_kind_ = Op::kNone;
  ResourceId op_target_ = 0;
  std::uint32_t op_seq_ = 0;
  unsigned op_retries_ = 0;
  std::map<std::uint32_t, PendingLeave> pending_leaves_;

  // Span tracing (observational; see SpanTrace).
  SpanTrace* spans_;
  bool traced_;
  std::uint64_t span_counter_ = 0;
  std::uint64_t op_span_ = 0;
};

}  // namespace

namespace {

AsyncRunResult run_async(const Instance& instance, const EngineConfig& config,
                         bool gated, double lambda) {
  const std::size_t m = instance.num_resources();
  const std::size_t n = instance.num_users();
  QOSLB_REQUIRE(config.initial_assignment.empty() ||
                    config.initial_assignment.size() == n,
                "initial_assignment must have one entry per user");
  const bool robust = config.force_timeouts || config.faults.any();

  AsyncRunResult result;
  DesEngine engine(config.seed, config.latency_jitter);
  // The DES keeps this clock at its virtual time, so the kEventDispatch
  // phase below measures virtual (deterministic) seconds — the async
  // instantiation of the Clock-injection pattern (docs/observability.md).
  // Attaching it is observational: the engine never reads it back.
  obs::VirtualClock virtual_clock;
  const bool telemetry_on = config.telemetry.any();
  if (telemetry_on) engine.set_clock(&virtual_clock);
  // Message-span tracing: same sink / sampling key as the sync decision
  // stream; emission reads the virtual clock and draws nothing.
  SpanTrace span_trace;
  SpanTrace* spans = nullptr;
  if (config.telemetry.decisions != nullptr) {
    span_trace.sink = config.telemetry.decisions;
    span_trace.clock = &virtual_clock;
    span_trace.sample_seed = config.seed;
    span_trace.sample_every = config.telemetry.decision_sample;
    spans = &span_trace;
    obs::TraceRunInfo info;
    info.protocol = gated ? "async-admission" : "async-optimistic";
    info.users = n;
    info.resources = m;
    info.seed = config.seed;
    info.threads = 1;
    info.mode = "async";
    span_trace.sink->begin_run(info, span_trace.sample_every);
  }
  // Each user keeps O(1) requests in flight and resources answer one-for-one,
  // so the pending set stays near 2n + m; pre-sizing it keeps the scheduling
  // path reallocation-free.
  engine.reserve(2 * n + m);
  std::optional<FaultInjector> injector;
  if (config.faults.any()) {
    // Mix the run seed into the plan seed so the same plan yields
    // independent fault realizations across replications.
    injector.emplace(config.faults,
                     config.faults.seed ^ (config.seed * 0x9E3779B97F4A7C15ULL));
    engine.set_fault_injector(&*injector);
  }

  std::vector<std::unique_ptr<ResourceAgent>> resources;
  std::vector<std::unique_ptr<UserAgent>> users;
  resources.reserve(m);
  users.reserve(n);

  for (ResourceId r = 0; r < m; ++r) {
    resources.push_back(
        std::make_unique<ResourceAgent>(r, &result.counters, gated, robust));
    const AgentId id = engine.add_agent(resources.back().get());
    QOSLB_CHECK(id == r, "resource agent ids must equal resource ids");
  }

  Xoshiro256 placement_rng(config.seed ^ 0xA5A5A5A5ULL);
  for (UserId u = 0; u < n; ++u) {
    ResourceId start;
    if (!config.initial_assignment.empty()) {
      start = config.initial_assignment[u];
      QOSLB_REQUIRE(start < m, "initial_assignment entry out of range");
    } else if (config.random_start) {
      start = static_cast<ResourceId>(uniform_u64_below(placement_rng, m));
    } else {
      start = ResourceId{0};
    }
    users.push_back(std::make_unique<UserAgent>(u, &instance, start,
                                                &result.counters, gated,
                                                lambda, robust,
                                                config.backoff, spans));
    const AgentId id = engine.add_agent(users.back().get());
    QOSLB_CHECK(id == m + u, "user agent ids must follow resource ids");
    resources[start]->seed_resident(id, instance.threshold(u, start));
  }

  {
    obs::ScopedPhase dispatch(telemetry_on ? &virtual_clock : nullptr,
                              &result.telemetry.phases,
                              obs::Phase::kEventDispatch);
    result.events = engine.run(config.max_events);
  }
  if (telemetry_on) {
    result.telemetry.enabled = true;
    // One ScopedPhase interval, but the natural "count" for the dispatch
    // bucket is deliveries, not run() calls.
    result.telemetry.phases[obs::Phase::kEventDispatch].count = result.events;
  }
  if (spans != nullptr) {
    result.telemetry.span_events = span_trace.span_events;
    span_trace.sink->end_run();
  }
  result.virtual_time = engine.now();
  result.counters.events = result.events;
  result.hit_event_cap = engine.pending() > 0;
  result.termination = result.hit_event_cap ? Termination::kEventCap
                                            : Termination::kQuiesced;
  if (injector) result.faults = injector->stats();

  // Final satisfaction from the users' own view (consistent when the queue
  // drained; best-effort when max_events was hit).
  std::vector<int> loads(m, 0);
  for (const auto& user : users) ++loads[user->current_resource()];
  for (UserId u = 0; u < n; ++u) {
    const ResourceId r = users[u]->current_resource();
    if (loads[r] <= instance.threshold(u, r)) ++result.satisfied;
  }
  result.all_satisfied = result.satisfied == n;
  return result;
}

}  // namespace

AsyncRunResult run_async_admission(const Instance& instance,
                                   const EngineConfig& config) {
  return run_async(instance, config, /*gated=*/true, /*lambda=*/1.0);
}

AsyncRunResult run_async_optimistic(const Instance& instance, double lambda,
                                    const EngineConfig& config) {
  QOSLB_REQUIRE(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1]");
  return run_async(instance, config, /*gated=*/false, lambda);
}

}  // namespace qoslb
