#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "sim/accounting.hpp"

namespace qoslb {

/// Configuration for the asynchronous (event-driven) protocol runs. The
/// DES engine delivers each message after its base delay plus Uniform(0,
/// latency_jitter) — there is no global round clock, matching the
/// asynchronous message-passing model of the distributed-computing setting.
struct AsyncConfig {
  std::uint64_t seed = 1;
  double latency_jitter = 0.5;
  std::uint64_t max_events = 5'000'000;
  bool random_start = true;  // false: all users start on resource 0
};

struct AsyncRunResult {
  bool all_satisfied = false;
  std::size_t satisfied = 0;
  double virtual_time = 0.0;   // time of the last delivered event
  std::uint64_t events = 0;
  Counters counters;
};

/// Runs the asynchronous admission protocol — the message-passing
/// realization of P4 (AdmissionControl): users probe their own resource,
/// search random alternatives when unsatisfied, and migrate only after an
/// explicit GRANT from the target resource; resources grant only if the
/// post-admission load keeps the requester and all currently satisfied
/// residents satisfied, and notify residents that become satisfied in place
/// when departures free capacity. Feasible instances quiesce (the event queue
/// drains); infeasible ones are cut off at max_events.
AsyncRunResult run_async_admission(const Instance& instance,
                                   const AsyncConfig& config = {});

/// Runs the *optimistic* asynchronous protocol — the message-passing
/// realization of P2 (UniformSampling) with migration probability `lambda`:
/// a user that sees a satisfying load simply joins (JOIN is not gated), so
/// decisions taken on in-flight information can overshoot, displace
/// residents, and re-trigger their searches. This is the asynchronous
/// herding failure mode the admission handshake removes; with λ well below
/// 1 the dynamics still settle in practice. Same config/termination
/// semantics as run_async_admission.
AsyncRunResult run_async_optimistic(const Instance& instance, double lambda,
                                    const AsyncConfig& config = {});

}  // namespace qoslb
