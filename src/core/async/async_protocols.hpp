#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/instance.hpp"
#include "core/accounting.hpp"
#include "sim/faults.hpp"
#include "util/backoff.hpp"

namespace qoslb {

/// The asynchronous (event-driven) runs are configured through the unified
/// EngineConfig: the DES engine delivers each message after its base delay
/// plus Uniform(0, latency_jitter) — there is no global round clock,
/// matching the asynchronous message-passing model of the
/// distributed-computing setting.
///
/// Fault injection: `faults` describes message drops/duplicates, heavy-tail
/// delays, and resource crash windows (see sim/faults.hpp). Whenever the
/// plan is active (faults.any()) — or `force_timeouts` is set — the agents
/// run in *loss-tolerant* mode: every probe/request carries a sequence
/// number, replies are matched against it (stale and duplicate messages are
/// suppressed), unanswered operations time out and are retried under
/// `backoff` with bounded attempts (delay(k) must exceed a round trip,
/// 2 * (1 + jitter)), and departures are retransmitted until acknowledged.
/// With an inert plan the protocols run exactly the paper's trusting
/// realization — byte-identical schedules and counters to the
/// pre-fault-layer implementation.

/// Result of the asynchronous free-function entry points below. The Engine
/// facade (run_async_admission / run_async_optimistic) folds this into the
/// unified EngineResult (satisfied → final_satisfied).
struct AsyncRunResult {
  bool all_satisfied = false;
  std::size_t satisfied = 0;
  double virtual_time = 0.0;   // time of the last delivered event
  std::uint64_t events = 0;
  Termination termination = Termination::kQuiesced;
  bool hit_event_cap = false;  // convenience: termination == kEventCap
  Counters counters;
  FaultStats faults;           // what the injector actually did (zero if off)
  /// kEventDispatch phase seconds are *virtual* seconds (the DES drives an
  /// obs::VirtualClock); count is the number of deliveries.
  obs::RunTelemetry telemetry;
};

/// Runs the asynchronous admission protocol — the message-passing
/// realization of P4 (AdmissionControl): users probe their own resource,
/// search random alternatives when unsatisfied, and migrate only after an
/// explicit GRANT from the target resource; resources grant only if the
/// post-admission load keeps the requester and all currently satisfied
/// residents satisfied, and notify residents that become satisfied in place
/// when departures free capacity. Feasible instances quiesce (the event queue
/// drains); infeasible ones are cut off at max_events. Under an active fault
/// plan the loss-tolerant machinery (timeouts, bounded retries with
/// exponential backoff, stale/duplicate suppression, acknowledged leaves)
/// keeps feasible instances converging instead of deadlocking on a lost
/// GRANT; a user whose resource crashed detects the silence via timeouts and
/// re-enters search.
AsyncRunResult run_async_admission(const Instance& instance,
                                   const EngineConfig& config = {});

/// Runs the *optimistic* asynchronous protocol — the message-passing
/// realization of P2 (UniformSampling) with migration probability `lambda`:
/// a user that sees a satisfying load simply joins (JOIN is not gated), so
/// decisions taken on in-flight information can overshoot, displace
/// residents, and re-trigger their searches. This is the asynchronous
/// herding failure mode the admission handshake removes; with λ well below
/// 1 the dynamics still settle in practice. Same config/termination/fault
/// semantics as run_async_admission.
AsyncRunResult run_async_optimistic(const Instance& instance, double lambda,
                                    const EngineConfig& config = {});

}  // namespace qoslb
