#include "core/runner.hpp"

namespace qoslb {

RunResult run_protocol(Protocol& protocol, State& state, Xoshiro256& rng,
                       const RunConfig& config) {
  return Engine(config).run(protocol, state, rng);
}

}  // namespace qoslb
