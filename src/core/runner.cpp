#include "core/runner.hpp"

#include "sim/round_engine.hpp"

namespace qoslb {
namespace {

class ProtocolTask : public RoundTask {
 public:
  ProtocolTask(Protocol& protocol, State& state, Xoshiro256& rng,
               const RunConfig& config, RunResult& result)
      : protocol_(&protocol), state_(&state), rng_(&rng), config_(&config),
        result_(&result) {}

  void round(std::uint64_t round_index) override {
    (void)round_index;
    protocol_->step(*state_, *rng_, result_->counters);
    ++result_->counters.rounds;
    satisfied_ = state_->count_satisfied();
    if (config_->record_trajectory)
      result_->unsatisfied_trajectory.push_back(
          static_cast<std::uint32_t>(state_->num_users() - satisfied_));
    ++rounds_done_;
  }

  bool converged() const override {
    if (rounds_done_ == 0) satisfied_ = state_->count_satisfied();
    // Fast path: full satisfaction implies stability for the satisfaction
    // protocols and is cheap to confirm for the others.
    if (satisfied_ == state_->num_users()) return protocol_->is_stable(*state_);
    if (rounds_done_ % config_->stability_check_period == 0)
      return protocol_->is_stable(*state_);
    return false;
  }

 private:
  Protocol* protocol_;
  State* state_;
  Xoshiro256* rng_;
  const RunConfig* config_;
  RunResult* result_;
  mutable std::size_t satisfied_ = 0;
  std::uint64_t rounds_done_ = 0;
};

}  // namespace

RunResult run_protocol(Protocol& protocol, State& state, Xoshiro256& rng,
                       const RunConfig& config) {
  RunResult result;
  protocol.reset();
  ProtocolTask task(protocol, state, rng, config, result);
  const RoundRunResult rounds = run_rounds(task, config.max_rounds);
  result.rounds = rounds.rounds;
  result.converged = rounds.converged;
  result.final_satisfied = state.count_satisfied();
  result.all_satisfied = result.final_satisfied == state.num_users();
  return result;
}

}  // namespace qoslb
