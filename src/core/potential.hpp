#pragma once

#include "core/state.hpp"

namespace qoslb {

/// Progress measures used by the convergence analyses and recorded in traces.

/// Rosenthal-style congestion potential Σ_r Σ_{k=1..ℓ_r} k / s_r. Strictly
/// decreases under any quality-improving unilateral move, so it certifies
/// termination of the best-response and Berenbrink dynamics.
double rosenthal_potential(const State& state);

/// Σ_u max(0, q_u − quality(u)): total quality deficit; 0 iff all satisfied.
double quality_deficit(const State& state);

/// Variance of the load vector (balance measure for the Berenbrink baseline).
double load_variance(const State& state);

}  // namespace qoslb
