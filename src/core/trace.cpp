#include "core/trace.hpp"

#include "core/engine.hpp"
#include "obs/trace_sink.hpp"
#include "util/csv.hpp"

namespace qoslb {

std::vector<RoundRecord> TraceRecorder::run(Protocol& protocol, State& state,
                                            Xoshiro256& rng,
                                            std::uint64_t max_rounds) {
  // The recorder's historical round loop is gone: a trace is now an Engine
  // run with an in-memory sink and a per-round stability check (the
  // recorder always checked every round). Note the engine realization for
  // step_users protocols derives one master seed per run instead of
  // re-drawing the caller's RNG per step — deterministic in (config, rng
  // state) as before, but a different stream than the pre-PR 5 recorder.
  obs::MemoryTraceSink sink;
  EngineConfig config;
  config.max_rounds = max_rounds;
  config.stability_check_period = 1;
  config.telemetry.sink = &sink;
  Engine(config).run(protocol, state, rng);

  std::vector<RoundRecord> records;
  records.reserve(sink.rows().size());
  for (const obs::TraceRow& row : sink.rows()) {
    RoundRecord rec;
    rec.round = row.round;
    rec.unsatisfied = static_cast<std::uint32_t>(row.unsatisfied);
    rec.migrations = row.migrations;
    rec.messages = row.messages;
    rec.max_load = static_cast<std::int32_t>(row.max_load);
    rec.potential = row.potential;
    records.push_back(rec);
  }
  return records;
}

void TraceRecorder::write_csv(const std::vector<RoundRecord>& records,
                              std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"round", "unsatisfied", "migrations", "messages", "max_load",
              "potential"});
  for (const RoundRecord& rec : records) {
    csv.cell(static_cast<unsigned long long>(rec.round))
        .cell(static_cast<unsigned long long>(rec.unsatisfied))
        .cell(static_cast<unsigned long long>(rec.migrations))
        .cell(static_cast<unsigned long long>(rec.messages))
        .cell(static_cast<long long>(rec.max_load))
        .cell(rec.potential);
    csv.end_row();
  }
}

}  // namespace qoslb
