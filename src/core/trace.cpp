#include "core/trace.hpp"

#include "core/potential.hpp"
#include "sim/accounting.hpp"
#include "util/csv.hpp"

namespace qoslb {
namespace {

RoundRecord snapshot(std::uint64_t round, const State& state,
                     const Counters& counters) {
  RoundRecord rec;
  rec.round = round;
  rec.unsatisfied = static_cast<std::uint32_t>(state.count_unsatisfied());
  rec.migrations = counters.migrations;
  rec.messages = counters.messages();
  rec.max_load = state.max_load();
  rec.potential = rosenthal_potential(state);
  return rec;
}

}  // namespace

std::vector<RoundRecord> TraceRecorder::run(Protocol& protocol, State& state,
                                            Xoshiro256& rng,
                                            std::uint64_t max_rounds) {
  protocol.reset();
  Counters counters;
  std::vector<RoundRecord> records;
  records.push_back(snapshot(0, state, counters));
  for (std::uint64_t round = 1; round <= max_rounds; ++round) {
    if (protocol.is_stable(state)) break;
    protocol.step(state, rng, counters);
    records.push_back(snapshot(round, state, counters));
  }
  return records;
}

void TraceRecorder::write_csv(const std::vector<RoundRecord>& records,
                              std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"round", "unsatisfied", "migrations", "messages", "max_load",
              "potential"});
  for (const RoundRecord& rec : records) {
    csv.cell(static_cast<unsigned long long>(rec.round))
        .cell(static_cast<unsigned long long>(rec.unsatisfied))
        .cell(static_cast<unsigned long long>(rec.migrations))
        .cell(static_cast<unsigned long long>(rec.messages))
        .cell(static_cast<long long>(rec.max_load))
        .cell(rec.potential);
    csv.end_row();
  }
}

}  // namespace qoslb
