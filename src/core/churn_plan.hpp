#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace qoslb {

/// What a scheduled churn event does to its resource.
enum class ChurnKind : std::uint8_t { kFail, kRecover };

/// One scheduled liveness flip, applied at the boundary of round `round`
/// before any user of that round decides.
struct ChurnEvent {
  std::uint64_t round = 0;
  ResourceId resource = kNoResource;
  ChurnKind kind = ChurnKind::kFail;
};

/// Deterministic in-run resource churn schedule (docs/faults.md). At each
/// listed round boundary the engine applies the round's events in list
/// order: kFail marks the resource dead, evicts its residents onto the
/// surviving live resources (targets drawn from a dedicated churn
/// substream keyed by (master seed, round, user), so the realization stays
/// thread- and mode-invariant), and removes it from every protocol's
/// sampling set; kRecover returns the resource to the sampling set. A run
/// with pending churn events never terminates as converged — the remaining
/// schedule must play out first.
struct ChurnPlan {
  std::vector<ChurnEvent> events;

  bool any() const { return !events.empty(); }

  // Chainable conveniences; events must be appended in round order.
  ChurnPlan& fail(std::uint64_t round, ResourceId resource);
  ChurnPlan& recover(std::uint64_t round, ResourceId resource);

  /// Statically checks the schedule against a world with `num_resources`
  /// resources by simulating liveness: events sorted by round, every
  /// resource in range, failures hit a live resource and leave at least one
  /// survivor, recoveries hit a dead one. Throws std::invalid_argument on
  /// the first violation.
  void validate(std::size_t num_resources) const;
};

/// Aggregate graceful-degradation metrics of a churned run, exported as
/// `churn/*` through src/obs/ and surfaced in EngineResult::churn. A "dip"
/// opens at a failure event (baseline = satisfied count just before it) and
/// closes once the satisfied count climbs back to the baseline.
struct ChurnStats {
  std::uint64_t failures = 0;    // kFail events applied
  std::uint64_t recoveries = 0;  // kRecover events applied
  std::uint64_t evicted = 0;     // users relocated off dead resources
  /// Deepest satisfied-fraction drop below the pre-failure baseline.
  double max_dip_depth = 0.0;
  /// Longest rounds-to-baseline recovery among closed dips.
  std::uint64_t max_recovery_rounds = 0;
  /// True when the run ended inside an unrecovered dip.
  bool dip_open = false;
};

/// Incremental tracker behind ChurnStats. All fields are plain data so a
/// checkpoint can serialize mid-dip progress (core/snapshot.hpp) and a
/// resumed run reports the same metrics as the uninterrupted one.
struct ChurnTracker {
  // Serialized field-by-field under the checkpoint's "churn" block header.
  ChurnStats stats;  // qoslb-snapshot: as(churn)
  bool in_dip = false;
  std::uint64_t dip_start_round = 0;
  std::uint64_t baseline_satisfied = 0;
  std::uint64_t min_satisfied = 0;

  /// A kFail event is being applied at the boundary of `round`;
  /// `satisfied_before` is the satisfied count just before eviction.
  void on_failure(std::uint64_t round, std::size_t satisfied_before);
  void on_recovery();
  void on_eviction(std::size_t count);

  /// Round `round` just committed with `satisfied` of `num_users` users
  /// satisfied; rolls the open dip forward and closes it at baseline.
  void on_round_end(std::uint64_t round, std::size_t satisfied,
                    std::size_t num_users);
};

}  // namespace qoslb
