#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/churn_plan.hpp"
#include "core/instance.hpp"
#include "core/state.hpp"
#include "core/types.hpp"
#include "core/accounting.hpp"

namespace qoslb {

class Protocol;

/// Crash-consistent checkpoint of a sharded engine run, taken at a round
/// boundary (docs/faults.md). The writer always emits the newest on-disk
/// version (currently v2, which adds the rate-model block); the reader
/// accepts exactly the versions it knows (v1, which implies a uniform rate
/// model, and v2) and rejects everything else loudly. Adding a field means
/// bumping the magic line again plus keeping the older read paths.
///
/// `next_round` is the first round that has NOT executed: the checkpoint is
/// taken before round `next_round`'s churn events and decisions. Resuming
/// re-derives every later round's Philox substreams from (master_seed,
/// round, user), so the continuation is bit-identical to the uninterrupted
/// run for any thread count and engine mode.
struct SnapshotV1 {
  std::string protocol;       // Protocol::name() of the checkpointed run
  std::uint64_t next_round = 0;
  /// The *effective* master seed after the engine folded its caller-RNG
  /// draw — resume reuses it verbatim and must never re-fold.
  std::uint64_t master_seed = 0;
  // On disk the count lines are named for what they count, not the member.
  std::vector<double> capacities;    // qoslb-snapshot: as(resources)
  std::vector<double> requirements;  // qoslb-snapshot: as(users)
  /// Per-(user, resource) service rates (v2; a v1 checkpoint reads back as
  /// the uniform model).
  RateModel rate_model;
  std::vector<ResourceId> assignment;
  std::vector<std::uint8_t> live;  // per-resource liveness bits
  Counters counters;               // totals up to (excluding) next_round
  ChurnTracker churn;              // mid-dip degradation progress
  /// Verbatim protocol cross-round state (Protocol::snapshot_write output);
  /// empty or newline-terminated.
  std::string protocol_state;

  /// Rebuilds the checkpointed instance.
  Instance make_instance() const;

  /// Rebuilds the checkpointed state against `instance` (which must come
  /// from make_instance() or compare equal), reapplying dead-resource flags.
  State make_state(const Instance& instance) const;
};

/// Serializes `snapshot` as the versioned text format (round-trip exact:
/// doubles at max_digits10).
void write_snapshot(std::ostream& out, const SnapshotV1& snapshot);

/// Parses a checkpoint; throws std::invalid_argument on unknown versions,
/// truncation, or any malformed field.
SnapshotV1 read_snapshot(std::istream& in);

/// Assembles a checkpoint from live run objects (engine internal; exposed
/// for the chaos harness and tests).
SnapshotV1 capture_snapshot(const Protocol& protocol, const State& state,
                            std::uint64_t master_seed,
                            std::uint64_t next_round, const Counters& counters,
                            const ChurnTracker& churn);

/// Order-sensitive fingerprint of an assignment + liveness configuration;
/// two states hash equal iff every user sits on the same resource and the
/// same resources are live. The chaos harness diffs this between a resumed
/// and an uninterrupted run.
std::uint64_t state_hash(const State& state);

}  // namespace qoslb
