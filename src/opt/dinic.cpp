#include "opt/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace qoslb {

Dinic::Dinic(std::size_t num_nodes) : graph_(num_nodes) {
  QOSLB_REQUIRE(num_nodes >= 2, "flow network needs at least two nodes");
}

std::size_t Dinic::add_edge(std::size_t from, std::size_t to, std::int64_t capacity) {
  QOSLB_REQUIRE(from < graph_.size() && to < graph_.size(), "node out of range");
  QOSLB_REQUIRE(capacity >= 0, "capacity must be non-negative");
  graph_[from].push_back(EdgeRec{to, graph_[to].size(), capacity, capacity});
  graph_[to].push_back(EdgeRec{from, graph_[from].size() - 1, 0, 0});
  edge_locator_.emplace_back(from, graph_[from].size() - 1);
  return edge_locator_.size() - 1;
}

bool Dinic::build_levels(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (const EdgeRec& e : graph_[v]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t Dinic::augment(std::size_t v, std::size_t sink, std::int64_t limit) {
  if (v == sink || limit == 0) return limit;
  for (std::size_t& i = next_edge_[v]; i < graph_[v].size(); ++i) {
    EdgeRec& e = graph_[v][i];
    if (e.cap > 0 && level_[e.to] == level_[v] + 1) {
      const std::int64_t pushed = augment(e.to, sink, std::min(limit, e.cap));
      if (pushed > 0) {
        e.cap -= pushed;
        graph_[e.to][e.rev].cap += pushed;
        return pushed;
      }
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(std::size_t source, std::size_t sink) {
  QOSLB_REQUIRE(source < graph_.size() && sink < graph_.size(), "node out of range");
  QOSLB_REQUIRE(source != sink, "source equals sink");
  std::int64_t total = 0;
  while (build_levels(source, sink)) {
    next_edge_.assign(graph_.size(), 0);
    while (true) {
      const std::int64_t pushed =
          augment(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t Dinic::flow_on(std::size_t edge_index) const {
  QOSLB_REQUIRE(edge_index < edge_locator_.size(), "edge index out of range");
  const auto [node, slot] = edge_locator_[edge_index];
  const EdgeRec& e = graph_[node][slot];
  return e.original_cap - e.cap;
}

}  // namespace qoslb
