#include "opt/satisfaction.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "opt/dinic.hpp"
#include "opt/partitions.hpp"
#include "util/check.hpp"

namespace qoslb {

GroupingResult min_resources_to_satisfy_all(std::vector<int> thresholds) {
  GroupingResult result;
  if (thresholds.empty()) {
    result.feasible = true;
    result.groups = 0;
    return result;
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<int>());
  if (thresholds.back() < 1) return result;  // a user no resource can satisfy

  // Greedy maximal blocks over the descending order. A block of size k
  // starting at i is valid iff thresholds[i + k - 1] >= k; validity is
  // monotone (enlarging a block can only lower its min threshold), so the
  // maximal k is found by scanning. Taking the maximal block first is optimal:
  // shrinking any block of an optimal partition and prepending the freed users
  // to an earlier (larger-threshold) block keeps both valid.
  const int n = static_cast<int>(thresholds.size());
  int i = 0;
  int groups = 0;
  while (i < n) {
    int k = 1;
    while (i + k < n && thresholds[i + k] >= k + 1) ++k;
    i += k;
    ++groups;
  }
  result.feasible = true;
  result.groups = groups;
  return result;
}

bool all_satisfiable(const std::vector<int>& thresholds, int m) {
  QOSLB_REQUIRE(m >= 0, "m must be non-negative");
  const GroupingResult g = min_resources_to_satisfy_all(thresholds);
  return g.feasible && g.groups <= m;
}

int satisfied_for_occupancies(const std::vector<std::vector<int>>& thresholds,
                              const std::vector<int>& occupancies) {
  const std::size_t n = thresholds.size();
  const std::size_t m = occupancies.size();
  QOSLB_REQUIRE(m >= 1, "need at least one resource");
  int total = 0;
  for (const int occ : occupancies) {
    QOSLB_REQUIRE(occ >= 0, "occupancy must be non-negative");
    total += occ;
  }
  QOSLB_REQUIRE(static_cast<std::size_t>(total) == n,
                "occupancies must place every user");

  // source = 0, users = 1..n, resources = n+1..n+m, sink = n+m+1.
  Dinic flow(n + m + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + m + 1;
  for (std::size_t u = 0; u < n; ++u) {
    QOSLB_REQUIRE(thresholds[u].size() == m, "threshold matrix shape mismatch");
    flow.add_edge(source, 1 + u, 1);
    for (std::size_t r = 0; r < m; ++r)
      if (occupancies[r] >= 1 && thresholds[u][r] >= occupancies[r])
        flow.add_edge(1 + u, 1 + n + r, 1);
  }
  for (std::size_t r = 0; r < m; ++r)
    flow.add_edge(1 + n + r, sink, occupancies[r]);

  // Matched users are satisfied; unmatched users fill the remaining slots
  // (sum of occupancies equals n, so a completion always exists).
  return static_cast<int>(flow.max_flow(source, sink));
}

std::vector<std::vector<int>> identical_threshold_matrix(
    const std::vector<int>& thresholds, int m) {
  QOSLB_REQUIRE(m >= 1, "need at least one resource");
  std::vector<std::vector<int>> matrix(thresholds.size());
  for (std::size_t u = 0; u < thresholds.size(); ++u)
    matrix[u].assign(static_cast<std::size_t>(m), thresholds[u]);
  return matrix;
}

int max_satisfied_identical(const std::vector<int>& thresholds, int m) {
  const int n = static_cast<int>(thresholds.size());
  QOSLB_REQUIRE(m >= 1, "need at least one resource");
  QOSLB_REQUIRE(n <= 64 && m <= 16, "exact optimizer guarded to n<=64, m<=16");
  if (n == 0) return 0;

  const auto matrix = identical_threshold_matrix(thresholds, m);
  int best = 0;
  for_each_partition(n, m, [&](const std::vector<int>& parts) {
    std::vector<int> occupancies = parts;
    occupancies.resize(static_cast<std::size_t>(m), 0);
    best = std::max(best, satisfied_for_occupancies(matrix, occupancies));
  });
  return best;
}

int max_satisfied_heterogeneous(const std::vector<std::vector<int>>& thresholds) {
  const int n = static_cast<int>(thresholds.size());
  QOSLB_REQUIRE(n >= 1, "need at least one user");
  const int m = static_cast<int>(thresholds.front().size());
  QOSLB_REQUIRE(n <= 16 && m <= 4, "exact optimizer guarded to n<=16, m<=4");

  int best = 0;
  for_each_composition(n, m, [&](const std::vector<int>& occupancies) {
    best = std::max(best, satisfied_for_occupancies(thresholds, occupancies));
  });
  return best;
}

int max_satisfied_greedy(const std::vector<int>& thresholds, int m) {
  QOSLB_REQUIRE(m >= 1, "need at least one resource");
  const int n = static_cast<int>(thresholds.size());
  if (n == 0) return 0;

  std::vector<int> sorted = thresholds;
  std::sort(sorted.begin(), sorted.end(), std::greater<int>());

  // groups_for(k): resources needed to satisfy the k loosest users, or
  // m+1 when impossible. Monotone non-decreasing in k.
  const auto groups_for = [&](int k) {
    if (k == 0) return 0;
    if (sorted[k - 1] < 1) return m + 1;  // an unsatisfiable user in the top-k
    const std::vector<int> top(sorted.begin(), sorted.begin() + k);
    const GroupingResult g = min_resources_to_satisfy_all(top);
    return g.feasible ? g.groups : m + 1;
  };

  // Satisfying everyone needs no dump resource (budget m); any proper subset
  // reserves one resource for the dumped users (budget m-1). The k = n case
  // breaks monotonicity of the combined predicate, so it is checked apart
  // and the binary search runs over k ≤ n-1.
  if (groups_for(n) <= m) return n;
  int lo = 0, hi = n - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (groups_for(mid) <= m - 1)
      lo = mid;
    else
      hi = mid - 1;
  }
  return groups_for(lo) <= m - 1 ? lo : 0;
}

int max_satisfied_bruteforce(const std::vector<std::vector<int>>& thresholds) {
  const std::size_t n = thresholds.size();
  QOSLB_REQUIRE(n >= 1, "need at least one user");
  const std::size_t m = thresholds.front().size();
  QOSLB_REQUIRE(std::pow(static_cast<double>(m), static_cast<double>(n)) <=
                    static_cast<double>(1 << 22),
                "brute force guarded to m^n <= 2^22");

  std::vector<std::size_t> assign(n, 0);
  std::vector<int> load(m, 0);
  int best = 0;
  while (true) {
    std::fill(load.begin(), load.end(), 0);
    for (std::size_t u = 0; u < n; ++u) ++load[assign[u]];
    int satisfied = 0;
    for (std::size_t u = 0; u < n; ++u)
      if (thresholds[u][assign[u]] >= load[assign[u]]) ++satisfied;
    best = std::max(best, satisfied);

    // Odometer increment over the m^n assignment space.
    std::size_t pos = 0;
    while (pos < n && ++assign[pos] == m) assign[pos++] = 0;
    if (pos == n) break;
  }
  return best;
}

}  // namespace qoslb
