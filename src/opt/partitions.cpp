#include "opt/partitions.hpp"

#include "util/check.hpp"

namespace qoslb {
namespace {

std::size_t partitions_rec(int remaining, int max_parts, int max_value,
                           std::vector<int>& prefix,
                           const std::function<void(const std::vector<int>&)>& visit) {
  if (remaining == 0) {
    visit(prefix);
    return 1;
  }
  if (max_parts == 0) return 0;
  std::size_t count = 0;
  for (int part = std::min(remaining, max_value); part >= 1; --part) {
    prefix.push_back(part);
    count += partitions_rec(remaining - part, max_parts - 1, part, prefix, visit);
    prefix.pop_back();
  }
  return count;
}

std::size_t compositions_rec(int remaining, int parts, std::vector<int>& prefix,
                             const std::function<void(const std::vector<int>&)>& visit) {
  if (parts == 0) {
    if (remaining != 0) return 0;
    visit(prefix);
    return 1;
  }
  std::size_t count = 0;
  for (int part = 0; part <= remaining; ++part) {
    prefix.push_back(part);
    count += compositions_rec(remaining - part, parts - 1, prefix, visit);
    prefix.pop_back();
  }
  return count;
}

}  // namespace

std::size_t for_each_partition(
    int total, int max_parts,
    const std::function<void(const std::vector<int>&)>& visit) {
  QOSLB_REQUIRE(total >= 0, "total must be non-negative");
  QOSLB_REQUIRE(max_parts >= 0, "max_parts must be non-negative");
  std::vector<int> prefix;
  return partitions_rec(total, max_parts, total, prefix, visit);
}

std::size_t for_each_composition(
    int total, int parts,
    const std::function<void(const std::vector<int>&)>& visit) {
  QOSLB_REQUIRE(total >= 0, "total must be non-negative");
  QOSLB_REQUIRE(parts >= 0, "parts must be non-negative");
  std::vector<int> prefix;
  return compositions_rec(total, parts, prefix, visit);
}

}  // namespace qoslb
