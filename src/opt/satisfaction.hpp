#pragma once

#include <vector>

namespace qoslb {

/// Centralized optimum baselines for QoS satisfaction.
///
/// All functions work on *thresholds*: user `u` on a resource with occupancy
/// (total number of users) `ℓ` is satisfied iff `ℓ ≤ t_u`, where
/// `t_u = ⌊s/q_u⌋` for capacity `s` and requirement `q_u` (see
/// core/instance.hpp). For identical resources every user has one threshold;
/// for heterogeneous resources there is a per-resource threshold matrix.

struct GroupingResult {
  bool feasible = false;  // can all users be satisfied with `groups` resources?
  int groups = 0;         // minimum number of resources needed (valid if feasible)
};

/// Minimum number of identical resources needed to satisfy *all* users.
/// Greedy on thresholds sorted descending: repeatedly take the largest block
/// k with (k-th largest remaining threshold) ≥ k. Infeasible iff some user
/// has threshold < 1. O(n log n).
GroupingResult min_resources_to_satisfy_all(std::vector<int> thresholds);

/// Can all users be satisfied on `m` identical resources?
bool all_satisfiable(const std::vector<int>& thresholds, int m);

/// Exact maximum number of simultaneously satisfied users for a *fixed*
/// occupancy vector: bipartite matching (user→resource edge iff
/// thresholds[u][r] ≥ occupancy[r], resource capacity = occupancy[r]) solved
/// with Dinic. Requires sum(occupancies) == number of users.
int satisfied_for_occupancies(const std::vector<std::vector<int>>& thresholds,
                              const std::vector<int>& occupancies);

/// Exact maximum satisfied count on `m` identical resources: enumerates
/// occupancy partitions (identical resources are exchangeable) and solves the
/// matching for each. Exponential in n — guarded to n ≤ 64, m ≤ 16; intended
/// for the price-of-anarchy table (E7) and tests.
int max_satisfied_identical(const std::vector<int>& thresholds, int m);

/// Exact maximum satisfied count with a per-resource threshold matrix
/// thresholds[u][r]: enumerates occupancy compositions. Tiny instances only
/// (guarded to n ≤ 16, m ≤ 4).
int max_satisfied_heterogeneous(const std::vector<std::vector<int>>& thresholds);

/// Ground-truth oracle: enumerates all m^n assignments. Tests only
/// (guarded to m^n ≤ 2^22).
int max_satisfied_bruteforce(const std::vector<std::vector<int>>& thresholds);

/// Expands a single-threshold-per-user vector into the matrix form used by
/// the exact optimizers (identical resources ⇒ every column equal).
std::vector<std::vector<int>> identical_threshold_matrix(
    const std::vector<int>& thresholds, int m);

/// Scalable lower bound on the identical-resource optimum (O(n log n)):
/// satisfy the k loosest users using the greedy grouping, dumping everyone
/// else on one sacrificial resource; the best k is found by binary search.
/// Selecting the top-k users by threshold is optimal for any fixed k
/// (replacing a satisfied user by a looser non-member keeps every group
/// valid), so the bound is exact whenever the optimum uses a pure dump
/// resource; it can undercount when the optimum parks unsatisfied users on
/// top of satisfied groups with spare headroom. Tests cross-check it against
/// max_satisfied_identical on small instances.
int max_satisfied_greedy(const std::vector<int>& thresholds, int m);

}  // namespace qoslb
