#pragma once

#include <cstdint>
#include <vector>

namespace qoslb {

/// Dinic's maximum-flow algorithm on an explicit residual graph. Used by the
/// exact satisfaction optimizer to solve the bipartite user/resource matching
/// with resource capacities. O(E·V²) generally, O(E·√V) on unit-capacity
/// bipartite graphs — far more than enough for the baseline instance sizes.
class Dinic {
 public:
  explicit Dinic(std::size_t num_nodes);

  /// Adds a directed edge with the given capacity; returns the edge index
  /// (usable with flow_on() after max_flow()).
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t capacity);

  std::int64_t max_flow(std::size_t source, std::size_t sink);

  /// Flow pushed through the edge returned by add_edge.
  std::int64_t flow_on(std::size_t edge_index) const;

  std::size_t num_nodes() const { return graph_.size(); }

 private:
  struct EdgeRec {
    std::size_t to;
    std::size_t rev;  // index of the reverse edge in graph_[to]
    std::int64_t cap;
    std::int64_t original_cap;
  };

  bool build_levels(std::size_t source, std::size_t sink);
  std::int64_t augment(std::size_t v, std::size_t sink, std::int64_t limit);

  std::vector<std::vector<EdgeRec>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_locator_;
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
};

}  // namespace qoslb
