#pragma once

#include <functional>
#include <vector>

namespace qoslb {

/// Enumerates all partitions of `total` into at most `max_parts` positive,
/// non-increasing parts, invoking `visit` with each partition. Used by the
/// exact satisfaction optimizer to sweep resource occupancy vectors for
/// identical resources (occupancies are exchangeable, so non-increasing
/// sequences suffice). Returns the number of partitions visited.
std::size_t for_each_partition(
    int total, int max_parts,
    const std::function<void(const std::vector<int>&)>& visit);

/// Enumerates all compositions of `total` into exactly `parts` non-negative
/// parts (ordered; used for heterogeneous resources where occupancies are not
/// exchangeable). Returns the number of compositions visited.
std::size_t for_each_composition(
    int total, int parts,
    const std::function<void(const std::vector<int>&)>& visit);

}  // namespace qoslb
