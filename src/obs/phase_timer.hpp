#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "obs/clock.hpp"

namespace qoslb::obs {

/// The engine's timed phase buckets. Sync rounds fill kStep/kCommit/
/// kSatisfactionCheck; async runs fill kEventDispatch; sink writes (trace
/// rows, progress lines) are accounted to kTrace so "sim seconds" can be
/// reported net of telemetry I/O (bench/bench_json.hpp timing_fields).
enum class Phase : std::uint8_t {
  kStep = 0,           // decide fan-out (sharded) or protocol step()
  kCommit,             // shard-ordered merge + commit_round
  kSatisfactionCheck,  // convergence / stability checks
  kTrace,              // trace-sink row emission (telemetry overhead)
  kEventDispatch,      // DES event loop (virtual seconds)
};

inline constexpr std::size_t kNumPhases = 5;

inline const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kStep: return "step";
    case Phase::kCommit: return "commit";
    case Phase::kSatisfactionCheck: return "satisfaction_check";
    case Phase::kTrace: return "trace";
    case Phase::kEventDispatch: return "event_dispatch";
  }
  return "?";
}

struct PhaseStat {
  double seconds = 0.0;
  std::uint64_t count = 0;
};

/// Per-run phase accumulator. Written only from the driving thread (the
/// sharded decide fan-out is timed as a whole, not per worker), so there is
/// nothing atomic here and nothing on the simulation path.
struct PhaseTimers {
  std::array<PhaseStat, kNumPhases> stats{};

  PhaseStat& operator[](Phase phase) {
    return stats[static_cast<std::size_t>(phase)];
  }
  const PhaseStat& operator[](Phase phase) const {
    return stats[static_cast<std::size_t>(phase)];
  }

  void add(Phase phase, double seconds) {
    PhaseStat& stat = (*this)[phase];
    stat.seconds += seconds;
    ++stat.count;
  }

  void merge(const PhaseTimers& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      stats[i].seconds += other.stats[i].seconds;
      stats[i].count += other.stats[i].count;
    }
  }
};

/// RAII phase timer. A null clock (telemetry off) makes construction and
/// destruction free of clock reads — the call site needs no branch.
class ScopedPhase {
 public:
  ScopedPhase(const Clock* clock, PhaseTimers* timers, Phase phase)
      : clock_(timers != nullptr ? clock : nullptr), timers_(timers),
        phase_(phase), start_(clock_ != nullptr ? clock_->now() : 0.0) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (clock_ != nullptr) timers_->add(phase_, clock_->now() - start_);
  }

 private:
  const Clock* clock_;
  PhaseTimers* timers_;
  Phase phase_;
  double start_;
};

}  // namespace qoslb::obs
