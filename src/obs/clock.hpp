#pragma once

#include <chrono>

namespace qoslb::obs {

/// Opaque monotonic time source, injected into the engine by the caller.
///
/// This is the Clock-injection pattern that keeps QL003/QL007 clean without
/// suppressions (docs/observability.md): the simulation core never names a
/// wall clock — it times phases through a `const Clock*` it was handed (and
/// does nothing when the pointer is null). Tools inject a SteadyClock;
/// async runs inject the DES's VirtualClock, so "phase seconds" there are
/// virtual seconds.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds since an arbitrary epoch; monotone within one run.
  virtual double now() const = 0;
};

/// The process-wide monotonic wall clock — the only sanctioned steady-clock
/// read inside src/ (enforced by qoslb-lint QL007).
class SteadyClock final : public Clock {
 public:
  double now() const override;
};

/// Manually-advanced deterministic clock. The DES drives one of these with
/// its virtual time (DesEngine::set_clock), so phase timers attached to an
/// async run measure virtual seconds and stay bit-reproducible.
/// Fully inline on purpose: sim code can advance it without linking obs.
class VirtualClock final : public Clock {
 public:
  double now() const override { return time_; }
  void set(double time) { time_ = time; }

 private:
  double time_ = 0.0;
};

/// Monotonic stopwatch for experiment timing. Lives in obs/ so every
/// steady-clock read in src/ stays in the observability layer (QL007);
/// the old util/timer.hpp shim is gone and QL003 keeps its path rejected.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qoslb::obs
