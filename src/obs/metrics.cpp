#include "obs/metrics.hpp"

#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace qoslb::obs {
namespace {

// Matches bench/bench_json.hpp number formatting so downstream parsers see
// one convention.
std::string fmt(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

CounterHandle MetricsRegistry::counter(const std::string& name) {
  const CounterHandle existing = find_counter(name);
  if (existing.valid()) return existing;
  counters_.push_back(CounterEntry{name, 0});
  const auto index = static_cast<std::uint32_t>(counters_.size() - 1);
  order_.push_back(Slot{Kind::kCounter, index});
  return CounterHandle{index};
}

GaugeHandle MetricsRegistry::gauge(const std::string& name) {
  const GaugeHandle existing = find_gauge(name);
  if (existing.valid()) return existing;
  gauges_.push_back(GaugeEntry{name, 0.0, false});
  const auto index = static_cast<std::uint32_t>(gauges_.size() - 1);
  order_.push_back(Slot{Kind::kGauge, index});
  return GaugeHandle{index};
}

HistogramHandle MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t buckets) {
  const HistogramHandle existing = find_histogram(name);
  if (existing.valid()) return existing;
  histograms_.push_back(HistogramEntry{name, Histogram(lo, hi, buckets)});
  const auto index = static_cast<std::uint32_t>(histograms_.size() - 1);
  order_.push_back(Slot{Kind::kHistogram, index});
  return HistogramHandle{index};
}

void MetricsRegistry::add(CounterHandle handle, std::uint64_t delta) {
  if (handle.valid()) counters_[handle.index].value += delta;
}

void MetricsRegistry::set(GaugeHandle handle, double value) {
  if (!handle.valid()) return;
  gauges_[handle.index].value = value;
  gauges_[handle.index].written = true;
}

void MetricsRegistry::observe(HistogramHandle handle, double sample) {
  if (handle.valid()) histograms_[handle.index].data.add(sample);
}

std::uint64_t MetricsRegistry::counter_value(CounterHandle handle) const {
  QOSLB_REQUIRE(handle.valid() && handle.index < counters_.size(),
                "invalid counter handle");
  return counters_[handle.index].value;
}

double MetricsRegistry::gauge_value(GaugeHandle handle) const {
  QOSLB_REQUIRE(handle.valid() && handle.index < gauges_.size(),
                "invalid gauge handle");
  return gauges_[handle.index].value;
}

const Histogram& MetricsRegistry::histogram_data(HistogramHandle handle) const {
  QOSLB_REQUIRE(handle.valid() && handle.index < histograms_.size(),
                "invalid histogram handle");
  return histograms_[handle.index].data;
}

CounterHandle MetricsRegistry::find_counter(const std::string& name) const {
  for (std::size_t i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == name)
      return CounterHandle{static_cast<std::uint32_t>(i)};
  return CounterHandle{};
}

GaugeHandle MetricsRegistry::find_gauge(const std::string& name) const {
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    if (gauges_[i].name == name)
      return GaugeHandle{static_cast<std::uint32_t>(i)};
  return GaugeHandle{};
}

HistogramHandle MetricsRegistry::find_histogram(const std::string& name) const {
  for (std::size_t i = 0; i < histograms_.size(); ++i)
    if (histograms_[i].name == name)
      return HistogramHandle{static_cast<std::uint32_t>(i)};
  return HistogramHandle{};
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Walk the other registry in its registration order so metrics that are
  // new to us append in a deterministic order too.
  for (const Slot& slot : other.order_) {
    switch (slot.kind) {
      case Kind::kCounter: {
        const CounterEntry& entry = other.counters_[slot.index];
        add(counter(entry.name), entry.value);
        break;
      }
      case Kind::kGauge: {
        const GaugeEntry& entry = other.gauges_[slot.index];
        if (entry.written) set(gauge(entry.name), entry.value);
        else gauge(entry.name);
        break;
      }
      case Kind::kHistogram: {
        const HistogramEntry& entry = other.histograms_[slot.index];
        const HistogramHandle mine = find_histogram(entry.name);
        if (mine.valid()) {
          histograms_[mine.index].data.merge(entry.data);
        } else {
          histograms_.push_back(entry);
          order_.push_back(Slot{
              Kind::kHistogram,
              static_cast<std::uint32_t>(histograms_.size() - 1)});
        }
        break;
      }
    }
  }
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  for (const Slot& slot : order_) {
    switch (slot.kind) {
      case Kind::kCounter: {
        const CounterEntry& entry = counters_[slot.index];
        out << "{\"metric\":\"" << escape(entry.name)
            << "\",\"type\":\"counter\",\"value\":" << entry.value << "}\n";
        break;
      }
      case Kind::kGauge: {
        const GaugeEntry& entry = gauges_[slot.index];
        out << "{\"metric\":\"" << escape(entry.name)
            << "\",\"type\":\"gauge\",\"value\":" << fmt(entry.value) << "}\n";
        break;
      }
      case Kind::kHistogram: {
        const HistogramEntry& entry = histograms_[slot.index];
        const Histogram& h = entry.data;
        out << "{\"metric\":\"" << escape(entry.name)
            << "\",\"type\":\"histogram\",\"total\":" << h.total()
            << ",\"underflow\":" << h.underflow()
            << ",\"overflow\":" << h.overflow() << ",\"buckets\":[";
        bool first = true;
        for (std::size_t b = 0; b < h.bucket_count(); ++b) {
          if (h.count(b) == 0) continue;
          if (!first) out << ',';
          first = false;
          out << "{\"lo\":" << fmt(h.bucket_lo(b))
              << ",\"hi\":" << fmt(h.bucket_hi(b))
              << ",\"count\":" << h.count(b) << '}';
        }
        out << "]}\n";
        break;
      }
    }
  }
}

}  // namespace qoslb::obs
