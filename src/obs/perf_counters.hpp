#pragma once

#include <array>
#include <cstdint>

#include "obs/phase_timer.hpp"

namespace qoslb::obs {

/// One reading of the four tracked hardware counters. All zero when the
/// counters are unavailable.
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// Thin `perf_event_open` wrapper: opens cycles / instructions /
/// cache-misses / branch-misses counters for the *calling thread* and reads
/// them on demand. Where the syscall is unavailable or forbidden (non-Linux,
/// containers and CI runners with perf_event_paranoid locked down, seccomp),
/// construction logs ONE warning naming the reason and every read() returns
/// zeros — runs degrade loudly but never fail (docs/observability.md
/// "Perf-counter availability").
///
/// The counters are per-thread (no inherit): attributions taken on the
/// engine's driving thread do not include the sharded decide fan-out that
/// runs on pool workers. The phase that measures end-to-end work on the
/// driving thread is still meaningful at any thread count; the availability
/// matrix in the docs spells out the caveat.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return available_; }

  /// Current counter values (monotonic totals since construction). Zeros
  /// when unavailable.
  PerfSample read() const;

 private:
  std::array<int, 4> fds_{{-1, -1, -1, -1}};
  bool available_ = false;
};

/// Per-phase hardware-counter totals, attributed on the driving thread with
/// the same before/after subtraction the phase clock uses. Mirrors
/// PhaseTimers; lives on RunTelemetry.
struct PhasePerf {
  std::array<PerfSample, kNumPhases> totals{};

  PerfSample& operator[](Phase phase) {
    return totals[static_cast<std::size_t>(phase)];
  }
  const PerfSample& operator[](Phase phase) const {
    return totals[static_cast<std::size_t>(phase)];
  }

  /// Adds the (after - before) delta into `phase`, saturating at zero per
  /// counter (counter multiplexing can make raw reads non-monotonic).
  void add(Phase phase, const PerfSample& before, const PerfSample& after);
};

}  // namespace qoslb::obs
