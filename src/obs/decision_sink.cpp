#include "obs/decision_sink.hpp"

#include <ostream>
#include <sstream>

namespace qoslb::obs {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* flag(bool value) { return value ? "true" : "false"; }

}  // namespace

// ---- MemoryDecisionSink ----

void MemoryDecisionSink::begin_run(const TraceRunInfo& info,
                                   std::uint64_t sample_every) {
  (void)sample_every;
  runs_.push_back(info);
}

void MemoryDecisionSink::decision(const DecisionEvent& event) {
  decisions_.push_back(event);
}

void MemoryDecisionSink::span(const SpanEvent& event) {
  spans_.push_back(event);
}

void MemoryDecisionSink::diag(const DiagRow& row) { diags_.push_back(row); }

void MemoryDecisionSink::finding(const DecisionFinding& finding) {
  findings_.push_back(finding);
}

void MemoryDecisionSink::clear() {
  runs_.clear();
  decisions_.clear();
  spans_.clear();
  diags_.clear();
  findings_.clear();
}

// ---- JsonlDecisionSink ----

void JsonlDecisionSink::begin_run(const TraceRunInfo& info,
                                  std::uint64_t sample_every) {
  decisions_ = spans_ = findings_ = 0;
  *out_ << "{\"kind\":\"begin\",\"protocol\":\"" << escape(info.protocol)
        << "\",\"users\":" << info.users
        << ",\"resources\":" << info.resources << ",\"seed\":" << info.seed
        << ",\"threads\":" << info.threads << ",\"mode\":\""
        << escape(info.mode) << "\",\"sample_every\":" << sample_every
        << "}\n";
}

void JsonlDecisionSink::decision(const DecisionEvent& event) {
  ++decisions_;
  *out_ << "{\"kind\":\"decision\",\"round\":" << event.round
        << ",\"user\":" << event.user << ",\"from\":" << event.from
        << ",\"probe\":" << event.probe << ",\"target\":" << event.target
        << ",\"to\":" << event.to << ",\"threshold\":" << event.threshold
        << ",\"requested\":" << flag(event.requested)
        << ",\"granted\":" << flag(event.granted)
        << ",\"satisfied_before\":" << flag(event.satisfied_before)
        << ",\"satisfied_after\":" << flag(event.satisfied_after) << "}\n";
}

void JsonlDecisionSink::span(const SpanEvent& event) {
  ++spans_;
  *out_ << "{\"kind\":\"span\",\"span\":" << event.span
        << ",\"user\":" << event.user << ",\"op\":\"" << escape(event.op)
        << "\",\"msg\":\"" << escape(event.msg)
        << "\",\"target\":" << event.target << ",\"seq\":" << event.seq
        << ",\"time\":" << fmt(event.time) << "}\n";
}

void JsonlDecisionSink::diag(const DiagRow& row) {
  *out_ << "{\"kind\":\"diag\",\"round\":" << row.round
        << ",\"migrations\":" << row.migrations
        << ",\"inflow_max\":" << row.inflow_max
        << ",\"inflow_argmax\":" << row.inflow_argmax
        << ",\"outflow_at_argmax\":" << row.outflow_at_argmax
        << ",\"herding_ratio\":" << fmt(row.herding_ratio)
        << ",\"l_inf\":" << fmt(row.l_inf) << ",\"l2\":" << fmt(row.l2)
        << "}\n";
}

void JsonlDecisionSink::finding(const DecisionFinding& finding) {
  ++findings_;
  *out_ << "{\"kind\":\"finding\",\"detector\":\"" << escape(finding.detector)
        << "\",\"round\":" << finding.round
        << ",\"resource\":" << finding.resource
        << ",\"inflow\":" << finding.inflow
        << ",\"outflow\":" << finding.outflow
        << ",\"ratio\":" << fmt(finding.ratio) << "}\n";
}

void JsonlDecisionSink::end_run() {
  *out_ << "{\"kind\":\"end\",\"decisions\":" << decisions_
        << ",\"spans\":" << spans_ << ",\"findings\":" << findings_ << "}\n";
  out_->flush();
}

}  // namespace qoslb::obs
