#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace qoslb::obs {

/// Handles are plain indices into the registry's typed arrays: registering
/// (a name lookup) happens once per run, every subsequent add/set/observe is
/// an O(1) array write with no hashing and no locks. A default-constructed
/// handle is invalid and every operation on it is a no-op, so call sites
/// need no "is telemetry on?" branches.
struct CounterHandle {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct GaugeHandle {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct HistogramHandle {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};

/// Named counters, gauges, and histograms for one run (or one shard — see
/// merge()). Not thread-safe by design: the engine only writes metrics from
/// the driving thread, and parallel producers each fill a private registry
/// that is merged afterwards in a deterministic order, which is how
/// telemetry stays off the simulation path (docs/observability.md).
class MetricsRegistry {
 public:
  /// Get-or-register by name. Registration order is preserved and is the
  /// JSONL emission order, so output files diff cleanly across runs.
  CounterHandle counter(const std::string& name);
  GaugeHandle gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name, double lo, double hi,
                            std::size_t buckets);

  void add(CounterHandle handle, std::uint64_t delta = 1);
  void set(GaugeHandle handle, double value);
  void observe(HistogramHandle handle, double sample);

  std::uint64_t counter_value(CounterHandle handle) const;
  double gauge_value(GaugeHandle handle) const;
  const Histogram& histogram_data(HistogramHandle handle) const;

  /// Lookup without registering; invalid handle when absent.
  CounterHandle find_counter(const std::string& name) const;
  GaugeHandle find_gauge(const std::string& name) const;
  HistogramHandle find_histogram(const std::string& name) const;

  /// Folds `other` into this registry: counters add, set gauges overwrite,
  /// histograms merge bucket-wise (identical binning required). Metrics new
  /// to `other` are appended in its registration order, so merging shard
  /// registries in shard order yields one deterministic result — the
  /// metrics analogue of the engine's shard-ordered Counters merge.
  void merge(const MetricsRegistry& other);

  /// One JSON object per line, in registration order:
  ///   {"metric":"engine/rounds","type":"counter","value":12}
  ///   {"metric":"state/potential","type":"gauge","value":42.5}
  ///   {"metric":"...","type":"histogram","total":...,"underflow":...,
  ///    "overflow":...,"buckets":[{"lo":...,"hi":...,"count":...},...]}
  /// Histogram bucket entries with count 0 are omitted.
  void write_jsonl(std::ostream& out) const;

  std::size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

 private:
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
    bool written = false;
  };
  struct HistogramEntry {
    std::string name;
    Histogram data;
  };
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::uint32_t index;
  };

  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistogramEntry> histograms_;
  std::vector<Slot> order_;  // registration order across all kinds
};

}  // namespace qoslb::obs
