#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

namespace qoslb::obs {

/// Sentinel for "no resource" in decision events (kNoResource narrowed to a
/// signed JSON-friendly value; the engine maps core ids to these fields).
inline constexpr std::int64_t kNoDecisionTarget = -1;

/// One sampled per-user decision from a synchronous round, fully resolved:
/// the engine fills the pre-commit half from the protocol's shard scratch
/// (docs/observability.md "Decision events") and the post-commit half from
/// the committed state, so `granted`/`to` reflect admission outcomes.
struct DecisionEvent {
  std::uint64_t round = 0;
  std::uint64_t user = 0;
  std::int64_t from = kNoDecisionTarget;    // resource at the round boundary
  std::int64_t probe = kNoDecisionTarget;   // best candidate probed, if any
  std::int64_t target = kNoDecisionTarget;  // requested target, if any
  std::int64_t to = kNoDecisionTarget;      // resource after commit
  std::int64_t threshold = 0;  // threshold(user, probe) when a probe landed
  bool requested = false;      // a migration request was filed
  bool granted = false;        // the commit moved the user (to != from)
  bool satisfied_before = false;
  bool satisfied_after = false;
};

/// One message-span event from the asynchronous/DES path. A span is one
/// logical operation attempt chain (probe, migration request, leave): every
/// send/retry/timeout/ack of the same in-flight operation carries the same
/// span id, so a reader can reconstruct per-operation latency and retry
/// fan-out (docs/observability.md "Span events").
struct SpanEvent {
  std::uint64_t span = 0;  // (agent id << 20) | per-agent operation sequence
  std::uint64_t user = 0;
  std::string op;    // "send" | "retry" | "timeout" | "ack"
  std::string msg;   // probe|request|leave|grant|reject|load_reply|leave_ack
  std::int64_t target = kNoDecisionTarget;  // peer resource, if addressed
  std::uint64_t seq = 0;                    // attempt number within the span
  double time = 0.0;                        // DES virtual time
};

/// Per-round convergence diagnostics derived from the committed round
/// (merged from per-shard scratch in shard order, so the series is
/// thread/mode/layout-invariant).
struct DiagRow {
  std::uint64_t round = 0;
  std::uint64_t migrations = 0;         // granted moves this round
  std::uint64_t inflow_max = 0;         // max in-migrations into one resource
  std::int64_t inflow_argmax = kNoDecisionTarget;
  std::uint64_t outflow_at_argmax = 0;  // that resource's drain this round
  double herding_ratio = 0.0;           // inflow_max / max(1, outflow)
  double l_inf = 0.0;  // max normalized-load deviation from the live mean
  double l2 = 0.0;     // rms normalized-load deviation
};

/// A detector hit. `detector` currently is always "herding": a round where
/// in-migrations into one resource exceeded herding_factor times its drain.
struct DecisionFinding {
  std::string detector;
  std::uint64_t round = 0;
  std::int64_t resource = kNoDecisionTarget;
  std::uint64_t inflow = 0;
  std::uint64_t outflow = 0;
  double ratio = 0.0;
};

/// Where decision/span/diagnostic events go. Like TraceSink, the engine is
/// the only producer and calls from the driving thread strictly outside the
/// decide/commit hot path (the DES loop is single-threaded), so
/// implementations need no synchronization and must not observe or mutate
/// simulation state — the hash-invariance contract covers any sink.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;

  virtual void begin_run(const TraceRunInfo& info, std::uint64_t sample_every) {
    (void)info;
    (void)sample_every;
  }
  virtual void decision(const DecisionEvent& event) = 0;
  virtual void span(const SpanEvent& event) { (void)event; }
  virtual void diag(const DiagRow& row) { (void)row; }
  virtual void finding(const DecisionFinding& finding) { (void)finding; }
  virtual void end_run() {}
};

/// Buffers everything in memory — tests and in-process consumers.
class MemoryDecisionSink final : public DecisionSink {
 public:
  void begin_run(const TraceRunInfo& info, std::uint64_t sample_every) override;
  void decision(const DecisionEvent& event) override;
  void span(const SpanEvent& event) override;
  void diag(const DiagRow& row) override;
  void finding(const DecisionFinding& finding) override;

  const std::vector<TraceRunInfo>& runs() const { return runs_; }
  const std::vector<DecisionEvent>& decisions() const { return decisions_; }
  const std::vector<SpanEvent>& spans() const { return spans_; }
  const std::vector<DiagRow>& diags() const { return diags_; }
  const std::vector<DecisionFinding>& findings() const { return findings_; }
  void clear();

 private:
  std::vector<TraceRunInfo> runs_;
  std::vector<DecisionEvent> decisions_;
  std::vector<SpanEvent> spans_;
  std::vector<DiagRow> diags_;
  std::vector<DecisionFinding> findings_;
};

/// One kind-tagged JSON object per line (schema golden-tested in
/// tests/obs_trace_test.cpp, catalogued in docs/observability.md):
///   {"kind":"begin","protocol":...,...,"sample_every":k}
///   {"kind":"decision","round":...,"user":...,...}
///   {"kind":"span","span":...,"op":...,...}
///   {"kind":"diag","round":...,"inflow_max":...,...}
///   {"kind":"finding","detector":"herding",...}
///   {"kind":"end","decisions":...,"spans":...,"findings":...}
class JsonlDecisionSink final : public DecisionSink {
 public:
  /// The stream is borrowed and must outlive the sink.
  explicit JsonlDecisionSink(std::ostream& out) : out_(&out) {}

  void begin_run(const TraceRunInfo& info, std::uint64_t sample_every) override;
  void decision(const DecisionEvent& event) override;
  void span(const SpanEvent& event) override;
  void diag(const DiagRow& row) override;
  void finding(const DecisionFinding& finding) override;
  void end_run() override;

 private:
  std::ostream* out_;
  std::uint64_t decisions_ = 0;
  std::uint64_t spans_ = 0;
  std::uint64_t findings_ = 0;
};

}  // namespace qoslb::obs
