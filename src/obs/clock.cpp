#include "obs/clock.hpp"

namespace qoslb::obs {

double SteadyClock::now() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace qoslb::obs
