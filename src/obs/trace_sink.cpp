#include "obs/trace_sink.hpp"

#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace qoslb::obs {
namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

// ---- MemoryTraceSink ----

void MemoryTraceSink::begin_run(const TraceRunInfo& info) {
  runs_.push_back(info);
}

void MemoryTraceSink::row(const TraceRow& row) { rows_.push_back(row); }

void MemoryTraceSink::clear() {
  runs_.clear();
  rows_.clear();
}

// ---- JsonlTraceSink ----

void JsonlTraceSink::begin_run(const TraceRunInfo& info) {
  *out_ << "{\"event\":\"begin\",\"protocol\":\"" << escape(info.protocol)
        << "\",\"users\":" << info.users
        << ",\"resources\":" << info.resources << ",\"seed\":" << info.seed
        << ",\"threads\":" << info.threads << ",\"mode\":\""
        << escape(info.mode) << "\"}\n";
}

void JsonlTraceSink::row(const TraceRow& row) {
  *out_ << "{\"round\":" << row.round << ",\"unsatisfied\":" << row.unsatisfied
        << ",\"migrations\":" << row.migrations
        << ",\"messages\":" << row.messages << ",\"max_load\":" << row.max_load
        << ",\"potential\":" << fmt(row.potential)
        << ",\"active_size\":" << row.active_size << "}\n";
}

void JsonlTraceSink::end_run() {
  *out_ << "{\"event\":\"end\"}\n";
  out_->flush();
}

// ---- CsvTraceSink ----

void CsvTraceSink::begin_run(const TraceRunInfo& info) {
  (void)info;
  if (header_written_) return;
  header_written_ = true;
  *out_ << "round,unsatisfied,migrations,messages,max_load,potential,"
           "active_size\n";
}

void CsvTraceSink::row(const TraceRow& row) {
  *out_ << row.round << ',' << row.unsatisfied << ',' << row.migrations << ','
        << row.messages << ',' << row.max_load << ',' << fmt(row.potential)
        << ',' << row.active_size << '\n';
}

void CsvTraceSink::end_run() { out_->flush(); }

// ---- TeeTraceSink ----

void TeeTraceSink::begin_run(const TraceRunInfo& info) {
  for (TraceSink* sink : sinks_)
    if (sink != nullptr) sink->begin_run(info);
}

void TeeTraceSink::row(const TraceRow& row) {
  for (TraceSink* sink : sinks_)
    if (sink != nullptr) sink->row(row);
}

void TeeTraceSink::end_run() {
  for (TraceSink* sink : sinks_)
    if (sink != nullptr) sink->end_run();
}

// ---- ProgressTraceSink ----

ProgressTraceSink::ProgressTraceSink(std::uint64_t every) : every_(every) {
  QOSLB_REQUIRE(every_ >= 1, "progress interval must be positive");
}

void ProgressTraceSink::begin_run(const TraceRunInfo& info) {
  label_ = info.protocol;
  last_ = TraceRow{};
  last_logged_ = true;
  QOSLB_INFO << label_ << ": n=" << info.users << " m=" << info.resources
             << " threads=" << info.threads << " mode=" << info.mode;
}

void ProgressTraceSink::row(const TraceRow& row) {
  last_ = row;
  last_logged_ = row.round % every_ == 0;
  if (last_logged_) log_row(row);
}

void ProgressTraceSink::end_run() {
  // Always show the terminal state even when the run length is not a
  // multiple of the reporting interval.
  if (!last_logged_) log_row(last_);
}

void ProgressTraceSink::log_row(const TraceRow& row) const {
  QOSLB_INFO << label_ << ": round " << row.round << " unsatisfied "
             << row.unsatisfied << " migrations " << row.migrations
             << " max_load " << row.max_load;
}

}  // namespace qoslb::obs
