#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qoslb::obs {

/// Immutable run header, pushed to a sink before the first row.
struct TraceRunInfo {
  std::string protocol;
  std::uint64_t users = 0;
  std::uint64_t resources = 0;
  std::uint64_t seed = 0;
  std::uint64_t threads = 1;
  std::string mode;  // "dense" | "active" | "sequential" | "weighted"
};

/// One per-round trace row — the structured successor of the legacy
/// RoundRecord. Counters are cumulative; `active_size` is the number of
/// users the round iterated (n on the dense paths, |unsatisfied| in active
/// mode, 0 for the round-0 snapshot row).
struct TraceRow {
  std::uint64_t round = 0;
  std::uint64_t unsatisfied = 0;
  std::uint64_t migrations = 0;  // cumulative
  std::uint64_t messages = 0;    // cumulative
  std::int64_t max_load = 0;
  double potential = 0.0;  // Rosenthal potential
  std::uint64_t active_size = 0;
};

/// Where trace rows go. The engine is the only producer and calls from the
/// driving thread only, strictly outside the decide/commit hot path, so
/// implementations need no synchronization. Sinks must not observe or
/// mutate simulation state — the hash-invariance contract
/// (tests/core_telemetry_test.cpp) holds for any sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin_run(const TraceRunInfo& info) { (void)info; }
  virtual void row(const TraceRow& row) = 0;
  virtual void end_run() {}
};

/// Buffers rows in memory — tests and in-process consumers use this.
class MemoryTraceSink final : public TraceSink {
 public:
  void begin_run(const TraceRunInfo& info) override;
  void row(const TraceRow& row) override;

  const std::vector<TraceRunInfo>& runs() const { return runs_; }
  const std::vector<TraceRow>& rows() const { return rows_; }
  void clear();

 private:
  std::vector<TraceRunInfo> runs_;
  std::vector<TraceRow> rows_;
};

/// One JSON object per line (schema golden-tested in
/// tests/obs_trace_test.cpp, documented in docs/observability.md):
///   {"event":"begin","protocol":...,"users":...,"resources":...,
///    "seed":...,"threads":...,"mode":...}
///   {"round":0,"unsatisfied":...,...,"active_size":...}
///   {"event":"end"}
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream is borrowed and must outlive the sink.
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void begin_run(const TraceRunInfo& info) override;
  void row(const TraceRow& row) override;
  void end_run() override;

 private:
  std::ostream* out_;
};

/// CSV with the legacy trace.hpp column set plus active_size. The header is
/// written once per sink (on the first begin_run).
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& out) : out_(&out) {}

  void begin_run(const TraceRunInfo& info) override;
  void row(const TraceRow& row) override;
  void end_run() override;

 private:
  std::ostream* out_;
  bool header_written_ = false;
};

/// Fans rows out to several sinks (borrowed, nulls skipped) in order.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink() = default;
  explicit TeeTraceSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(TraceSink* sink) { sinks_.push_back(sink); }

  void begin_run(const TraceRunInfo& info) override;
  void row(const TraceRow& row) override;
  void end_run() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Logs a one-line progress summary through QOSLB_INFO every `every` rounds
/// (and for the final row, on end_run) — the CLI's --progress flag.
class ProgressTraceSink final : public TraceSink {
 public:
  explicit ProgressTraceSink(std::uint64_t every = 100);

  void begin_run(const TraceRunInfo& info) override;
  void row(const TraceRow& row) override;
  void end_run() override;

 private:
  void log_row(const TraceRow& row) const;

  std::uint64_t every_;
  std::string label_;
  TraceRow last_{};
  bool last_logged_ = true;
};

}  // namespace qoslb::obs
