#pragma once

#include <cstdint>

#include "obs/phase_timer.hpp"

namespace qoslb::obs {

class Clock;
class MetricsRegistry;
class TraceSink;

/// Telemetry options on EngineConfig. Everything is borrowed and optional;
/// all-null (the default) is the guaranteed-zero-overhead configuration.
/// Whatever is attached, the realization is unchanged: telemetry reads the
/// simulation, never feeds it (tests/core_telemetry_test.cpp pins the
/// assignment hashes on vs. off across threads and modes).
struct Telemetry {
  /// Counters/gauges/histograms filled over the run and finalized with the
  /// result (metrics catalog: docs/observability.md).
  MetricsRegistry* metrics = nullptr;
  /// Per-round trace rows (round-0 snapshot included). Only the synchronous
  /// round paths produce rows; weighted and async runs fill metrics and
  /// phase timers only.
  TraceSink* sink = nullptr;
  /// Phase-timer time source. Null disables timing; tools inject a
  /// SteadyClock, async runs override with the DES virtual clock.
  const Clock* clock = nullptr;
  /// Emit every k-th round's row (the round-0 snapshot and the final round
  /// are always emitted). 1 = every round.
  std::uint64_t trace_every = 1;

  bool any() const {
    return metrics != nullptr || sink != nullptr || clock != nullptr;
  }
};

/// Per-run telemetry snapshot on EngineResult.
struct RunTelemetry {
  bool enabled = false;  // any telemetry option was attached
  PhaseTimers phases;
  std::uint64_t trace_rows = 0;  // rows emitted to the sink

  /// Wall time spent emitting trace rows — subtract from a measured wall
  /// time to get sink-free "sim seconds" (bench_json timing_fields).
  double sink_seconds() const { return phases[Phase::kTrace].seconds; }
};

}  // namespace qoslb::obs
