#pragma once

#include <cstdint>

#include "obs/perf_counters.hpp"
#include "obs/phase_timer.hpp"

namespace qoslb::obs {

class Clock;
class DecisionSink;
class MetricsRegistry;
class TraceSink;

/// Telemetry options on EngineConfig. Everything is borrowed and optional;
/// all-null (the default) is the guaranteed-zero-overhead configuration.
/// Whatever is attached, the realization is unchanged: telemetry reads the
/// simulation, never feeds it (tests/core_telemetry_test.cpp and
/// tests/core_decision_trace_test.cpp pin the assignment hashes on vs. off
/// across threads and modes).
struct Telemetry {
  /// Counters/gauges/histograms filled over the run and finalized with the
  /// result (metrics catalog: docs/observability.md).
  MetricsRegistry* metrics = nullptr;
  /// Per-round trace rows (round-0 snapshot included). Only the synchronous
  /// round paths produce rows; weighted and async runs fill metrics and
  /// phase timers only.
  TraceSink* sink = nullptr;
  /// Phase-timer time source. Null disables timing; tools inject a
  /// SteadyClock, async runs override with the DES virtual clock.
  const Clock* clock = nullptr;
  /// Emit every k-th round's row (the round-0 snapshot and the final round
  /// are always emitted). 1 = every round.
  std::uint64_t trace_every = 1;

  /// Per-decision / span / diagnostics stream (docs/observability.md v2).
  /// Sharded sync rounds emit sampled decision events and per-round
  /// diagnostics; async runs emit message spans. Null disables all three.
  DecisionSink* decisions = nullptr;
  /// Sample 1-in-k users for decision/span events, keyed on a pure hash of
  /// (seed, user) — decision_sampled() in core/protocol.hpp — so the
  /// sampled set is thread/mode/layout-invariant and tracing never touches
  /// a protocol RNG stream. 1 = every user.
  std::uint64_t decision_sample = 1;
  /// Herding detector threshold: flag a round when the in-migrations into
  /// one resource exceed `herding_factor` times that resource's same-round
  /// drain (and there is more than one in-migration).
  double herding_factor = 4.0;
  /// Hardware counters (obs/perf_counters.hpp), attributed per phase on the
  /// driving thread. Null disables; an unavailable wrapper reads zeros.
  PerfCounters* perf = nullptr;

  bool any() const {
    return metrics != nullptr || sink != nullptr || clock != nullptr ||
           decisions != nullptr || perf != nullptr;
  }
};

/// Per-run telemetry snapshot on EngineResult.
struct RunTelemetry {
  bool enabled = false;  // any telemetry option was attached
  PhaseTimers phases;
  std::uint64_t trace_rows = 0;  // rows emitted to the sink

  // Decision-stream accounting (zero when no DecisionSink was attached).
  std::uint64_t decision_events = 0;
  std::uint64_t span_events = 0;
  std::uint64_t herding_findings = 0;
  double max_herding_ratio = 0.0;

  // Per-phase hardware-counter totals (zero when no PerfCounters attached
  // or the counters could not be opened).
  bool perf_available = false;
  PhasePerf perf;

  /// Wall time spent emitting trace rows — subtract from a measured wall
  /// time to get sink-free "sim seconds" (bench_json timing_fields).
  double sink_seconds() const { return phases[Phase::kTrace].seconds; }
};

}  // namespace qoslb::obs
