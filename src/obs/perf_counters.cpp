#include "obs/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#include "util/log.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace qoslb::obs {

#if defined(__linux__)
namespace {

constexpr std::array<std::uint64_t, 4> kEventConfigs = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

constexpr std::array<const char*, 4> kEventNames = {
    "cycles", "instructions", "cache-misses", "branch-misses"};

int open_counter(std::uint64_t config) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1, no inherit: count this thread only, on any CPU.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd < 0) return 0;
  if (::read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    fds_[i] = open_counter(kEventConfigs[i]);
    if (fds_[i] < 0) {
      QOSLB_WARN << "perf counters unavailable (" << kEventNames[i] << ": "
                 << std::strerror(errno)
                 << "); perf/* metrics will read zero";
      for (std::size_t j = 0; j < i; ++j) {
        ::close(fds_[j]);
        fds_[j] = -1;
      }
      fds_[i] = -1;
      return;
    }
  }
  available_ = true;
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
}

PerfSample PerfCounters::read() const {
  PerfSample sample;
  if (!available_) return sample;
  sample.cycles = read_counter(fds_[0]);
  sample.instructions = read_counter(fds_[1]);
  sample.cache_misses = read_counter(fds_[2]);
  sample.branch_misses = read_counter(fds_[3]);
  return sample;
}

#else  // !__linux__

PerfCounters::PerfCounters() {
  QOSLB_WARN << "perf counters unavailable (perf_event_open is "
                "Linux-only); perf/* metrics will read zero";
}

PerfCounters::~PerfCounters() = default;

PerfSample PerfCounters::read() const { return PerfSample{}; }

#endif

void PhasePerf::add(Phase phase, const PerfSample& before,
                    const PerfSample& after) {
  const auto delta = [](std::uint64_t lo, std::uint64_t hi) {
    return hi > lo ? hi - lo : 0;
  };
  PerfSample& total = (*this)[phase];
  total.cycles += delta(before.cycles, after.cycles);
  total.instructions += delta(before.instructions, after.instructions);
  total.cache_misses += delta(before.cache_misses, after.cache_misses);
  total.branch_misses += delta(before.branch_misses, after.branch_misses);
}

}  // namespace qoslb::obs
