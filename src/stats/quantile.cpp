#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace qoslb {

double quantile_sorted(std::span<const double> sorted, double q) {
  QOSLB_REQUIRE(!sorted.empty(), "quantile of empty sample");
  QOSLB_REQUIRE(q >= 0.0 && q <= 1.0, "q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double iqr(std::span<const double> values) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.75) - quantile_sorted(copy, 0.25);
}

}  // namespace qoslb
