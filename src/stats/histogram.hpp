#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qoslb {

/// Fixed-width histogram over [lo, hi); out-of-range samples land in the
/// first/last bucket and are counted separately as under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Adds another histogram's samples bucket-wise. Both histograms must
  /// share [lo, hi) and the bucket count (QOSLB_REQUIRE otherwise) — used by
  /// obs::MetricsRegistry::merge to fold per-shard histograms together.
  void merge(const Histogram& other);

  /// The q-quantile (q in [0,1]) of the recorded samples, linearly
  /// interpolated within the containing bucket. Out-of-range samples clamp
  /// to the range edge they fell past (underflow reads as lo, overflow as
  /// hi), so p999 of a saturated histogram is hi, not an extrapolation.
  /// An empty histogram returns lo.
  double quantile(double q) const;

  /// Simple ASCII rendering ("[0.0,0.5)  ####### 14").
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace qoslb
