#pragma once

#include <span>

namespace qoslb {

/// Ordinary least squares fit of y = intercept + slope·x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fits y = a + b·log2(x). Used by the experiments to check O(log n)
/// convergence claims: a good fit (r² close to 1) with a stable b across
/// scales is the empirical signature of logarithmic growth.
LinearFit fit_log2(std::span<const double> x, std::span<const double> y);

/// Fits log2(y) = a + b·log2(x), i.e. a power law y ≈ 2^a · x^b.
LinearFit fit_power(std::span<const double> x, std::span<const double> y);

}  // namespace qoslb
