#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace qoslb {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  n_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sem() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

}  // namespace qoslb
