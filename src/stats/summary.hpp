#pragma once

#include <cstddef>
#include <limits>

namespace qoslb {

/// Streaming mean/variance via Welford's algorithm, plus min/max. Mergeable
/// (parallel reduction friendly: Chan et al. pairwise update).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN(); }
  double max() const { return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN(); }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace qoslb
