#include "stats/ttest.hpp"

#include <cmath>

#include "stats/summary.hpp"
#include "util/check.hpp"

namespace qoslb {
namespace {

/// Continued-fraction evaluation of the regularized incomplete beta
/// I_x(a, b) (Lentz's algorithm, as in Numerical Recipes betacf).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0))
    return front * beta_continued_fraction(a, b, x) / a;
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

}  // namespace

namespace {

/// Regularized lower incomplete gamma P(a, x): series for x < a+1,
/// continued fraction otherwise (Numerical Recipes gammp).
double regularized_gamma_p(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double ln_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 3e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - ln_gamma_a);
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 3e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - ln_gamma_a) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_upper_tail(double x, double df) {
  QOSLB_REQUIRE(df > 0.0, "degrees of freedom must be positive");
  if (x <= 0.0) return 1.0;
  return 1.0 - regularized_gamma_p(df / 2.0, x / 2.0);
}

ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected) {
  QOSLB_REQUIRE(observed.size() == expected.size() && observed.size() >= 2,
                "need matching cell vectors with at least two cells");
  ChiSquareResult result;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    QOSLB_REQUIRE(expected[i] > 0.0, "expected counts must be positive");
    const double d = observed[i] - expected[i];
    result.statistic += d * d / expected[i];
  }
  result.degrees_of_freedom = static_cast<double>(observed.size() - 1);
  result.p_value = chi_square_upper_tail(result.statistic,
                                         result.degrees_of_freedom);
  return result;
}

double student_t_cdf(double t, double df) {
  QOSLB_REQUIRE(df > 0.0, "degrees of freedom must be positive");
  const double x = df / (df + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

WelchResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  QOSLB_REQUIRE(a.size() >= 2 && b.size() >= 2,
                "both samples need at least two observations");
  RunningStat sa, sb;
  for (const double x : a) sa.add(x);
  for (const double x : b) sb.add(x);

  const double va = sa.variance() / static_cast<double>(sa.count());
  const double vb = sb.variance() / static_cast<double>(sb.count());
  WelchResult result;
  if (va + vb == 0.0) {
    // Identical constant samples: no evidence of a difference.
    result.t = sa.mean() == sb.mean() ? 0.0 : (sa.mean() > sb.mean() ? 1e308 : -1e308);
    result.degrees_of_freedom =
        static_cast<double>(sa.count() + sb.count() - 2);
    result.p_two_sided = sa.mean() == sb.mean() ? 1.0 : 0.0;
    return result;
  }
  result.t = (sa.mean() - sb.mean()) / std::sqrt(va + vb);
  const double na = static_cast<double>(sa.count());
  const double nb = static_cast<double>(sb.count());
  result.degrees_of_freedom =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  const double cdf = student_t_cdf(std::fabs(result.t), result.degrees_of_freedom);
  result.p_two_sided = 2.0 * (1.0 - cdf);
  return result;
}

}  // namespace qoslb
