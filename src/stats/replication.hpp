#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/summary.hpp"

namespace qoslb {

/// Result of running one metric across independent replications.
struct ReplicationResult {
  RunningStat stat;
  std::vector<double> samples;  // per-replication values, replication order
};

/// Runs `body(seed)` for `replications` deterministic child seeds derived from
/// `root_seed` and aggregates the returned metric. When `threads > 1` the
/// replications run on a thread pool; results are identical to the serial
/// order because each replication owns its derived seed (counter-based
/// reproducibility, per the hpc-parallel guides).
ReplicationResult replicate(std::uint64_t root_seed, std::size_t replications,
                            const std::function<double(std::uint64_t)>& body,
                            std::size_t threads = 1);

}  // namespace qoslb
