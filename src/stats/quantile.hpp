#pragma once

#include <span>
#include <vector>

namespace qoslb {

/// Exact empirical quantile with linear interpolation (type-7, the R/numpy
/// default). `q` in [0,1]. Copies the input; O(n log n) only on first use of a
/// given vector — callers with many queries should sort once and use
/// quantile_sorted.
double quantile(std::span<const double> values, double q);

/// Same, but `sorted` must already be ascending.
double quantile_sorted(std::span<const double> sorted, double q);

double median(std::span<const double> values);

/// Interquartile range (q75 − q25).
double iqr(std::span<const double> values);

}  // namespace qoslb
