#include "stats/replication.hpp"

#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace qoslb {

ReplicationResult replicate(std::uint64_t root_seed, std::size_t replications,
                            const std::function<double(std::uint64_t)>& body,
                            std::size_t threads) {
  QOSLB_REQUIRE(replications > 0, "need at least one replication");
  ReplicationResult result;
  result.samples.assign(replications, 0.0);

  if (threads <= 1) {
    for (std::size_t r = 0; r < replications; ++r)
      result.samples[r] = body(derive_seed(root_seed, r));
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(replications, [&](std::size_t r) {
      result.samples[r] = body(derive_seed(root_seed, r));
    });
  }

  for (const double x : result.samples) result.stat.add(x);
  return result;
}

}  // namespace qoslb
