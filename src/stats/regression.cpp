#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace qoslb {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  QOSLB_REQUIRE(x.size() == y.size(), "x and y must have equal length");
  QOSLB_REQUIRE(x.size() >= 2, "need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_log2(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    QOSLB_REQUIRE(x[i] > 0, "log fit requires positive x");
    lx[i] = std::log2(x[i]);
  }
  return fit_linear(lx, y);
}

LinearFit fit_power(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    QOSLB_REQUIRE(x[i] > 0 && y[i] > 0, "power fit requires positive data");
    lx[i] = std::log2(x[i]);
    ly[i] = std::log2(y[i]);
  }
  return fit_linear(lx, ly);
}

}  // namespace qoslb
