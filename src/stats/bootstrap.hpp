#pragma once

#include <cstdint>
#include <span>

namespace qoslb {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // the sample statistic itself
};

/// Percentile bootstrap CI for the sample mean: `resamples` resamples with
/// replacement, the [alpha/2, 1-alpha/2] percentiles of the resampled means.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                     double alpha = 0.05,
                                     std::size_t resamples = 1000,
                                     std::uint64_t seed = 0xB00757AAULL);

}  // namespace qoslb
