#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/quantile.hpp"
#include "util/check.hpp"

namespace qoslb {

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, double alpha,
                                     std::size_t resamples, std::uint64_t seed) {
  QOSLB_REQUIRE(!sample.empty(), "bootstrap of empty sample");
  QOSLB_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
  QOSLB_REQUIRE(resamples >= 10, "too few resamples");

  double total = 0.0;
  for (const double x : sample) total += x;
  const double point = total / static_cast<double>(sample.size());

  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i)
      sum += sample[uniform_u64_below(rng, sample.size())];
    means.push_back(sum / static_cast<double>(sample.size()));
  }
  std::sort(means.begin(), means.end());
  ConfidenceInterval ci;
  ci.point = point;
  ci.lo = quantile_sorted(means, alpha / 2.0);
  ci.hi = quantile_sorted(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace qoslb
