#pragma once

#include <span>

namespace qoslb {

/// Welch's unequal-variance t-test for two independent samples — the right
/// tool for "is protocol A really faster than protocol B" questions over
/// replication samples (E4-style tables).
struct WelchResult {
  double t = 0.0;               // test statistic (mean(a) − mean(b) direction)
  double degrees_of_freedom = 0.0;  // Welch–Satterthwaite approximation
  double p_two_sided = 1.0;     // exact Student-t tail via incomplete beta
};

/// Both samples need at least two observations.
WelchResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// CDF of Student's t distribution with `df` degrees of freedom at `t`
/// (regularized incomplete beta; exposed for tests).
double student_t_cdf(double t, double df);

/// Chi-square goodness-of-fit against expected cell counts. Returns the
/// statistic and an upper-tail p-value (via the regularized upper incomplete
/// gamma). Used by the RNG test suite to validate uniformity beyond spot
/// checks. Expected counts must be positive; sizes must match.
struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
};

ChiSquareResult chi_square_test(std::span<const double> observed,
                                std::span<const double> expected);

/// Upper-tail probability P(X ≥ x) for X ~ ChiSquare(df) (exposed for tests).
double chi_square_upper_tail(double x, double df);

}  // namespace qoslb
