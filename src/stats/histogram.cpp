#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  QOSLB_REQUIRE(hi > lo, "histogram range must be non-empty");
  QOSLB_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const auto bucket = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bucket, counts_.size() - 1)];
}

std::size_t Histogram::count(std::size_t bucket) const {
  QOSLB_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  QOSLB_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + width_;
}

void Histogram::merge(const Histogram& other) {
  QOSLB_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "Histogram::merge requires identical binning");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::quantile(double q) const {
  QOSLB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  if (total_ == 0) return lo_;
  // Sample order: the underflow mass sits exactly at lo, each bucket's
  // in-range mass spreads uniformly over [bucket_lo, bucket_hi), the
  // overflow mass sits exactly at hi. add() folds out-of-range samples into
  // the edge buckets' counts, so subtract them back out here.
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::size_t in_range = counts_[b];
    if (b == 0) in_range -= underflow_;
    if (b + 1 == counts_.size()) in_range -= overflow_;
    if (in_range == 0) continue;
    const double next = cumulative + static_cast<double>(in_range);
    if (target <= next) {
      const double fraction =
          (target - cumulative) / static_cast<double>(in_range);
      return bucket_lo(b) + fraction * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0 ? 0
                        : std::max<std::size_t>(1, counts_[b] * max_width / peak);
    os << '[' << format_double(bucket_lo(b), 3) << ',' << format_double(bucket_hi(b), 3)
       << ")\t" << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace qoslb
