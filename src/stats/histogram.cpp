#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace qoslb {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  QOSLB_REQUIRE(hi > lo, "histogram range must be non-empty");
  QOSLB_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const auto bucket = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bucket, counts_.size() - 1)];
}

std::size_t Histogram::count(std::size_t bucket) const {
  QOSLB_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  QOSLB_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + width_;
}

void Histogram::merge(const Histogram& other) {
  QOSLB_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "Histogram::merge requires identical binning");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0 ? 0
                        : std::max<std::size_t>(1, counts_[b] * max_width / peak);
    os << '[' << format_double(bucket_lo(b), 3) << ',' << format_double(bucket_hi(b), 3)
       << ")\t" << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace qoslb
