// E13 (Table 5) — Weighted users: convergence and fragmentation vs. weight
// skew.
//
// Claim validated: the protocols carry over to weighted users, but weight
// heterogeneity costs real performance — heavier maximum weights fragment
// capacity, so convergence slows and (at tight slack) a satisfied-weight gap
// opens even when the unit-weight analogue would fully satisfy. The sweep
// varies the number of power-of-two weight classes at fixed total load.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/weighted/weighted_generators.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 2048);
  const long long m = args.get_int("m", 128);
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  TablePrinter table({"protocol", "weight_classes", "max_weight", "rounds_mean",
                      "migrations_mean", "satisfied_frac",
                      "satisfied_weight_frac", "converged_frac"});
  std::cout << "E13: weighted users, skew sweep (n=" << n << ", m=" << m
            << ", slack=" << slack << ", all-on-one start, reps="
            << common.reps << ")\n";

  for (const char* kind : {"w-uniform", "w-admission"}) {
    for (const std::size_t classes : {1u, 2u, 4u, 6u}) {
      RunningStat rounds, migrations, satisfied_frac, weight_frac;
      std::size_t converged = 0;
      for (std::size_t rep = 0; rep < common.reps; ++rep) {
        Xoshiro256 rng(derive_seed(common.seed + classes, rep));
        const WeightedInstance instance = make_weighted_feasible(
            static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack,
            classes, 1.0, rng);
        WeightedState state = WeightedState::all_on(instance, 0);
        std::unique_ptr<WeightedProtocol> protocol;
        if (std::string(kind) == "w-uniform")
          protocol = std::make_unique<WeightedUniformSampling>(0.5);
        else
          protocol = std::make_unique<WeightedAdmissionControl>();
        EngineConfig config;
        config.max_rounds = 30000;
        const EngineResult result = Engine(config).run(*protocol, state, rng);
        if (result.converged) ++converged;
        rounds.add(static_cast<double>(result.rounds));
        migrations.add(static_cast<double>(result.counters.migrations));
        satisfied_frac.add(static_cast<double>(result.final_satisfied) /
                           static_cast<double>(instance.num_users()));
        weight_frac.add(static_cast<double>(result.final_satisfied_weight) /
                        static_cast<double>(instance.total_weight()));
      }
      table.cell(kind)
          .cell(static_cast<long long>(classes))
          .cell(static_cast<long long>(1u << (classes - 1)))
          .cell(rounds.mean())
          .cell(migrations.mean())
          .cell(satisfied_frac.mean())
          .cell(weight_frac.mean())
          .cell(static_cast<double>(converged) /
                static_cast<double>(common.reps))
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
