// E2 (Fig 2) — Convergence rounds vs. resource count m at fixed n.
//
// Claim validated: at a fixed population and slack, the convergence time of
// the sampling protocols is essentially flat in m (each unsatisfied user
// needs to *find* room, and the per-round success probability is governed by
// the fraction of resources with room, not their absolute number).

#include <iostream>

#include "bench_common.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 4096);
  const auto resource_counts = args.get_int_list("m", {16, 32, 64, 128, 256, 512});
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  const std::vector<std::pair<std::string, double>> protocols = {
      {"uniform", 0.5}, {"adaptive", 1.0}, {"admission", 1.0}};

  TablePrinter table({"protocol", "n", "m", "rounds_mean", "rounds_sem",
                      "messages_mean", "converged"});
  std::cout << "E2: convergence rounds vs m (n=" << n << ", slack=" << slack
            << ", reps=" << common.reps << ")\n";

  for (const auto& [kind, lambda] : protocols) {
    for (const long long m : resource_counts) {
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ static_cast<std::uint64_t>(m * 7919), common.reps,
          [&, kind = kind, lambda = lambda](std::uint64_t seed) {
            return run_uniform_feasible_once(kind, lambda,
                                             static_cast<std::size_t>(n),
                                             static_cast<std::size_t>(m), slack,
                                             1.5, seed);
          });
      table.cell(kind)
          .cell(n)
          .cell(m)
          .cell(agg.rounds.mean())
          .cell(agg.rounds.sem())
          .cell(agg.messages.mean())
          .cell(agg.converged_fraction)
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
