// E10 (Fig 7) — Simulator engine throughput.
//
// Measures the substrate itself (DESIGN.md §6): synchronous round-engine
// agent-steps per second as n scales, and discrete-event engine deliveries
// per second. This is the hpc-parallel sanity check that the framework — not
// the protocols — stays off the critical path in the larger experiments.

#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/async/async_protocols.hpp"
#include "obs/clock.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const auto sizes = args.get_int_list("sizes", {1024, 4096, 16384, 65536});
  args.finish();

  TablePrinter table({"engine", "n", "work_units", "seconds", "units_per_sec"});
  BenchJson json("e10_engine_throughput");
  std::cout << "E10: engine throughput (reps=" << common.reps
            << ", best-of runs reported)\n";

  // Synchronous round engine: drive the adaptive protocol on a slack
  // instance from the all-on-one state; one work unit = one user-round.
  for (const long long n : sizes) {
    const std::size_t m = static_cast<std::size_t>(n) / 16;
    double best_rate = 0, best_seconds = 0;
    std::uint64_t units = 0, rounds = 0;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(common.seed + rep);
      const Instance instance =
          make_uniform_feasible(static_cast<std::size_t>(n), m, 0.5, 1.0, rng);
      State state = State::all_on(instance, 0);
      ProtocolSpec spec;
      spec.kind = "adaptive";
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = 1u << 16;
      obs::Stopwatch watch;
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      const double seconds = watch.seconds();
      units = result.rounds * static_cast<std::uint64_t>(n);
      const double rate = static_cast<double>(units) / seconds;
      if (rate > best_rate) {
        best_rate = rate;
        best_seconds = seconds;
        rounds = result.rounds;
      }
    }
    table.cell("round(sync)")
        .cell(n)
        .cell(static_cast<unsigned long long>(units))
        .cell(best_seconds)
        .cell(best_rate)
        .end_row();
    json.add_row()
        .field("engine", "round(sync)")
        .field("n", static_cast<long long>(n))
        .field("threads", 1LL)
        .field("seconds", best_seconds)
        .field("users_per_sec", best_rate)
        .field("rounds_per_sec",
               best_seconds > 0 ? static_cast<double>(rounds) / best_seconds : 0.0);
  }

  // Discrete-event engine: asynchronous admission; one unit = one delivery.
  for (const long long n : sizes) {
    if (n > 16384) continue;  // DES carries per-message overhead; keep it sane
    double best_rate = 0, best_seconds = 0;
    std::uint64_t units = 0;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(common.seed + rep);
      const Instance instance = make_uniform_feasible(
          static_cast<std::size_t>(n), static_cast<std::size_t>(n) / 16, 0.5,
          1.0, rng);
      EngineConfig config;
      config.seed = common.seed + rep;
      config.random_start = false;
      obs::Stopwatch watch;
      const EngineResult result = Engine(config).run_async_admission(instance);
      const double seconds = watch.seconds();
      units = result.events;
      const double rate = static_cast<double>(units) / seconds;
      if (rate > best_rate) {
        best_rate = rate;
        best_seconds = seconds;
      }
    }
    table.cell("des(async)")
        .cell(n)
        .cell(static_cast<unsigned long long>(units))
        .cell(best_seconds)
        .cell(best_rate)
        .end_row();
    json.add_row()
        .field("engine", "des(async)")
        .field("n", static_cast<long long>(n))
        .field("threads", 1LL)
        .field("seconds", best_seconds)
        .field("events_per_sec", best_rate);
  }

  emit(table, common);
  json.write("BENCH_engine.json");
  return 0;
}
