// E23 — SoA round hot path: scan throughput, worker-pool scaling, and the
// cross-config equivalence matrix.
//
// Part 1 (workload "scan") measures the data-oriented round loop added with
// the SoA State (docs/performance.md): a steady-state instance where ~99% of
// users are satisfied (threshold 200, load ~100) and ~1% are infeasible
// (threshold 0 — they probe every round but can never emit a request), so a
// dense round is dominated by the branchless
// loads[assignment[u]] <= current_thresholds[u] scan over contiguous memory.
// The engine checks stability once before round 0, so the start must not be
// an equilibrium: one user is displaced to tilt two loads (99 / 101) and one
// threshold-100 user on the heavy resource holds a satisfying deviation it
// is overwhelmingly unlikely to sample (probability 1/m per round). With the
// periodic stability scan pushed out past the round cap, every run then
// executes exactly --rounds rounds; users_per_sec = n * rounds / seconds is
// the population scan rate. Rows cover dense and active modes for every
// requested thread count; the active rows expose per-round dispatch
// overhead directly (the active set is ~n/100).
//
// Part 2 (workload "equivalence") re-runs the uniform-sampling protocol on
// all three rate-model forms (uniform / matrix / bipartite, as in e24) at a
// fixed small scale across every thread count x engine mode and requires all
// final-assignment hashes to be bit-identical — the determinism contract of
// the per-(seed, round, user) Philox keying under the SoA layout, the
// persistent worker pool, and the prefix-sum shard commit. Any divergence
// makes the bench exit non-zero. (The pre-PR golden values themselves are
// pinned by tests/core_soa_test.cpp; here the cells are checked against each
// other so the gate also works at non-default scales.)
//
// Acceptance targets (ROADMAP): > 100M users/sec single-thread dense scan at
// n=1e6, and >= 3x at 8 threads on hardware that has them. Thresholds are
// enforced by the CI bench gate (bench/floors.json), conditioned on
// hardware_threads, not here.
//
// Knobs: --n, --m (default n/100), --rounds (round cap), --threads=1,2,4,8,
// plus the common --reps/--seed/--csv. Writes BENCH_soa.json. Timed cells
// are best-of-reps after one untimed warmup. --metrics-out=FILE attaches a
// metrics registry (with phase timing) to the Part 1 scan runs and writes
// the accumulated JSONL — the artifact the CI bench-smoke job feeds to
// qoslb-report.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

std::uint64_t fnv1a_assignment(const State& state) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (UserId u = 0; u < state.num_users(); ++u) {
    std::uint64_t value = state.resource_of(u);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const auto n = static_cast<std::size_t>(args.get_int("n", 1000000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 0));
  const auto rounds_cap =
      static_cast<std::uint64_t>(args.get_int("rounds", 20));
  const auto thread_counts = args.get_int_list("threads", {1, 2, 4, 8});
  const std::string metrics_path = args.get_string("metrics-out", "");
  args.finish();
  obs::MetricsRegistry metrics;
  obs::SteadyClock telemetry_clock;
  const std::size_t resources = m != 0 ? m : std::max<std::size_t>(1, n / 100);
  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  std::cout << "E23: SoA scan throughput + equivalence matrix (n=" << n
            << ", m=" << resources << ", rounds=" << rounds_cap
            << ", hardware threads=" << hardware_threads
            << ", reps=" << common.reps << ")\n";

  TablePrinter table({"workload", "model", "mode", "threads", "rounds",
                      "seconds_best", "users_per_sec", "speedup_vs_t1",
                      "hash", "matches_ref"});
  BenchJson json("e23_soa_scaling");

  // ---- Part 1: steady-state scan workload -------------------------------
  // Identical capacity 1.0; feasible users need q = 1/200 (threshold 200),
  // every 100th user q = 2.0 (threshold 0: permanently unsatisfied, probes
  // but never requests). A round-robin start levels loads at n/m = 100 <=
  // 200; displacing user 0 from resource 0 to resource 1 tilts them to
  // 99 / 101, and user 1 (threshold 100, sitting on the heavy resource 1)
  // is then unsatisfied *with* a satisfying deviation onto resource 0 — so
  // the engine's round-0 stability check does not shortcut the run, while
  // the odds of user 1 actually sampling resource 0 within the round cap
  // are 1/m per round (the workload stays a pure scan).
  {
    std::vector<double> requirements(n, 1.0 / 200.0);
    for (std::size_t u = 0; u < n; u += 100) requirements[u] = 2.0;
    requirements[1] = 1.0 / 100.0;
    const Instance instance =
        Instance::identical(resources, 1.0, std::move(requirements));
    std::vector<ResourceId> assignment(n);
    for (std::size_t u = 0; u < n; ++u)
      assignment[u] = static_cast<ResourceId>(u % resources);
    assignment[0] = 1;
    const State start(instance, std::move(assignment));

    const auto run_once = [&](EngineMode mode, std::size_t threads,
                              double& seconds, std::uint64_t& rounds) {
      State state = start;
      ProtocolSpec spec;
      spec.kind = "uniform";
      spec.lambda = 0.5;
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = rounds_cap;
      // The scan instance is a satisfaction equilibrium by construction
      // (the unsatisfied users are infeasible everywhere); defer the
      // stability scan past the round cap so every run times exactly
      // max_rounds rounds of pure round-loop work.
      config.stability_check_period = 1'000'000'000;
      config.threads = threads;
      config.mode = mode;
      if (!metrics_path.empty()) {  // accumulates across cells and reps
        config.telemetry.metrics = &metrics;
        config.telemetry.clock = &telemetry_clock;
      }
      Xoshiro256 rng(common.seed);
      obs::Stopwatch watch;
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      seconds = watch.seconds();
      rounds = result.rounds;
    };

    for (const std::string& mode_name :
         {std::string("dense"), std::string("active")}) {
      const EngineMode mode =
          mode_name == "dense" ? EngineMode::kDense : EngineMode::kActive;
      double t1_seconds = 0.0;
      for (const long long threads : thread_counts) {
        double best_seconds = 1e100;
        std::uint64_t rounds = 0;
        double seconds;
        run_once(mode, static_cast<std::size_t>(threads), seconds, rounds);
        for (std::size_t rep = 0; rep < common.reps; ++rep) {
          run_once(mode, static_cast<std::size_t>(threads), seconds, rounds);
          best_seconds = std::min(best_seconds, seconds);
        }
        if (threads == thread_counts.front()) t1_seconds = best_seconds;
        const double users_per_sec = static_cast<double>(rounds) *
                                     static_cast<double>(n) / best_seconds;
        const double speedup = t1_seconds / best_seconds;
        table.cell("scan")
            .cell("steady")
            .cell(mode_name)
            .cell(threads)
            .cell(static_cast<unsigned long long>(rounds))
            .cell(best_seconds, 5)
            .cell(users_per_sec)
            .cell(speedup)
            .cell("-")
            .cell("-")
            .end_row();
        json.add_row()
            .field("workload", "scan")
            .field("mode", mode_name)
            .field("threads", threads)
            .field("hardware_threads", static_cast<long long>(hardware_threads))
            .field("rounds", static_cast<unsigned long long>(rounds))
            .field("seconds", best_seconds)
            .field("users_per_sec", users_per_sec)
            .field("speedup_vs_t1", speedup);
      }
    }
  }

  // ---- Part 2: equivalence matrix ---------------------------------------
  // Fixed small scale (independent of --n: the matrix model is dense in
  // n x m) so the full model x mode x threads product stays cheap.
  bool deterministic = true;
  {
    const std::size_t n_eq = 20000;
    const std::size_t m_eq = 200;
    struct Model {
      std::string name;
      Instance instance;
    };
    Xoshiro256 gen_rng(common.seed);
    std::vector<Model> models;
    models.push_back(
        {"uniform", make_uniform_feasible(n_eq, m_eq, 0.5, 1.5, gen_rng)});
    models.push_back(
        {"matrix", make_zipf_rates(n_eq, m_eq, 0.2, 1.1, gen_rng)});
    models.push_back(
        {"bipartite", make_clustered_bipartite(n_eq, m_eq, 8, 2, 0.2, gen_rng)});

    for (const Model& model : models) {
      std::vector<ResourceId> worst(model.instance.num_users(), 0);
      if (model.instance.restricted())
        for (UserId u = 0; u < worst.size(); ++u)
          worst[u] = model.instance.reachable(u).front();
      const State start(model.instance, std::move(worst));

      std::uint64_t reference_hash = 0;
      bool have_reference = false;
      for (const std::string& mode_name :
           {std::string("dense"), std::string("active")}) {
        const EngineMode mode =
            mode_name == "dense" ? EngineMode::kDense : EngineMode::kActive;
        for (const long long threads : thread_counts) {
          State state = start;
          ProtocolSpec spec;
          spec.kind = "uniform";
          spec.lambda = 0.5;
          const auto protocol = make_protocol(spec);
          EngineConfig config;
          config.max_rounds = 24;
          config.threads = static_cast<std::size_t>(threads);
          config.mode = mode;
          Xoshiro256 rng(common.seed);
          Engine(config).run(*protocol, state, rng);
          const std::uint64_t hash = fnv1a_assignment(state);
          if (!have_reference) {
            reference_hash = hash;
            have_reference = true;
          }
          const bool matches = hash == reference_hash;
          deterministic = deterministic && matches;
          table.cell("equivalence")
              .cell(model.name)
              .cell(mode_name)
              .cell(threads)
              .cell("-")
              .cell("-")
              .cell("-")
              .cell("-")
              .cell(static_cast<unsigned long long>(hash))
              .cell(matches ? "yes" : "NO")
              .end_row();
          json.add_row()
              .field("workload", "equivalence")
              .field("model", model.name)
              .field("mode", mode_name)
              .field("threads", threads)
              .field("hardware_threads",
                     static_cast<long long>(hardware_threads))
              .field("assignment_hash", static_cast<unsigned long long>(hash))
              .field("matches_reference", matches ? 1LL : 0LL);
        }
      }
    }
  }

  emit(table, common);
  std::cout << (deterministic
                    ? "\ndeterminism: every model produced one final "
                      "assignment across all modes and thread counts\n"
                    : "\ndeterminism: FAILED — assignment hash diverged "
                      "across the equivalence matrix\n");
  json.write("BENCH_soa.json");
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    if (!metrics_out) {
      std::cerr << "warning: cannot write " << metrics_path << '\n';
    } else {
      metrics.write_jsonl(metrics_out);
    }
  }
  return deterministic ? 0 : 1;
}
