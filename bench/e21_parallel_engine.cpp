// E21 — Sharded parallel round engine: throughput, speedup, determinism.
//
// Drives the *engine-level* parallelism added with qoslb::Engine (PR 2): the
// round's decide phase fans user shards out over a thread pool, each user
// drawing from a Philox substream keyed by (master seed, round, user), and
// the commit merges shard buffers in shard order. Results are therefore a
// pure function of the config — bit-identical for every thread count AND
// execution policy, including the forced-single-worker kSequential row —
// which this bench verifies via an FNV-1a hash of the final assignment while
// timing users/sec per thread count.
//
// Acceptance target on a multi-core host: >= 2x users/sec at 4+ threads vs
// the sharded 1-thread run at n=1e6, m=1e4. On a single-core host the table
// quantifies pure threading overhead instead of speedup (cf. e16); the
// determinism check is equally meaningful there.
//
// Knobs: --n, --m (default n/100), --rounds (round cap), --threads=1,2,4,8,
// plus the common --reps/--seed/--csv. Writes BENCH_parallel.json. Each
// timed cell is best-of-reps after one untimed warmup (page-faults the
// instance and spawns the worker pool once). Exit status is non-zero when
// determinism fails, or when a sharded t>1 run that the host can actually
// parallelize (threads <= hardware_concurrency) is slower than the sharded
// t=1 run — the regression this bench exists to catch.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/clock.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

std::uint64_t fnv1a_assignment(const State& state) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (UserId u = 0; u < state.num_users(); ++u) {
    std::uint64_t value = state.resource_of(u);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const auto n = static_cast<std::size_t>(args.get_int("n", 1000000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 0));
  const auto rounds_cap =
      static_cast<std::uint64_t>(args.get_int("rounds", 40));
  const auto thread_counts = args.get_int_list("threads", {1, 2, 4, 8});
  args.finish();
  const std::size_t resources = m != 0 ? m : std::max<std::size_t>(1, n / 100);

  Xoshiro256 gen_rng(common.seed);
  const Instance instance =
      make_uniform_feasible(n, resources, 0.5, 1.0, gen_rng);
  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  std::cout << "E21: sharded parallel round engine (n=" << n
            << ", m=" << resources << ", round cap=" << rounds_cap
            << ", hardware threads=" << hardware_threads
            << ", reps=" << common.reps << ")\n";

  TablePrinter table({"mode", "threads", "rounds", "seconds_best",
                      "users_per_sec", "speedup_vs_t1", "hash"});
  BenchJson json("e21_parallel_engine");

  // Every run gets the same uniform-sampling workload from the same
  // adversarial start; a fresh Xoshiro per run pins the sharded master seed,
  // so the final assignment must hash identically for every thread count.
  const auto run_once = [&](RoundExecution execution, std::size_t threads,
                            double& seconds, std::uint64_t& rounds,
                            std::uint64_t& hash) {
    State state = State::all_on(instance, 0);
    ProtocolSpec spec;
    spec.kind = "uniform";
    spec.lambda = 0.5;
    const auto protocol = make_protocol(spec);
    EngineConfig config;
    config.max_rounds = rounds_cap;
    config.execution = execution;
    config.threads = threads;
    Xoshiro256 rng(common.seed);
    obs::Stopwatch watch;
    const EngineResult result = Engine(config).run(*protocol, state, rng);
    seconds = watch.seconds();
    rounds = result.rounds;
    hash = fnv1a_assignment(state);
  };

  const auto emit_row = [&](const std::string& mode, std::size_t threads,
                            std::uint64_t rounds, double seconds,
                            double speedup, std::uint64_t hash) {
    const double users_per_sec =
        static_cast<double>(rounds) * static_cast<double>(n) / seconds;
    table.cell(mode)
        .cell(static_cast<long long>(threads))
        .cell(static_cast<unsigned long long>(rounds))
        .cell(seconds, 5)
        .cell(users_per_sec)
        .cell(speedup)
        .cell(static_cast<unsigned long long>(hash))
        .end_row();
    json.add_row()
        .field("mode", mode)
        .field("threads", static_cast<long long>(threads))
        .field("hardware_threads", static_cast<long long>(hardware_threads))
        .field("rounds", static_cast<unsigned long long>(rounds))
        .field("seconds", seconds)
        .field("users_per_sec", users_per_sec)
        .field("rounds_per_sec",
               seconds > 0 ? static_cast<double>(rounds) / seconds : 0.0)
        .field("speedup_vs_t1", speedup)
        .field("assignment_hash", static_cast<unsigned long long>(hash));
  };

  // Sequential reference: the same step_users round path forced onto a
  // single inline worker. Since the per-(seed, round, user) re-keying this
  // is the *same realization* as every sharded run, so its hash joins the
  // determinism check below.
  double t1_seconds = 0.0;
  std::uint64_t reference_hash = 0;
  bool deterministic = true;
  bool scaling_ok = true;
  const auto best_of_reps = [&](RoundExecution execution, std::size_t threads,
                                std::uint64_t& rounds, std::uint64_t& hash) {
    double best_seconds = 1e100;
    // One untimed warmup: touches every instance/state page and, for the
    // sharded path, pays the one-off worker spawn outside the timed reps.
    double seconds;
    run_once(execution, threads, seconds, rounds, hash);
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      run_once(execution, threads, seconds, rounds, hash);
      best_seconds = std::min(best_seconds, seconds);
    }
    return best_seconds;
  };
  {
    std::uint64_t rounds = 0, hash = 0;
    const double best_seconds =
        best_of_reps(RoundExecution::kSequential, 1, rounds, hash);
    reference_hash = hash;
    emit_row("sequential", 1, rounds, best_seconds, 1.0, hash);
  }
  for (const long long threads : thread_counts) {
    std::uint64_t rounds = 0, hash = 0;
    const double best_seconds = best_of_reps(
        RoundExecution::kSharded, static_cast<std::size_t>(threads), rounds,
        hash);
    if (threads == thread_counts.front()) t1_seconds = best_seconds;
    deterministic = deterministic && hash == reference_hash;
    // Scaling gate: a t>1 run the host can genuinely parallelize must beat
    // the sharded t=1 run. Oversubscribed rows (threads > hardware) are
    // reported but not gated — a 1-core CI box can't demonstrate speedup.
    if (threads > thread_counts.front() &&
        static_cast<unsigned>(threads) <= hardware_threads &&
        best_seconds >= t1_seconds)
      scaling_ok = false;
    emit_row("sharded", static_cast<std::size_t>(threads), rounds,
             best_seconds, t1_seconds / best_seconds, hash);
  }

  emit(table, common);
  std::cout << (deterministic
                    ? "\ndeterminism: sequential and all sharded thread counts "
                      "produced the same final assignment\n"
                    : "\ndeterminism: FAILED — assignment hash differs across "
                      "execution policies or thread counts\n");
  if (!scaling_ok)
    std::cout << "scaling: FAILED — a sharded t>1 run within hardware "
                 "concurrency was no faster than sharded t=1\n";
  json.write("BENCH_parallel.json");
  return deterministic && scaling_ok ? 0 : 1;
}
