// E3 (Fig 3) — Per-round decay of the unsatisfied population.
//
// Claim validated: under the damped/gated protocols the number of
// unsatisfied users decays geometrically (each trajectory row reports the
// per-round ratio u_{t}/u_{t-1}; a roughly constant ratio < 1 over the bulk
// of the run is the geometric-decay signature the convergence proofs give).

#include <iostream>

#include "bench_common.hpp"
#include "obs/trace_sink.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/1);
  const long long n = args.get_int("n", 4096);
  const long long m = args.get_int("m", 256);
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  const std::vector<std::pair<std::string, double>> protocols = {
      {"uniform", 0.5}, {"adaptive", 1.0}, {"admission", 1.0}};

  TablePrinter table(
      {"protocol", "round", "unsatisfied", "decay_ratio", "migrations"});
  std::cout << "E3: unsatisfied-count trajectory (n=" << n << ", m=" << m
            << ", slack=" << slack << ", all-on-one start)\n";

  for (const auto& [kind, lambda] : protocols) {
    Xoshiro256 rng(common.seed);
    const Instance instance = make_uniform_feasible(
        static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack, 1.5, rng);
    State state = State::all_on(instance, 0);
    ProtocolSpec spec;
    spec.kind = kind;
    spec.lambda = lambda;
    const auto protocol = make_protocol(spec);
    // Per-round rows come from the engine's trace sink; period 1 keeps the
    // legacy check-every-round semantics.
    obs::MemoryTraceSink sink;
    EngineConfig config;
    config.max_rounds = 10000;
    config.stability_check_period = 1;
    config.telemetry.sink = &sink;
    Engine(config).run(*protocol, state, rng);
    const auto& records = sink.rows();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const double ratio =
          i == 0 || records[i - 1].unsatisfied == 0
              ? 1.0
              : static_cast<double>(records[i].unsatisfied) /
                    static_cast<double>(records[i - 1].unsatisfied);
      table.cell(protocol->name())
          .cell(static_cast<long long>(records[i].round))
          .cell(static_cast<long long>(records[i].unsatisfied))
          .cell(ratio)
          .cell(static_cast<long long>(records[i].migrations))
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
