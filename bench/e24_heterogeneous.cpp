// E24 — Heterogeneous rate models: throughput and cross-config equivalence.
//
// Drives the RateModel generalization (docs/heterogeneity.md) through the
// sharded engine on all three rate-model forms:
//
//   uniform    make_uniform_feasible — the rate(u,r)==1 fast path
//   matrix     make_zipf_rates — dense per-(user, resource) rates, unrestricted
//   bipartite  make_clustered_bipartite — restricted assignment, reachable-set
//              keyed sampling
//
// For each form the bench runs the uniform-sampling protocol from the same
// adversarial start across every thread count × engine mode (dense and active)
// and verifies the final-assignment hash is bit-identical to the 1-thread
// dense reference — the determinism contract for heterogeneous instances.
// Any divergence makes the bench exit non-zero, so the CI bench-smoke job
// doubles as an equivalence gate. The per-model users/sec columns quantify
// the cost of rate lookups relative to the uniform fast path.
//
// Knobs: --n, --m (default n/100), --rounds (round cap), --threads=1,2,4,8,
// plus the common --reps/--seed/--csv. Writes BENCH_hetero.json.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "obs/clock.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

std::uint64_t fnv1a_assignment(const State& state) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (UserId u = 0; u < state.num_users(); ++u) {
    std::uint64_t value = state.resource_of(u);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const auto n = static_cast<std::size_t>(args.get_int("n", 200000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 0));
  const auto rounds_cap =
      static_cast<std::uint64_t>(args.get_int("rounds", 40));
  const auto thread_counts = args.get_int_list("threads", {1, 2, 4, 8});
  args.finish();
  const std::size_t resources = m != 0 ? m : std::max<std::size_t>(8, n / 100);

  std::cout << "E24: heterogeneous rate models (n=" << n << ", m=" << resources
            << ", round cap=" << rounds_cap << ", reps=" << common.reps
            << ")\n";

  TablePrinter table({"model", "mode", "threads", "rounds", "seconds_best",
                      "users_per_sec", "hash", "matches_ref"});
  BenchJson json("e24_heterogeneous");

  struct Model {
    std::string name;
    Instance instance;
  };
  Xoshiro256 gen_rng(common.seed);
  std::vector<Model> models;
  models.push_back({"uniform",
                    make_uniform_feasible(n, resources, 0.5, 1.5, gen_rng)});
  models.push_back({"matrix", make_zipf_rates(n, resources, 0.2, 1.1, gen_rng)});
  models.push_back(
      {"bipartite",
       make_clustered_bipartite(n, resources, 8, 2, 0.2, gen_rng)});

  bool deterministic = true;
  for (const Model& model : models) {
    // Adversarial restricted-safe start: every user on its first reachable
    // resource (all-on-0 for unrestricted models), so runs measure recovery
    // work instead of starting satisfied. Every run copies this state, so
    // each (mode, threads) cell replays the exact same world.
    std::vector<ResourceId> worst(model.instance.num_users(), 0);
    if (model.instance.restricted())
      for (UserId u = 0; u < worst.size(); ++u)
        worst[u] = model.instance.reachable(u).front();
    const State start(model.instance, std::move(worst));

    const auto run_once = [&](EngineMode mode, std::size_t threads,
                              double& seconds, std::uint64_t& rounds,
                              std::uint64_t& hash) {
      State state = start;
      ProtocolSpec spec;
      spec.kind = "uniform";
      spec.lambda = 0.5;
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = rounds_cap;
      config.threads = threads;
      config.mode = mode;
      Xoshiro256 rng(common.seed);
      obs::Stopwatch watch;
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      seconds = watch.seconds();
      rounds = result.rounds;
      hash = fnv1a_assignment(state);
    };

    std::uint64_t reference_hash = 0;
    bool have_reference = false;
    for (const std::string& mode_name : {std::string("dense"),
                                         std::string("active")}) {
      const EngineMode mode =
          mode_name == "dense" ? EngineMode::kDense : EngineMode::kActive;
      for (const long long threads : thread_counts) {
        double best_seconds = 1e100;
        std::uint64_t rounds = 0, hash = 0;
        for (std::size_t rep = 0; rep < common.reps; ++rep) {
          double seconds;
          run_once(mode, static_cast<std::size_t>(threads), seconds, rounds,
                   hash);
          best_seconds = std::min(best_seconds, seconds);
        }
        if (!have_reference) {
          reference_hash = hash;
          have_reference = true;
        }
        const bool matches = hash == reference_hash;
        deterministic = deterministic && matches;
        const double users_per_sec = static_cast<double>(rounds) *
                                     static_cast<double>(n) / best_seconds;
        table.cell(model.name)
            .cell(mode_name)
            .cell(threads)
            .cell(static_cast<unsigned long long>(rounds))
            .cell(best_seconds, 5)
            .cell(users_per_sec)
            .cell(static_cast<unsigned long long>(hash))
            .cell(matches ? "yes" : "NO")
            .end_row();
        json.add_row()
            .field("model", model.name)
            .field("mode", mode_name)
            .field("threads", threads)
            .field("rounds", static_cast<unsigned long long>(rounds))
            .field("seconds", best_seconds)
            .field("users_per_sec", users_per_sec)
            .field("assignment_hash", static_cast<unsigned long long>(hash))
            .field("matches_reference", matches ? 1LL : 0LL);
      }
    }
  }

  emit(table, common);
  std::cout << (deterministic
                    ? "\ndeterminism: every rate model produced the same final "
                      "assignment across all modes and thread counts\n"
                    : "\ndeterminism: FAILED — assignment hash diverged from "
                      "the 1-thread dense reference\n");
  json.write("BENCH_hetero.json");
  return deterministic ? 0 : 1;
}
