// E8 (Fig 6) — Network-restricted sampling across topologies.
//
// Two regimes, both reported per topology:
//
//  start=random, slack 0.15: users are scattered and must fix local
//  overloads. Rounds to convergence grow mildly as the topology gets worse
//  (complete fastest; ring slowest) — restricted visibility lengthens the
//  search for free slots.
//
//  start=all-on-one, slack 0.5: the adversarial concentrated start. Because
//  satisfied users never move, a filled neighbor becomes a *barrier*: under
//  poor expansion most of the blob is trapped in a neighborhood-local
//  equilibrium and the satisfied fraction collapses with the topology's
//  expansion (complete ≈ 1, ring ≈ degree·T/n). This locality trap is the
//  qualitative price of restricting the probe set.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "net/generators.hpp"
#include "net/properties.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 1024);
  args.finish();

  constexpr Vertex kResources = 64;
  Xoshiro256 topo_rng(13);
  struct Topology {
    std::string name;
    Graph graph;
  };
  const std::vector<Topology> topologies = {
      {"complete", make_complete(kResources)},
      {"hypercube-6", make_hypercube(6)},
      {"torus-8x8", make_torus(8, 8)},
      {"random-4-regular", make_random_regular(kResources, 4, topo_rng)},
      {"small-world(k=2,b=.2)", make_small_world(kResources, 2, 0.2, topo_rng)},
      {"ring", make_ring(kResources)},
      {"barbell-30-4", make_barbell(30, 4)},
  };

  struct Regime {
    std::string name;
    double slack;
    bool concentrated;
  };
  const std::vector<Regime> regimes = {
      {"random-start", 0.15, false},
      {"concentrated", 0.5, true},
  };

  TablePrinter table({"regime", "topology", "diameter", "degree", "rounds_mean",
                      "rounds_p95", "satisfied_frac", "converged"});
  std::cout << "E8: neighborhood-restricted admission on m=64 topologies (n="
            << n << ", reps=" << common.reps << ")\n";

  for (const Regime& regime : regimes) {
    for (const Topology& topology : topologies) {
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ std::hash<std::string>{}(regime.name + topology.name),
          common.reps, [&](std::uint64_t seed) {
            Xoshiro256 rng(seed);
            const Instance instance = make_uniform_feasible(
                static_cast<std::size_t>(n), kResources, regime.slack, 1.0, rng);
            State state = regime.concentrated ? State::all_on(instance, 0)
                                              : State::random(instance, rng);
            ProtocolSpec spec;
            spec.kind = "nbr-admission";
            spec.graph = &topology.graph;
            const auto protocol = make_protocol(spec);
            EngineConfig config;
            config.max_rounds = 100000;
            ReplicatedRun run;
            run.result = Engine(config).run(*protocol, state, rng);
            run.num_users = instance.num_users();
            return run;
          });
      table.cell(regime.name)
          .cell(topology.name)
          .cell(static_cast<long long>(diameter(topology.graph)))
          .cell(static_cast<long long>(topology.graph.degree(0)))
          .cell(agg.rounds.mean())
          .cell(agg.rounds_p95)
          .cell(agg.satisfied_fraction.mean())
          .cell(agg.converged_fraction)
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
