// E18 (Table 9) — Initial-placement ablation.
//
// How much work the protocol has to do depends on where users start. The
// table compares four placements at tight slack: all-on-one (adversarial),
// uniform random, power-of-two-choices (balanced-by-construction), and
// round-robin (perfect). Reported: initially satisfied fraction, then rounds
// and migrations the admission protocol needs from there. Two-choices nearly
// eliminates the distributed balancing work — the classic balls-into-bins
// result carried into the QoS setting.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 4096);
  const long long m = args.get_int("m", 256);
  const double slack = args.get_double("slack", 0.1);
  args.finish();

  struct Placement {
    std::string label;
    std::function<State(const Instance&, Xoshiro256&)> build;
  };
  const std::vector<Placement> placements = {
      {"all-on-one",
       [](const Instance& i, Xoshiro256&) { return State::all_on(i, 0); }},
      {"uniform-random",
       [](const Instance& i, Xoshiro256& rng) { return State::random(i, rng); }},
      {"two-choices",
       [](const Instance& i, Xoshiro256& rng) { return State::two_choices(i, rng); }},
      {"round-robin",
       [](const Instance& i, Xoshiro256&) { return State::round_robin(i); }},
  };

  TablePrinter table({"placement", "initial_satisfied_frac", "initial_max_load",
                      "rounds_mean", "migrations_mean", "converged"});
  std::cout << "E18: initial placement ablation (n=" << n << ", m=" << m
            << ", slack=" << slack << ", admission protocol, reps="
            << common.reps << ")\n";

  for (const Placement& placement : placements) {
    RunningStat initial_satisfied, initial_max, rounds, migrations;
    std::size_t converged = 0;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(derive_seed(common.seed, rep));
      const Instance instance = make_uniform_feasible(
          static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack, 1.0,
          rng);
      State state = placement.build(instance, rng);
      initial_satisfied.add(static_cast<double>(state.count_satisfied()) /
                            static_cast<double>(instance.num_users()));
      initial_max.add(static_cast<double>(state.max_load()));

      ProtocolSpec spec;
      spec.kind = "admission";
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = 50000;
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      if (result.converged) ++converged;
      rounds.add(static_cast<double>(result.rounds));
      migrations.add(static_cast<double>(result.counters.migrations));
    }
    table.cell(placement.label)
        .cell(initial_satisfied.mean())
        .cell(initial_max.mean())
        .cell(rounds.mean())
        .cell(migrations.mean())
        .cell(static_cast<double>(converged) / static_cast<double>(common.reps))
        .end_row();
  }

  emit(table, common);
  return 0;
}
