// E22 — Active-set round engine: round cost O(unsatisfied), not O(n).
//
// The PR 3 tentpole claim: once most users are satisfied, a dense round still
// scans all n users while an active round touches only the unsatisfied set,
// so the convergence *tail* — where |active| << n — speeds up by orders of
// magnitude. This bench measures exactly that tail:
//
//   1. A probe run records the unsatisfied trajectory and locates the round
//      where the active set first drops below --tail-frac of n (default
//      0.5%).
//   2. Per engine mode (dense, active), a fresh realization runs the head
//      (up to that round, untimed for the comparison) and then the timed
//      tail continuation to convergence. Both modes consume the caller RNG
//      identically, so they execute the same realization; the final
//      assignments are hash-compared and the bench fails on mismatch.
//
// Acceptance target (ISSUE 3): >= 10x lower tail wall time for the active
// mode at n=1e6, m=1e3. Results go to BENCH_active.json.
//
// Knobs: --n, --m, --protocol (an [active-set] kind), --lambda, --threads,
// --rounds (safety cap), --tail-frac, --slack, --het (threshold spread),
// --graph (nbr-* kinds), plus the common --reps/--seed/--csv. Telemetry:
// --trace-out=FILE attaches a JSONL trace sink, --metrics-out=FILE a
// metrics registry, and --decisions-out=FILE a sampled decision sink
// (--trace-sample=K, default 1024) to the timed runs; sink time is measured
// separately and subtracted, so the reported sim seconds stay comparable
// either way.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "net/generators.hpp"
#include "obs/clock.hpp"
#include "obs/decision_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

std::uint64_t fnv1a_assignment(const State& state) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (UserId u = 0; u < state.num_users(); ++u) {
    std::uint64_t value = state.resource_of(u);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

struct ModeResult {
  double head_seconds = 0.0;
  double tail_wall_seconds = 0.0;
  double tail_sink_seconds = 0.0;
  double tail_sim_seconds = 1e100;  // best over reps (wall minus sink time)
  std::uint64_t tail_rounds = 0;
  std::uint64_t total_rounds = 0;
  bool converged = false;
  std::uint64_t hash = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const auto n = static_cast<std::size_t>(args.get_int("n", 1000000));
  const auto m = static_cast<std::size_t>(args.get_int("m", 1000));
  const std::string kind = args.get_string("protocol", "uniform");
  const double lambda = args.get_double("lambda", 0.05);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const auto rounds_cap =
      static_cast<std::uint64_t>(args.get_int("rounds", 4096));
  const double tail_frac = args.get_double("tail-frac", 0.005);
  // The defaults pin the regime the tentpole is about: light damping and a
  // small slack give a long straggler phase whose active set is far below
  // the tail cut, so dense rounds are almost pure wasted scan there.
  const double slack = args.get_double("slack", 0.05);
  const double het = args.get_double("het", 1.0);
  const std::string graph_kind = args.get_string("graph", "torus");
  const std::string trace_path = args.get_string("trace-out", "");
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::string decisions_path = args.get_string("decisions-out", "");
  const auto trace_sample =
      static_cast<std::uint64_t>(args.get_int("trace-sample", 1024));
  args.finish();

  // Optional telemetry on the timed tail runs. Sinks are shared across reps
  // and modes (one JSONL stream with a begin/end block per run, one metrics
  // registry accumulating over all runs); the determinism contract keeps the
  // realizations bit-identical with or without them.
  obs::MetricsRegistry metrics;
  obs::SteadyClock telemetry_clock;
  std::ofstream trace_file;
  std::optional<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) throw std::runtime_error("cannot write " + trace_path);
    trace_sink.emplace(trace_file);
  }
  std::ofstream decisions_file;
  std::optional<obs::JsonlDecisionSink> decisions_sink;
  if (!decisions_path.empty()) {
    decisions_file.open(decisions_path);
    if (!decisions_file)
      throw std::runtime_error("cannot write " + decisions_path);
    decisions_sink.emplace(decisions_file);
  }
  const bool telemetry_on = !trace_path.empty() || !metrics_path.empty() ||
                            !decisions_path.empty();

  Xoshiro256 gen_rng(common.seed);
  const Instance instance = make_uniform_feasible(n, m, slack, het, gen_rng);

  // Resource graph for the nbr-* kinds (ignored by the global-sampling
  // protocols). The sparse default matters: on a sparse topology the last
  // overload pockets drain by *local* diffusion, which is precisely the
  // long, small-active-set tail this bench is about — global sampling
  // instead ends in a satisfaction equilibrium within a few rounds of the
  // tail cut.
  Graph graph;
  if (graph_kind == "complete") {
    graph = make_complete(static_cast<Vertex>(m));
  } else if (graph_kind == "torus") {
    std::size_t rows = 1;
    for (std::size_t d = 1; d * d <= m; ++d)
      if (m % d == 0) rows = d;
    graph = make_torus(static_cast<Vertex>(rows),
                       static_cast<Vertex>(m / rows));
  } else if (graph_kind == "ring") {
    graph = make_ring(static_cast<Vertex>(m));
  } else {
    throw std::invalid_argument("unknown --graph '" + graph_kind +
                                "' (complete|torus|ring)");
  }

  const auto make = [&] {
    ProtocolSpec spec;
    spec.kind = kind;
    spec.lambda = lambda;
    spec.graph = &graph;
    return make_protocol(spec);
  };

  // Probe: find where the tail starts. record_trajectory gives the
  // unsatisfied count after every round; the tail is everything from the
  // first round with <= tail_frac * n unsatisfied users.
  std::uint64_t tail_start = 0;
  std::uint64_t probe_rounds = 0;
  {
    State state = State::all_on(instance, 0);
    const auto protocol = make();
    EngineConfig config;
    config.max_rounds = rounds_cap;
    config.threads = threads;
    config.record_trajectory = true;
    Xoshiro256 rng(common.seed);
    const EngineResult result = Engine(config).run(*protocol, state, rng);
    probe_rounds = result.rounds;
    const auto cut = static_cast<std::uint32_t>(tail_frac * static_cast<double>(n));
    tail_start = result.rounds;  // degenerate: never reaches the tail regime
    for (std::size_t r = 0; r < result.unsatisfied_trajectory.size(); ++r) {
      if (result.unsatisfied_trajectory[r] <= cut) {
        tail_start = r + 1;  // trajectory[r] is the state *after* round r
        break;
      }
    }
  }

  std::cout << "E22: active-set convergence tail (n=" << n << ", m=" << m
            << ", protocol=" << kind << ", threads=" << threads
            << ", reps=" << common.reps << ")\n"
            << "probe: converged in " << probe_rounds << " rounds, tail (<= "
            << tail_frac * 100 << "% unsatisfied) starts after round "
            << tail_start << "\n";

  // One realization = head run (round cap tail_start) + tail continuation on
  // the same state. Each Engine::run draws the caller RNG exactly once, so
  // the (head, tail) seed pair — and hence the whole realization — is the
  // same for both modes; only the round iteration strategy differs.
  const auto run_mode = [&](EngineMode mode) {
    ModeResult out;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      State state = State::all_on(instance, 0);
      const auto protocol = make();
      Xoshiro256 rng(common.seed);
      EngineConfig config;
      config.threads = threads;
      config.mode = mode;
      config.max_rounds = tail_start;
      obs::Stopwatch head_watch;
      const EngineResult head = Engine(config).run(*protocol, state, rng);
      const double head_seconds = head_watch.seconds();
      config.max_rounds = rounds_cap;
      if (telemetry_on) {  // telemetry on the timed tail only
        config.telemetry.metrics = metrics_path.empty() ? nullptr : &metrics;
        config.telemetry.sink = trace_sink ? &*trace_sink : nullptr;
        config.telemetry.decisions =
            decisions_sink ? &*decisions_sink : nullptr;
        config.telemetry.decision_sample = trace_sample;
        config.telemetry.clock = &telemetry_clock;
      }
      obs::Stopwatch tail_watch;
      const EngineResult tail = Engine(config).run(*protocol, state, rng);
      const double tail_wall = tail_watch.seconds();
      const double tail_sink = tail.telemetry.sink_seconds();
      if (tail_wall - tail_sink < out.tail_sim_seconds) {
        out.head_seconds = head_seconds;
        out.tail_wall_seconds = tail_wall;
        out.tail_sink_seconds = tail_sink;
        out.tail_sim_seconds = tail_wall - tail_sink;
      }
      out.tail_rounds = tail.rounds;
      out.total_rounds = head.rounds + tail.rounds;
      out.converged = tail.converged;
      out.hash = fnv1a_assignment(state);
    }
    return out;
  };

  const ModeResult dense = run_mode(EngineMode::kDense);
  const ModeResult active = run_mode(EngineMode::kActive);
  const bool identical = dense.hash == active.hash;
  // Speedup compares simulation cost alone — with a sink attached, the wall
  // ratio would be dominated by sink I/O, not by the round-cost claim.
  const double tail_speedup = dense.tail_sim_seconds / active.tail_sim_seconds;

  TablePrinter table({"mode", "threads", "rounds", "tail_rounds",
                      "head_seconds", "tail_sim_s", "tail_sink_s",
                      "tail_speedup", "converged", "hash"});
  BenchJson json("e22_active_set");
  const auto emit_row = [&](const std::string& mode, const ModeResult& r,
                            double speedup) {
    table.cell(mode)
        .cell(static_cast<long long>(threads))
        .cell(static_cast<unsigned long long>(r.total_rounds))
        .cell(static_cast<unsigned long long>(r.tail_rounds))
        .cell(r.head_seconds, 5)
        .cell(r.tail_sim_seconds, 5)
        .cell(r.tail_sink_seconds, 5)
        .cell(speedup)
        .cell(r.converged ? "yes" : "no")
        .cell(static_cast<unsigned long long>(r.hash))
        .end_row();
    JsonRow& row = json.add_row();
    row.field("mode", mode)
        .field("n", static_cast<unsigned long long>(n))
        .field("m", static_cast<unsigned long long>(m))
        .field("protocol", kind)
        .field("threads", static_cast<long long>(threads))
        .field("rounds", static_cast<unsigned long long>(r.total_rounds))
        .field("tail_start", static_cast<unsigned long long>(tail_start))
        .field("tail_rounds", static_cast<unsigned long long>(r.tail_rounds));
    timing_fields(row, "head_", r.head_seconds, 0.0);  // head is never traced
    timing_fields(row, "tail_", r.tail_wall_seconds, r.tail_sink_seconds);
    row.field("tail_speedup_vs_dense", speedup)
        .field("converged", r.converged)
        .field("assignment_hash", static_cast<unsigned long long>(r.hash));
  };
  emit_row("dense", dense, 1.0);
  emit_row("active", active, tail_speedup);
  emit(table, common);

  std::cout << "\ntail speedup (dense/active): " << tail_speedup << "x\n"
            << (identical ? "equivalence: dense and active produced the same "
                            "final assignment\n"
                          : "equivalence: FAILED — dense and active final "
                            "assignments differ\n");
  json.write("BENCH_active.json");
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    if (!metrics_out) {
      std::cerr << "warning: cannot write " << metrics_path << '\n';
    } else {
      metrics.write_jsonl(metrics_out);
    }
  }
  return identical ? 0 : 1;
}
