// E4 (Table 1) — Head-to-head protocol comparison across instance families.
//
// For four workload families (uniform-feasible, geometric QoS classes,
// Zipf-skewed demands, related/heterogeneous capacities) and every protocol
// in the registry, reports rounds, migrations, messages, and the final
// satisfied fraction. The expected shape: admission/adaptive converge in few
// rounds with modest message cost; undamped uniform needs luck; the
// QoS-oblivious Berenbrink baseline balances loads but leaves demanding
// users unsatisfied on skewed families; sequential best response needs ~n
// steps (its "rounds" are single moves).

#include <functional>
#include <iostream>

#include "bench_common.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

struct Family {
  std::string name;
  std::function<Instance(Xoshiro256&)> build;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/5);
  const long long n = args.get_int("n", 2048);
  const long long m = args.get_int("m", 128);
  args.finish();

  const auto sn = static_cast<std::size_t>(n);
  const auto sm = static_cast<std::size_t>(m);
  const std::vector<Family> families = {
      {"uniform-feasible",
       [&](Xoshiro256& rng) { return make_uniform_feasible(sn, sm, 0.4, 1.5, rng); }},
      {"qos-classes",
       [&](Xoshiro256&) { return make_qos_classes(sm, 4, 8, 0.3); }},
      {"zipf",
       [&](Xoshiro256& rng) { return make_zipf(sn, sm, 1.1, rng); }},
      {"related-capacities",
       [&](Xoshiro256& rng) { return make_related_capacities(sn, sm, 0.3, 3, rng); }},
  };

  const std::vector<std::pair<std::string, double>> protocols = {
      {"seq-br", 1.0},    {"uniform", 1.0},  {"uniform", 0.5},
      {"adaptive", 1.0},  {"admission", 1.0}, {"berenbrink", 1.0}};

  TablePrinter table({"family", "protocol", "rounds_mean", "migrations_mean",
                      "messages_mean", "satisfied_frac", "converged"});
  std::cout << "E4: protocol comparison (n=" << n << ", m=" << m
            << ", reps=" << common.reps << ", random start)\n";

  for (const Family& family : families) {
    for (const auto& [kind, lambda] : protocols) {
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ std::hash<std::string>{}(family.name + kind),
          common.reps, [&, kind = kind, lambda = lambda](std::uint64_t seed) {
            Xoshiro256 rng(seed);
            const Instance instance = family.build(rng);
            State state = State::random(instance, rng);
            ProtocolSpec spec;
            spec.kind = kind;
            spec.lambda = lambda;
            const auto protocol = make_protocol(spec);
            EngineConfig config;
            config.max_rounds = 30000;
            ReplicatedRun run;
            run.result = Engine(config).run(*protocol, state, rng);
            run.num_users = instance.num_users();
            return run;
          });
      const std::string label =
          kind == "uniform" ? (lambda == 1.0 ? "uniform(1.0)" : "uniform(0.5)")
                            : kind;
      table.cell(family.name)
          .cell(label)
          .cell(agg.rounds.mean())
          .cell(agg.migrations.mean())
          .cell(agg.messages.mean())
          .cell(agg.satisfied_fraction.mean())
          .cell(agg.converged_fraction)
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
