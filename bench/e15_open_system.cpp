// E15 (Fig 9) — Open-system saturation sweep.
//
// Claim validated: with continuous Poisson arrivals and geometric lifetimes,
// the continuously-running admission protocol keeps the violation fraction
// near zero while the offered load ρ stays below capacity and degrades with
// a sharp knee as ρ crosses 1 — the open-system counterpart of the static
// slack sweep (E6). ρ = λ·L·E[occupancy-per-user] / (m·T̄): arrivals λ per
// round, lifetime L rounds, thresholds T̄.

#include <iostream>

#include "bench_common.hpp"
#include "core/open/open_system.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/5);
  const long long m = args.get_int("m", 64);
  const long long rounds = args.get_int("rounds", 3000);
  args.finish();

  // Thresholds ~ [20, 25] => per-resource capacity ~22.5 users; saturation
  // population m * 22.5. With lifetime 200 rounds, the saturating arrival
  // rate is m * 22.5 / 200.
  const double lifetime = 200.0;
  const double capacity_population = static_cast<double>(m) * 22.5;
  const std::vector<double> rhos = {0.3, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2};

  TablePrinter table({"rho", "arrival_rate", "mean_population",
                      "violation_frac", "rounds_to_sat", "never_satisfied_frac",
                      "migrations_per_round"});
  std::cout << "E15: open-system saturation sweep (m=" << m
            << ", lifetime=" << lifetime << " rounds, " << rounds
            << " rounds/run, reps=" << common.reps << ")\n";

  for (const double rho : rhos) {
    RunningStat population, violations, delay, never, migrations;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      OpenSystemConfig config;
      config.num_resources = static_cast<std::size_t>(m);
      config.arrival_rate = rho * capacity_population / lifetime;
      config.mean_lifetime = lifetime;
      config.q_lo = 0.04;
      config.q_hi = 0.05;
      config.rounds = static_cast<std::uint64_t>(rounds);
      config.warmup_rounds = static_cast<std::uint64_t>(rounds) / 3;
      config.seed = derive_seed(common.seed, rep + static_cast<std::size_t>(rho * 100));
      const OpenSystemMetrics metrics = run_open_system(config);
      population.add(metrics.mean_population);
      violations.add(metrics.violation_fraction);
      delay.add(metrics.mean_rounds_to_satisfaction);
      never.add(metrics.arrivals == 0
                    ? 0.0
                    : static_cast<double>(metrics.never_satisfied) /
                          static_cast<double>(metrics.arrivals));
      migrations.add(static_cast<double>(metrics.migrations) /
                     static_cast<double>(rounds));
    }
    table.cell(rho)
        .cell(rho * capacity_population / lifetime)
        .cell(population.mean())
        .cell(violations.mean())
        .cell(delay.mean())
        .cell(never.mean())
        .cell(migrations.mean())
        .end_row();
  }

  emit(table, common);
  return 0;
}
