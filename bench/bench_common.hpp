#pragma once

// Shared plumbing for the experiment binaries (DESIGN.md §3): argument
// handling, replication helpers, and consistent table/CSV output. Every bench
// accepts --reps, --seed, and --csv; experiment-specific knobs are documented
// in each main().

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/generators.hpp"
#include "core/protocols/registry.hpp"
#include "core/state.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace qoslb::bench {

struct CommonArgs {
  std::size_t reps = 10;
  std::uint64_t seed = 0xC0FFEE;
  bool csv = false;
};

inline CommonArgs read_common(ArgParser& args, std::size_t default_reps = 10) {
  CommonArgs common;
  common.reps = static_cast<std::size_t>(
      args.get_int("reps", static_cast<long long>(default_reps)));
  common.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xC0FFEE));
  common.csv = args.get_flag("csv");
  return common;
}

inline void emit(const TablePrinter& table, const CommonArgs& common) {
  if (common.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

/// One replication of `kind` on a fresh uniform-feasible instance. The
/// default start is the all-on-one worst case: a random start on a slack
/// instance is typically already satisfied, so the convergence claims are
/// measured as recovery from the adversarial initial state (pass
/// start="random" for the easy regime).
inline ReplicatedRun run_uniform_feasible_once(
    const std::string& kind, double lambda, std::size_t n, std::size_t m,
    double slack, double heterogeneity, std::uint64_t seed,
    std::uint64_t max_rounds = 1u << 20, const std::string& start = "all0") {
  Xoshiro256 rng(seed);
  const Instance instance = make_uniform_feasible(n, m, slack, heterogeneity, rng);
  State state = start == "random" ? State::random(instance, rng)
                                  : State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = kind;
  spec.lambda = lambda;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = max_rounds;
  ReplicatedRun run;
  run.result = Engine(config).run(*protocol, state, rng);
  run.num_users = instance.num_users();
  return run;
}

}  // namespace qoslb::bench
