// E16 (Table 7) — Deterministic parallel decision phase: thread scaling.
//
// Measures user-rounds/s of ParallelUniformSampling at 1/2/4/8 worker
// threads on a large instance, verifying as it goes that every thread count
// produces bit-identical assignments (counter-based Philox randomness). On a
// single-core host the table quantifies pure threading overhead instead of
// speedup — both are honest numbers for the substrate.

#include <iostream>

#include "bench_common.hpp"
#include "core/parallel/parallel_sampling.hpp"
#include "obs/clock.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/3);
  const long long n = args.get_int("n", 65536);
  const long long m = args.get_int("m", 4096);
  args.finish();

  Xoshiro256 gen_rng(common.seed);
  const Instance instance = make_uniform_feasible(
      static_cast<std::size_t>(n), static_cast<std::size_t>(m), 0.15, 1.0,
      gen_rng);

  TablePrinter table({"threads", "rounds", "seconds_best", "user_rounds_per_sec",
                      "identical_to_serial"});
  std::cout << "E16: parallel decision phase (n=" << n << ", m=" << m
            << ", hardware threads="
            << std::max(1u, std::thread::hardware_concurrency())
            << ", reps=" << common.reps << ")\n";

  std::vector<ResourceId> reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    double best_seconds = 1e100;
    std::uint64_t rounds = 0;
    bool identical = true;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      State state = State::all_on(instance, 0);
      ParallelUniformSampling protocol(0.5, /*seed=*/7, threads);
      Xoshiro256 unused(1);
      EngineConfig config;
      config.max_rounds = 100000;
      obs::Stopwatch watch;
      const EngineResult result = Engine(config).run(protocol, state, unused);
      best_seconds = std::min(best_seconds, watch.seconds());
      rounds = result.rounds;

      std::vector<ResourceId> assignment(state.num_users());
      for (UserId u = 0; u < state.num_users(); ++u)
        assignment[u] = state.resource_of(u);
      if (threads == 1 && rep == 0) reference = assignment;
      identical = identical && assignment == reference;
    }
    table.cell(static_cast<long long>(threads))
        .cell(static_cast<unsigned long long>(rounds))
        .cell(best_seconds, 5)
        .cell(static_cast<double>(rounds) * static_cast<double>(n) /
              best_seconds)
        .cell(identical ? "yes" : "NO")
        .end_row();
  }

  emit(table, common);
  return 0;
}
