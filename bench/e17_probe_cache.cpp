// E17 (Table 8) — Probe caching: message cost vs. staleness.
//
// Ablation of the information model: users consult a shared load cache and
// probe only entries older than `ttl` rounds. The sweep crosses ttl with the
// migration probability λ, because the two interact: under damping (λ=0.5)
// loads drift slowly, stale data is almost as good as fresh, and caching is
// a near-free ~4× message saving; undamped (λ=1) the whole herd acts on the
// same cached "free" signal, so staleness amplifies overshoot.
// UniformSampling (every user pays every probe) is the reference row per λ.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/protocols/cached_sampling.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "util/strings.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 4096);
  const long long m = args.get_int("m", 256);
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  struct Config {
    std::string label;
    std::unique_ptr<Protocol> protocol;
  };
  std::vector<Config> configs;
  for (const double lambda : {0.5, 1.0}) {
    const std::string suffix = " λ=" + format_double(lambda, 2);
    configs.push_back(
        {"uniform (no cache)" + suffix, std::make_unique<UniformSampling>(lambda)});
    for (const std::uint32_t ttl : {0u, 2u, 8u, 16u})
      configs.push_back({"cached ttl=" + std::to_string(ttl) + suffix,
                         std::make_unique<CachedSampling>(lambda, ttl)});
  }

  TablePrinter table({"config", "rounds_mean", "probes_mean", "messages_mean",
                      "migrations_mean", "converged"});
  std::cout << "E17: probe-cache staleness sweep (n=" << n << ", m=" << m
            << ", slack=" << slack << ", all-on-one start, reps="
            << common.reps << ")\n";

  for (const Config& config : configs) {
    RunningStat rounds, probes, messages, migrations;
    std::size_t converged = 0;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(derive_seed(common.seed, rep));
      const Instance instance = make_uniform_feasible(
          static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack, 1.5,
          rng);
      State state = State::all_on(instance, 0);
      EngineConfig run_config;
      run_config.max_rounds = 50000;
      const EngineResult result =
          Engine(run_config).run(*config.protocol, state, rng);
      if (result.converged) ++converged;
      rounds.add(static_cast<double>(result.rounds));
      probes.add(static_cast<double>(result.counters.probes));
      messages.add(static_cast<double>(result.counters.messages()));
      migrations.add(static_cast<double>(result.counters.migrations));
    }
    table.cell(config.label)
        .cell(rounds.mean())
        .cell(probes.mean())
        .cell(messages.mean())
        .cell(migrations.mean())
        .cell(static_cast<double>(converged) / static_cast<double>(common.reps))
        .end_row();
  }

  emit(table, common);
  return 0;
}
