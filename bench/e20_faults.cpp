// E20 — Convergence of the loss-tolerant async protocol under injected
// faults.
//
// Claim validated: with timeouts, bounded exponential-backoff retries, and
// stale/duplicate suppression, the asynchronous admission protocol keeps
// driving feasible instances to full satisfaction under uniform message
// loss, duplication, and resource crash/recovery — at a message overhead
// that grows smoothly with the drop rate (no cliff), while the trusting
// realization deadlocks on the first lost GRANT. The table sweeps drop rate
// x crash count and reports the satisfied fraction, virtual convergence
// time, and the retry/timeout work the faults induced.
//
// A second sweep covers the synchronous sharded engine's deterministic
// resource churn (docs/faults.md): one resource fails mid-run and later
// recovers, and the rows report the graceful-degradation metrics — evicted
// users, the satisfied-fraction dip depth, and rounds back to the
// pre-failure baseline — per protocol.
//
// Knobs: --n, --m, --slack, --dup, --crash-len, --fail-round,
// --recover-round, plus the common --reps/--seed/--csv.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/async/async_protocols.hpp"
#include "core/engine.hpp"
#include "core/protocols/registry.hpp"
#include "rng/splitmix64.hpp"
#include "obs/clock.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const auto n = static_cast<std::size_t>(args.get_int("n", 800));
  const auto m = static_cast<std::size_t>(args.get_int("m", 40));
  const double slack = args.get_double("slack", 0.4);
  const double dup = args.get_double("dup", 0.05);
  const double crash_len = args.get_double("crash-len", 100.0);
  const auto fail_round =
      static_cast<std::uint64_t>(args.get_int("fail-round", 20));
  const auto recover_round =
      static_cast<std::uint64_t>(args.get_int("recover-round", 60));
  args.finish();

  const std::vector<double> drop_rates = {0.0, 0.05, 0.10, 0.20};
  const std::vector<int> crash_counts = {0, 1, 2};

  TablePrinter table({"drop", "crashes", "satisfied_frac", "quiesced_frac",
                      "vtime_mean", "events_mean", "messages_mean",
                      "retries_mean", "timeouts_mean", "faults_mean"});
  std::cout << "E20: async admission under fault injection (n=" << n
            << ", m=" << m << ", slack=" << slack << ", dup=" << dup
            << ", reps=" << common.reps << ")\n";

  BenchJson json("e20_faults");
  for (const double drop : drop_rates) {
    for (const int crashes : crash_counts) {
      RunningStat satisfied, quiesced, vtime, events, messages, retries,
          timeouts, faults;
      obs::Stopwatch cell_watch;
      for (std::size_t rep = 0; rep < common.reps; ++rep) {
        Xoshiro256 rng(derive_seed(common.seed, rep));
        const Instance instance =
            make_uniform_feasible(n, m, slack, 1.5, rng);
        EngineConfig config;
        config.seed = derive_seed(common.seed, 1000 + rep);
        config.random_start = false;  // force migration traffic
        if (drop > 0.0) config.faults.drop_all(drop);
        if (dup > 0.0) config.faults.dup_all(dup);
        // Staggered crash windows over the early convergence phase.
        for (int c = 0; c < crashes; ++c)
          config.faults.crash(static_cast<AgentId>(c % m), 5.0 + 10.0 * c,
                              5.0 + 10.0 * c + crash_len);
        const AsyncRunResult result = run_async_admission(instance, config);
        satisfied.add(static_cast<double>(result.satisfied) /
                      static_cast<double>(n));
        quiesced.add(result.hit_event_cap ? 0.0 : 1.0);
        vtime.add(result.virtual_time);
        events.add(static_cast<double>(result.events));
        messages.add(static_cast<double>(result.counters.messages()));
        retries.add(static_cast<double>(result.counters.retries));
        timeouts.add(static_cast<double>(result.counters.timeouts));
        faults.add(static_cast<double>(result.faults.total()));
      }
      const double cell_wall = cell_watch.seconds();
      JsonRow& row = json.add_row();
      row.field("drop", drop)
          .field("crashes", static_cast<long long>(crashes))
          .field("reps", static_cast<unsigned long long>(common.reps))
          .field("satisfied_frac", satisfied.mean())
          .field("quiesced_frac", quiesced.mean())
          .field("vtime_mean", vtime.mean())
          .field("events_mean", events.mean())
          .field("messages_mean", messages.mean())
          .field("retries_mean", retries.mean())
          .field("timeouts_mean", timeouts.mean())
          .field("faults_mean", faults.mean());
      // Async runs emit no trace rows, so sink time is identically zero —
      // the triple still goes out so rows line up with the traced benches.
      timing_fields(row, "", cell_wall, 0.0);
      table.cell(drop)
          .cell(static_cast<long long>(crashes))
          .cell(satisfied.mean())
          .cell(quiesced.mean())
          .cell(vtime.mean())
          .cell(events.mean())
          .cell(messages.mean())
          .cell(retries.mean())
          .cell(timeouts.mean())
          .cell(faults.mean())
          .end_row();
    }
  }

  emit(table, common);

  // ---- synchronous sharded churn: graceful degradation per protocol ----
  // A tight world (5% slack) so losing one of m resources genuinely dents
  // the satisfied fraction until the recovery event lands.
  const double churn_slack = 0.05;
  const std::vector<std::pair<std::string, double>> churn_protocols = {
      {"uniform", 0.5}, {"adaptive", 1.0}, {"admission", 1.0}};
  TablePrinter churn_table({"protocol", "fail_round", "recover_round",
                            "evicted_mean", "max_dip_depth_mean",
                            "recovery_rounds_mean", "rounds_mean",
                            "converged_frac"});
  std::cout << "E20b: sharded engine under deterministic resource churn "
               "(slack=" << churn_slack << ", fail@" << fail_round
            << ", recover@" << recover_round << ")\n";
  for (const auto& [kind, lambda] : churn_protocols) {
    RunningStat evicted, dip_depth, recovery_rounds, rounds, converged;
    obs::Stopwatch cell_watch;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(derive_seed(common.seed, 2000 + rep));
      const Instance instance =
          make_uniform_feasible(n, m, churn_slack, 1.5, rng);
      State state = State::all_on(instance, 0);
      ProtocolSpec spec;
      spec.kind = kind;
      spec.lambda = lambda;
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = 4000;
      config.churn.fail(fail_round, 1).recover(recover_round, 1);
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      evicted.add(static_cast<double>(result.churn.evicted));
      dip_depth.add(result.churn.max_dip_depth);
      recovery_rounds.add(static_cast<double>(result.churn.max_recovery_rounds));
      rounds.add(static_cast<double>(result.rounds));
      converged.add(result.converged ? 1.0 : 0.0);
    }
    const double cell_wall = cell_watch.seconds();
    JsonRow& row = json.add_row();
    row.field("protocol", kind)
        .field("fail_round", static_cast<unsigned long long>(fail_round))
        .field("recover_round", static_cast<unsigned long long>(recover_round))
        .field("reps", static_cast<unsigned long long>(common.reps))
        .field("evicted_mean", evicted.mean())
        .field("max_dip_depth_mean", dip_depth.mean())
        .field("recovery_rounds_mean", recovery_rounds.mean())
        .field("rounds_mean", rounds.mean())
        .field("converged_frac", converged.mean());
    timing_fields(row, "", cell_wall, 0.0);
    churn_table.cell(kind)
        .cell(static_cast<unsigned long long>(fail_round))
        .cell(static_cast<unsigned long long>(recover_round))
        .cell(evicted.mean())
        .cell(dip_depth.mean())
        .cell(recovery_rounds.mean())
        .cell(rounds.mean())
        .cell(converged.mean())
        .end_row();
  }
  emit(churn_table, common);

  json.write("BENCH_faults.json");
  return 0;
}
