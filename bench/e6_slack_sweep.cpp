// E6 (Fig 5) — Convergence cost as the feasibility slack shrinks.
//
// Claim validated: convergence time blows up as the instance approaches the
// feasibility boundary (slack → 0): with no headroom, the last unsatisfied
// users must find exactly the residual free slots, so the per-round success
// probability collapses. Ample slack gives fast, flat convergence.

#include <iostream>

#include "bench_common.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 1024);
  const long long m = args.get_int("m", 64);
  const long long cap = args.get_int("max-rounds", 20000);
  args.finish();

  const std::vector<double> slacks = {0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
  const std::vector<std::pair<std::string, double>> protocols = {
      {"uniform", 0.5}, {"adaptive", 1.0}, {"admission", 1.0}};

  TablePrinter table({"protocol", "slack", "rounds_mean", "rounds_p95",
                      "rounds_max", "converged"});
  std::cout << "E6: slack sweep (n=" << n << ", m=" << m << ", cap=" << cap
            << " rounds, reps=" << common.reps << ")\n";

  for (const auto& [kind, lambda] : protocols) {
    for (const double slack : slacks) {
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ static_cast<std::uint64_t>(slack * 1e6), common.reps,
          [&, kind = kind, lambda = lambda](std::uint64_t seed) {
            return run_uniform_feasible_once(
                kind, lambda, static_cast<std::size_t>(n),
                static_cast<std::size_t>(m), slack, 1.0, seed,
                static_cast<std::uint64_t>(cap));
          });
      table.cell(kind)
          .cell(slack)
          .cell(agg.rounds.mean())
          .cell(agg.rounds_p95)
          .cell(agg.rounds_max)
          .cell(agg.converged_fraction)
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
