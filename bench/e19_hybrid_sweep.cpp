// E19 (Table 10) — ε-sweep between the two solution concepts.
//
// HybridEpsilonGreedy interpolates E14's endpoints: ε = 0 stops at the first
// satisfaction equilibrium; ε > 0 lets satisfied users keep polishing
// quality until a Nash balance. The sweep shows what ε buys (minimum
// quality, load spread) and what it costs (rounds, migrations) — the
// practical dial a deployment would tune.

#include <iostream>

#include "bench_common.hpp"
#include "core/dynamics/hybrid.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 1024);
  const long long m = args.get_int("m", 64);
  const double slack = args.get_double("slack", 0.3);
  args.finish();

  TablePrinter table({"epsilon", "rounds_mean", "migrations_mean",
                      "min_quality_mean", "spread_mean", "converged"});
  std::cout << "E19: hybrid epsilon sweep (n=" << n << ", m=" << m
            << ", slack=" << slack << ", all-on-one start, reps="
            << common.reps << ")\n";

  for (const double epsilon : {0.0, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    RunningStat rounds, migrations, min_quality, spread;
    std::size_t converged = 0;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(derive_seed(common.seed, rep));
      const Instance instance = make_uniform_feasible(
          static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack, 1.0,
          rng);
      State state = State::all_on(instance, 0);
      HybridEpsilonGreedy protocol(0.5, epsilon);
      EngineConfig config;
      config.max_rounds = 100000;
      const EngineResult result = Engine(config).run(protocol, state, rng);
      if (result.converged) ++converged;
      rounds.add(static_cast<double>(result.rounds));
      migrations.add(static_cast<double>(result.counters.migrations));
      double worst = state.quality_of(0);
      for (UserId u = 1; u < state.num_users(); ++u)
        worst = std::min(worst, state.quality_of(u));
      min_quality.add(worst);
      spread.add(static_cast<double>(state.max_load() - state.min_load()));
    }
    table.cell(epsilon)
        .cell(rounds.mean())
        .cell(migrations.mean())
        .cell(min_quality.mean(), 5)
        .cell(spread.mean())
        .cell(static_cast<double>(converged) / static_cast<double>(common.reps))
        .end_row();
  }

  emit(table, common);
  return 0;
}
