// E9 (Table 3) — Sequential best-response baseline: moves to equilibrium.
//
// Claim validated: the sequential dynamic terminates, and the number of
// migrations it needs grows linearly in n (each step moves one user, and on
// slack-feasible instances almost every unsatisfied user needs only O(1)
// moves). Reported as total steps, migrations, and migrations per user, with
// a power-law fit of migrations vs n (exponent ≈ 1).

#include <iostream>

#include "bench_common.hpp"
#include "stats/regression.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const auto sizes = args.get_int_list("sizes", {128, 256, 512, 1024, 2048, 4096});
  const double slack = args.get_double("slack", 0.4);
  args.finish();

  TablePrinter table({"order", "n", "steps_mean", "migrations_mean",
                      "migrations_per_user", "converged"});
  std::cout << "E9: sequential best response (n/m=16, slack=" << slack
            << ", all-on-one start, reps=" << common.reps << ")\n";

  for (const std::string kind : {"seq-br", "seq-br-rr"}) {
    std::vector<double> xs, ys;
    for (const long long n : sizes) {
      const std::size_t m = static_cast<std::size_t>(n) / 16;
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ static_cast<std::uint64_t>(n), common.reps,
          [&](std::uint64_t seed) {
            Xoshiro256 rng(seed);
            const Instance instance = make_uniform_feasible(
                static_cast<std::size_t>(n), m, slack, 1.5, rng);
            State state = State::all_on(instance, 0);
            ProtocolSpec spec;
            spec.kind = kind;
            const auto protocol = make_protocol(spec);
            EngineConfig config;
            config.max_rounds = static_cast<std::uint64_t>(n) * 64;
            ReplicatedRun run;
            run.result = Engine(config).run(*protocol, state, rng);
            run.num_users = instance.num_users();
            return run;
          });
      table.cell(kind)
          .cell(n)
          .cell(agg.rounds.mean())
          .cell(agg.migrations.mean())
          .cell(agg.migrations.mean() / static_cast<double>(n))
          .cell(agg.converged_fraction)
          .end_row();
      xs.push_back(static_cast<double>(n));
      ys.push_back(std::max(1.0, agg.migrations.mean()));
    }
    const LinearFit fit = fit_power(xs, ys);
    std::cout << "fit[" << kind << "]: migrations ~ n^" << fit.slope
              << " (r2=" << fit.r_squared << ")\n";
  }

  emit(table, common);
  return 0;
}
