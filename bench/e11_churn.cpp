// E11 (Fig 8) — Re-convergence under churn.
//
// Claim validated: the protocols are self-stabilizing — after a batch of
// user departures/arrivals (or a resource outage), the system re-converges
// quickly, and the recovery time scales with the *churn size*, not with n.
// Each wave replaces a fraction of the users with fresh ones placed at
// random; the table reports rounds to re-convergence per wave.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

/// Replaces `count` random users with fresh ones (thresholds redrawn from
/// the same [t_min, t_max] band, placed uniformly at random) and returns the
/// new instance plus an assignment carrying over every surviving user.
struct ChurnedWorld {
  Instance instance;
  std::vector<ResourceId> assignment;
};

ChurnedWorld churn(const Instance& old_instance,
                   const std::vector<ResourceId>& old_assignment,
                   std::size_t count, int t_min, int t_max, Xoshiro256& rng) {
  const std::size_t n = old_instance.num_users();
  std::vector<double> requirements(n);
  std::vector<ResourceId> assignment = old_assignment;
  for (UserId u = 0; u < n; ++u) requirements[u] = old_instance.requirement(u);

  const auto victims = sample_without_replacement(rng, n, count);
  for (const std::size_t u : victims) {
    const int t = static_cast<int>(uniform_int(rng, t_min, t_max));
    requirements[u] = 1.0 / static_cast<double>(t);
    assignment[u] = static_cast<ResourceId>(
        uniform_u64_below(rng, old_instance.num_resources()));
  }
  std::vector<double> capacities(old_instance.num_resources());
  for (ResourceId r = 0; r < capacities.size(); ++r)
    capacities[r] = old_instance.capacity(r);
  return ChurnedWorld{Instance(std::move(capacities), std::move(requirements)),
                      std::move(assignment)};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/5);
  const long long n = args.get_int("n", 4096);
  const long long m = args.get_int("m", 256);
  const long long waves = args.get_int("waves", 6);
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  const std::vector<double> churn_fractions = {0.01, 0.05, 0.2};
  // Threshold band matching make_uniform_feasible(slack, heterogeneity=1.5).
  const int load = static_cast<int>((n + m - 1) / m);
  const int t_min = static_cast<int>(std::ceil(load / (1.0 - slack)));
  const int t_max = static_cast<int>(std::ceil(1.5 * t_min));

  TablePrinter table({"protocol", "churn_frac", "wave", "rounds_mean",
                      "migrations_mean", "satisfied_frac"});
  std::cout << "E11: re-convergence under churn (n=" << n << ", m=" << m
            << ", slack=" << slack << ", reps=" << common.reps << ")\n";

  for (const std::string kind : {"adaptive", "admission"}) {
    for (const double frac : churn_fractions) {
      const auto churn_count = static_cast<std::size_t>(
          std::max(1.0, frac * static_cast<double>(n)));
      std::vector<RunningStat> wave_rounds(static_cast<std::size_t>(waves));
      std::vector<RunningStat> wave_migrations(static_cast<std::size_t>(waves));
      std::vector<RunningStat> wave_satisfied(static_cast<std::size_t>(waves));

      for (std::size_t rep = 0; rep < common.reps; ++rep) {
        Xoshiro256 rng(derive_seed(common.seed, rep * 1000 + churn_count));
        Instance instance = make_uniform_feasible(
            static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack,
            1.5, rng);
        State state = State::random(instance, rng);
        ProtocolSpec spec;
        spec.kind = kind;
        auto protocol = make_protocol(spec);
        EngineConfig config;
        config.max_rounds = 100000;
        Engine(config).run(*protocol, state, rng);  // initial convergence

        for (long long wave = 0; wave < waves; ++wave) {
          std::vector<ResourceId> assignment(instance.num_users());
          for (UserId u = 0; u < instance.num_users(); ++u)
            assignment[u] = state.resource_of(u);
          ChurnedWorld world =
              churn(instance, assignment, churn_count, t_min, t_max, rng);
          instance = std::move(world.instance);
          state = State(instance, std::move(world.assignment));
          const EngineResult result = Engine(config).run(*protocol, state, rng);
          wave_rounds[wave].add(static_cast<double>(result.rounds));
          wave_migrations[wave].add(
              static_cast<double>(result.counters.migrations));
          wave_satisfied[wave].add(static_cast<double>(result.final_satisfied) /
                                   static_cast<double>(instance.num_users()));
        }
      }

      for (long long wave = 0; wave < waves; ++wave) {
        table.cell(kind)
            .cell(frac)
            .cell(wave)
            .cell(wave_rounds[wave].mean())
            .cell(wave_migrations[wave].mean())
            .cell(wave_satisfied[wave].mean())
            .end_row();
      }
    }
  }

  emit(table, common);
  return 0;
}
