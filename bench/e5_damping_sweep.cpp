// E5 (Fig 4) — Herding/oscillation vs. migration-probability damping.
//
// Claim validated: on the adversarial two-resource herding instance, the
// undamped optimistic protocol (λ=1 with enough probes to always see the
// other resource) oscillates and essentially never converges; damping λ < 1
// restores convergence, with an interior sweet spot (too little damping
// keeps herding, too much slows progress). The adaptive and admission
// protocols converge without any tuned λ — the ablation DESIGN.md §6 calls
// out.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 1000);
  const long long cap = args.get_int("max-rounds", 2000);
  args.finish();

  struct Config {
    std::string label;
    std::string kind;
    double lambda;
  };
  std::vector<Config> configs;
  for (const double lambda : {1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.05})
    configs.push_back({"uniform λ=" + format_double(lambda, 3), "uniform", lambda});
  configs.push_back({"adaptive", "adaptive", 1.0});
  configs.push_back({"admission", "admission", 1.0});

  TablePrinter table({"config", "converged_frac", "rounds_mean", "rounds_p95",
                      "migrations_mean"});
  std::cout << "E5: damping sweep on the herding instance (n=" << n
            << ", 2 resources, threshold 3n/5, all-on-one start, cap="
            << cap << " rounds, reps=" << common.reps << ")\n";

  const Instance instance = make_herding(static_cast<std::size_t>(n));
  for (const Config& config : configs) {
    const AggregatedRuns agg = aggregate_runs(
        common.seed ^ std::hash<std::string>{}(config.label), common.reps,
        [&](std::uint64_t seed) {
          Xoshiro256 rng(seed);
          State state = State::all_on(instance, 0);
          ProtocolSpec spec;
          spec.kind = config.kind;
          spec.lambda = config.lambda;
          spec.probes = 8;  // enough probes to always spot the other resource
          const auto protocol = make_protocol(spec);
          EngineConfig run_config;
          run_config.max_rounds = static_cast<std::uint64_t>(cap);
          ReplicatedRun run;
          run.result = Engine(run_config).run(*protocol, state, rng);
          run.num_users = instance.num_users();
          return run;
        });
    table.cell(config.label)
        .cell(agg.converged_fraction)
        .cell(agg.rounds.mean())
        .cell(agg.rounds_p95)
        .cell(agg.migrations.mean())
        .end_row();
  }

  emit(table, common);
  return 0;
}
