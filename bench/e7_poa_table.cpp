// E7 (Table 2) — Equilibrium quality vs. the centralized optimum
// (empirical price of anarchy for satisfaction).
//
// Claim validated: satisfaction equilibria can be arbitrarily far from the
// welfare (here: satisfied-count) optimum. On small instances the exact
// flow-based optimizer (opt/satisfaction.hpp) provides ground truth; the
// table reports, per instance family and protocol, the mean satisfied count,
// the optimum, and their ratio. The deadlock family shows the unbounded-PoA
// construction: a balanced start on an overloaded instance is already stable
// with zero satisfied users, while the optimum satisfies m·T of them.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "opt/satisfaction.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

std::vector<int> thresholds_of(const Instance& inst) {
  std::vector<int> out(inst.num_users());
  for (UserId u = 0; u < inst.num_users(); ++u) out[u] = inst.threshold(u, 0);
  return out;
}

struct Family {
  std::string name;
  std::function<Instance(Xoshiro256&)> build;
  bool balanced_start;  // round-robin (deadlock-prone) vs random start
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  args.finish();

  // Sizes stay within the exact optimizer's guard (n <= 64, m <= 16;
  // partition enumeration).
  const std::vector<Family> families = {
      {"zipf(n=24,m=3)", [](Xoshiro256& rng) { return make_zipf(24, 3, 1.0, rng); },
       false},
      {"zipf(n=40,m=4)", [](Xoshiro256& rng) { return make_zipf(40, 4, 1.2, rng); },
       false},
      {"overloaded(n=48,m=4,x2)",
       [](Xoshiro256&) { return make_overloaded(48, 4, 2.0); }, false},
      {"overloaded-balanced-start",
       [](Xoshiro256&) { return make_overloaded(48, 4, 2.0); }, true},
      {"feasible(n=48,m=4)",
       [](Xoshiro256& rng) { return make_uniform_feasible(48, 4, 0.3, 1.5, rng); },
       false},
  };

  const std::vector<std::string> protocols = {"seq-br", "adaptive", "admission"};

  TablePrinter table({"family", "protocol", "satisfied_mean", "optimum_mean",
                      "ratio", "worst_ratio"});
  std::cout << "E7: satisfied count vs exact optimum (reps=" << common.reps
            << ")\n";

  for (const Family& family : families) {
    for (const std::string& kind : protocols) {
      RunningStat satisfied, optimum, ratio;
      double worst_ratio = 1.0;
      for (std::size_t rep = 0; rep < common.reps; ++rep) {
        const std::uint64_t seed =
            derive_seed(common.seed ^ std::hash<std::string>{}(family.name), rep);
        Xoshiro256 rng(seed);
        const Instance instance = family.build(rng);
        const int opt = max_satisfied_identical(
            thresholds_of(instance), static_cast<int>(instance.num_resources()));
        State state = family.balanced_start ? State::round_robin(instance)
                                            : State::random(instance, rng);
        ProtocolSpec spec;
        spec.kind = kind;
        spec.lambda = 0.5;
        const auto protocol = make_protocol(spec);
        EngineConfig config;
        config.max_rounds = 20000;
        const EngineResult result = Engine(config).run(*protocol, state, rng);
        satisfied.add(static_cast<double>(result.final_satisfied));
        optimum.add(static_cast<double>(opt));
        const double r = opt == 0
                             ? 1.0
                             : static_cast<double>(result.final_satisfied) /
                                   static_cast<double>(opt);
        ratio.add(r);
        worst_ratio = std::min(worst_ratio, r);
      }
      table.cell(family.name)
          .cell(kind)
          .cell(satisfied.mean())
          .cell(optimum.mean())
          .cell(ratio.mean())
          .cell(worst_ratio)
          .end_row();
    }
  }

  emit(table, common);
  return 0;
}
