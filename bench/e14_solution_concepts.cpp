// E14 (Table 6) — Satisfaction equilibria vs. quality Nash equilibria.
//
// Same instances, two solution concepts. Satisfaction dynamics (P2–P4) stop
// as soon as everyone clears their threshold; quality dynamics
// (core/dynamics) keep migrating until no strict improvement exists. The
// table quantifies the trade-off the model predicts: quality Nash gives
// higher minimum quality and perfect balance but pays for it in migrations
// and rounds; satisfaction dynamics stop much earlier at "good enough".

#include <functional>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/dynamics/quality_game.hpp"
#include "core/potential.hpp"
#include "rng/splitmix64.hpp"

using namespace qoslb;
using namespace qoslb::bench;

namespace {

double min_quality(const State& state) {
  double worst = state.quality_of(0);
  for (UserId u = 1; u < state.num_users(); ++u)
    worst = std::min(worst, state.quality_of(u));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const long long n = args.get_int("n", 1024);
  const long long m = args.get_int("m", 64);
  const double slack = args.get_double("slack", 0.3);
  args.finish();

  struct Dynamic {
    std::string label;
    std::function<std::unique_ptr<Protocol>()> build;
  };
  const std::vector<Dynamic> dynamics = {
      {"admission (satisfaction)",
       [] {
         ProtocolSpec spec;
         spec.kind = "admission";
         return make_protocol(spec);
       }},
      {"adaptive (satisfaction)",
       [] {
         ProtocolSpec spec;
         spec.kind = "adaptive";
         return make_protocol(spec);
       }},
      {"quality-br (Nash)",
       [] { return std::make_unique<QualityBestResponse>(); }},
      {"quality-sampling (Nash)",
       [] { return std::make_unique<QualitySampling>(); }},
  };

  TablePrinter table({"dynamic", "rounds_mean", "migrations_mean",
                      "min_quality_mean", "spread_mean", "satisfied_frac",
                      "potential_mean"});
  std::cout << "E14: solution concepts on identical feasible instances (n="
            << n << ", m=" << m << ", slack=" << slack
            << ", all-on-one start, reps=" << common.reps << ")\n";

  for (const Dynamic& dynamic : dynamics) {
    RunningStat rounds, migrations, min_q, spread, satisfied, potential;
    for (std::size_t rep = 0; rep < common.reps; ++rep) {
      Xoshiro256 rng(derive_seed(common.seed, rep));
      const Instance instance = make_uniform_feasible(
          static_cast<std::size_t>(n), static_cast<std::size_t>(m), slack, 1.0,
          rng);
      State state = State::all_on(instance, 0);
      const auto protocol = dynamic.build();
      EngineConfig config;
      config.max_rounds = 200000;
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      rounds.add(static_cast<double>(result.rounds));
      migrations.add(static_cast<double>(result.counters.migrations));
      min_q.add(min_quality(state));
      spread.add(static_cast<double>(state.max_load() - state.min_load()));
      satisfied.add(static_cast<double>(result.final_satisfied) /
                    static_cast<double>(instance.num_users()));
      potential.add(rosenthal_potential(state));
    }
    table.cell(dynamic.label)
        .cell(rounds.mean())
        .cell(migrations.mean())
        .cell(min_q.mean(), 5)
        .cell(spread.mean())
        .cell(satisfied.mean())
        .cell(potential.mean())
        .end_row();
  }

  emit(table, common);
  return 0;
}
