#pragma once

// Minimal machine-readable bench output (BENCH_*.json): a bench name plus a
// flat array of row objects, written next to the human-readable table so CI
// and plotting scripts can track throughput without parsing stdout. No
// external JSON dependency — fields are emitted in insertion order and
// values are limited to the types benches actually produce.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace qoslb::bench {

/// One flat JSON object, built field by field.
class JsonRow {
 public:
  JsonRow& field(const std::string& key, const std::string& value) {
    std::string escaped;
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return raw(key, '"' + escaped + '"');
  }
  JsonRow& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonRow& field(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(12);
    out << value;
    return raw(key, out.str());
  }
  JsonRow& field(const std::string& key, unsigned long long value) {
    return raw(key, std::to_string(value));
  }
  JsonRow& field(const std::string& key, long long value) {
    return raw(key, std::to_string(value));
  }
  JsonRow& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out += '"' + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonRow& raw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Telemetry-aware timing triple. `wall` is what the stopwatch saw around
/// the run; `sink` is the time the run spent inside trace/metrics sinks
/// (obs::RunTelemetry::sink_seconds(), zero when no sink was attached);
/// `sim` = wall - sink is the simulation cost alone. Benches that can attach
/// sinks must emit the triple instead of a bare seconds field so BENCH_*.json
/// rows stay comparable whether telemetry was on or off.
inline JsonRow& timing_fields(JsonRow& row, const std::string& prefix,
                              double wall_seconds, double sink_seconds) {
  return row.field(prefix + "wall_seconds", wall_seconds)
      .field(prefix + "sink_seconds", sink_seconds)
      .field(prefix + "sim_seconds", wall_seconds - sink_seconds);
}

/// Collects rows and writes `{"bench": ..., "rows": [...]}` to a file.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  JsonRow& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the file; a failure warns on stderr but never fails the bench
  /// (the human-readable table already went to stdout).
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << '\n';
      return;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << "    " << rows_[i].to_json() << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "  ]\n}\n";
  }

 private:
  std::string bench_;
  std::vector<JsonRow> rows_;
};

}  // namespace qoslb::bench
