// E12 (Table 4) — Microbenchmarks of the hot operations (google-benchmark).
//
// Keeps the cost model honest: per-probe, per-move, and per-round costs that
// the experiment-level message counts multiply out to, plus the cost of the
// exact optimizer used as the E7 baseline.

#include <benchmark/benchmark.h>

#include "core/generators.hpp"
#include "core/protocols/adaptive_sampling.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "core/satisfaction.hpp"
#include "opt/dinic.hpp"
#include "opt/satisfaction.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

void BM_PhiloxAt(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(Philox4x32::at(42, i++));
}
BENCHMARK(BM_PhiloxAt);

void BM_UniformBelow(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(uniform_u64_below(rng, 12345));
}
BENCHMARK(BM_UniformBelow);

void BM_Threshold(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(1024, 64, 0.5, 1.5, rng);
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.threshold(u, 0));
    u = (u + 1) % 1024;
  }
}
BENCHMARK(BM_Threshold);

void BM_StateMove(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(1024, 64, 0.5, 1.0, rng);
  State s = State::round_robin(inst);
  ResourceId r = 0;
  for (auto _ : state) {
    s.move(0, r);
    r = (r + 1) % 64;
  }
}
BENCHMARK(BM_StateMove);

void BM_CountSatisfied(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) / 16, 0.5, 1.5, rng);
  const State s = State::round_robin(inst);
  for (auto _ : state) benchmark::DoNotOptimize(s.count_satisfied());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountSatisfied)->Arg(1024)->Arg(16384);

void BM_EquilibriumCheckFastPath(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) / 16, 0.5, 1.5, rng);
  const State s = State::round_robin(inst);
  for (auto _ : state) benchmark::DoNotOptimize(is_satisfaction_equilibrium(s));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EquilibriumCheckFastPath)->Arg(1024)->Arg(16384);

void BM_ProtocolRound(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(4096, 256, 0.5, 1.5, rng);
  AdaptiveSampling protocol;
  State s = State::all_on(inst, 0);
  Counters counters;
  for (auto _ : state) {
    protocol.step(s, rng, counters);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ProtocolRound);

void BM_AdmissionRound(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(4096, 256, 0.5, 1.5, rng);
  AdmissionControl protocol;
  State s = State::all_on(inst, 0);
  Counters counters;
  for (auto _ : state) {
    protocol.step(s, rng, counters);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AdmissionRound);

void BM_DinicBipartite(benchmark::State& state) {
  // 64 users x 4 resources matching (the E7 inner solve).
  Xoshiro256 rng(1);
  std::vector<int> thresholds(48);
  for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 1, 16));
  const auto matrix = identical_threshold_matrix(thresholds, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(satisfied_for_occupancies(matrix, {12, 12, 12, 12}));
}
BENCHMARK(BM_DinicBipartite);

void BM_ExactOptimizer(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<int> thresholds(32);
  for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 1, 12));
  for (auto _ : state)
    benchmark::DoNotOptimize(max_satisfied_identical(thresholds, 3));
}
BENCHMARK(BM_ExactOptimizer);

}  // namespace
}  // namespace qoslb

BENCHMARK_MAIN();
