// E12 (Table 4) — Microbenchmarks of the hot operations (google-benchmark).
//
// Keeps the cost model honest: per-probe, per-move, and per-round costs that
// the experiment-level message counts multiply out to, plus the cost of the
// exact optimizer used as the E7 baseline.

#include <benchmark/benchmark.h>

#include "core/generators.hpp"
#include "core/protocols/adaptive_sampling.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "core/satisfaction.hpp"
#include "opt/dinic.hpp"
#include "opt/satisfaction.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/des.hpp"

namespace qoslb {
namespace {

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

void BM_PhiloxAt(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(Philox4x32::at(42, i++));
}
BENCHMARK(BM_PhiloxAt);

void BM_UniformBelow(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(uniform_u64_below(rng, 12345));
}
BENCHMARK(BM_UniformBelow);

void BM_Threshold(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(1024, 64, 0.5, 1.5, rng);
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.threshold(u, 0));
    u = (u + 1) % 1024;
  }
}
BENCHMARK(BM_Threshold);

void BM_StateMove(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(1024, 64, 0.5, 1.0, rng);
  State s = State::round_robin(inst);
  ResourceId r = 0;
  for (auto _ : state) {
    s.move(0, r);
    r = (r + 1) % 64;
  }
}
BENCHMARK(BM_StateMove);

void BM_CountSatisfied(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) / 16, 0.5, 1.5, rng);
  const State s = State::round_robin(inst);
  for (auto _ : state) benchmark::DoNotOptimize(s.count_satisfied());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountSatisfied)->Arg(1024)->Arg(16384);

void BM_EquilibriumCheckFastPath(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) / 16, 0.5, 1.5, rng);
  const State s = State::round_robin(inst);
  for (auto _ : state) benchmark::DoNotOptimize(is_satisfaction_equilibrium(s));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EquilibriumCheckFastPath)->Arg(1024)->Arg(16384);

void BM_ProtocolRound(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(4096, 256, 0.5, 1.5, rng);
  AdaptiveSampling protocol;
  State s = State::all_on(inst, 0);
  Counters counters;
  for (auto _ : state) {
    protocol.step(s, rng, counters);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ProtocolRound);

void BM_AdmissionRound(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(4096, 256, 0.5, 1.5, rng);
  AdmissionControl protocol;
  State s = State::all_on(inst, 0);
  Counters counters;
  for (auto _ : state) {
    protocol.step(s, rng, counters);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AdmissionRound);

void BM_DesScheduleDrain(benchmark::State& state) {
  // The DES scheduling hot path: enqueue (heap push) + deliver (heap pop)
  // with a steady resident set of pending messages, jitter on so the heap
  // actually churns. Arg(1) pre-sizes the event storage via reserve();
  // Arg(0) grows it organically — the spread between the two is the
  // reallocation cost the reserve() hint removes.
  constexpr std::size_t kResident = 64;
  constexpr std::uint64_t kEvents = 4096;
  struct Relay : DesAgent {
    std::uint64_t budget = 0;
    void on_message(const Message& message, DesEngine& engine) override {
      (void)message;
      if (budget > 0) {
        --budget;
        engine.schedule_timer(0, 1.0);
      }
    }
  };
  for (auto _ : state) {
    Relay relay;
    relay.budget = kEvents;
    DesEngine engine(1, /*latency_jitter=*/0.25);
    if (state.range(0) != 0) engine.reserve(kResident + 1);
    engine.add_agent(&relay);
    for (std::size_t i = 0; i < kResident; ++i) engine.schedule_timer(0, 1.0);
    benchmark::DoNotOptimize(engine.run());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kEvents + kResident));
}
BENCHMARK(BM_DesScheduleDrain)->Arg(0)->Arg(1);

void BM_DinicBipartite(benchmark::State& state) {
  // 64 users x 4 resources matching (the E7 inner solve).
  Xoshiro256 rng(1);
  std::vector<int> thresholds(48);
  for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 1, 16));
  const auto matrix = identical_threshold_matrix(thresholds, 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(satisfied_for_occupancies(matrix, {12, 12, 12, 12}));
}
BENCHMARK(BM_DinicBipartite);

void BM_ExactOptimizer(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<int> thresholds(32);
  for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 1, 12));
  for (auto _ : state)
    benchmark::DoNotOptimize(max_satisfied_identical(thresholds, 3));
}
BENCHMARK(BM_ExactOptimizer);

}  // namespace
}  // namespace qoslb

BENCHMARK_MAIN();
