// E1 (Fig 1) — Convergence rounds vs. population size n.
//
// Claim validated: on feasible uniform-QoS instances with constant slack and
// constant load factor n/m, the damped/gated sampling protocols converge in
// a number of rounds that grows logarithmically in n. The bench sweeps n over
// powers of two, aggregates replications, and reports an OLS fit of
// rounds = a + b·log2(n) per protocol (r² near 1 with stable b is the
// logarithmic-growth signature; a power-law fit exponent near 0 corroborates).

#include <iostream>

#include "bench_common.hpp"
#include "stats/regression.hpp"

using namespace qoslb;
using namespace qoslb::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const CommonArgs common = read_common(args, /*default_reps=*/10);
  const auto sizes = args.get_int_list("sizes", {256, 512, 1024, 2048, 4096, 8192});
  const auto load_factor = args.get_int("load-factor", 16);
  const double slack = args.get_double("slack", 0.15);
  args.finish();

  const std::vector<std::pair<std::string, double>> protocols = {
      {"uniform", 0.5}, {"adaptive", 1.0}, {"admission", 1.0}};

  TablePrinter table({"protocol", "n", "m", "rounds_mean", "rounds_sem",
                      "rounds_p95", "migrations_mean", "messages_mean",
                      "converged"});
  std::cout << "E1: convergence rounds vs n (slack=" << slack
            << ", n/m=" << load_factor << ", reps=" << common.reps << ")\n";

  for (const auto& [kind, lambda] : protocols) {
    std::vector<double> xs, ys;
    for (const long long n : sizes) {
      const std::size_t m =
          static_cast<std::size_t>(std::max<long long>(1, n / load_factor));
      const AggregatedRuns agg = aggregate_runs(
          common.seed ^ static_cast<std::uint64_t>(n), common.reps,
          [&, kind = kind, lambda = lambda](std::uint64_t seed) {
            return run_uniform_feasible_once(kind, lambda,
                                             static_cast<std::size_t>(n), m,
                                             slack, 1.5, seed);
          });
      table.cell(kind)
          .cell(n)
          .cell(static_cast<long long>(m))
          .cell(agg.rounds.mean())
          .cell(agg.rounds.sem())
          .cell(agg.rounds_p95)
          .cell(agg.migrations.mean())
          .cell(agg.messages.mean())
          .cell(agg.converged_fraction)
          .end_row();
      xs.push_back(static_cast<double>(n));
      ys.push_back(agg.rounds.mean());
    }
    const LinearFit log_fit = fit_log2(xs, ys);
    std::cout << "fit[" << kind << "]: rounds ~ " << log_fit.intercept << " + "
              << log_fit.slope << "*log2(n), r2=" << log_fit.r_squared << '\n';
  }

  emit(table, common);
  return 0;
}
