// GPU cluster scheduling — a domain scenario for the weighted-user model
// with per-(job, node) speeds.
//
// Jobs request 1, 2, 4, or 8 GPUs (their weight); a node's GPUs are shared
// fairly per requested GPU, so a job is in SLA while the node's total
// committed GPU count stays under its per-job threshold. The cluster has two
// hardware generations: 8 current-gen nodes and 16 older ones whose slower
// interconnect serves multi-GPU training jobs at 60% speed (a rate matrix,
// docs/heterogeneity.md) — small inference jobs run at full speed anywhere.
// The example shows the fragmentation phenomenon weights introduce: after a
// wave of small jobs lands, an 8-GPU training job can be unschedulable on
// every node even though the cluster has plenty of aggregate headroom — and
// how the speed penalty shrinks the effective capacity the big jobs see, so
// they need extra slack the uniform-speed model hides.

#include <iostream>

#include "qoslb.hpp"

using namespace qoslb;

namespace {

constexpr std::size_t kJobs = 400;
constexpr std::size_t kNodes = 24;
constexpr std::size_t kNewGenNodes = 8;  // nodes [0, 8) are current-gen
constexpr double kOldGenTrainingSpeed = 0.6;

/// Two-generation cluster: big jobs (weight >= 4, i.e. multi-GPU training)
/// run at reduced speed on the 16 old-gen nodes; everything else at 1.0.
WeightedInstance add_node_generations(const WeightedInstance& base) {
  std::vector<double> capacities, requirements;
  std::vector<std::uint32_t> weights;
  std::vector<double> rates(base.num_users() * base.num_resources(), 1.0);
  for (ResourceId r = 0; r < base.num_resources(); ++r)
    capacities.push_back(base.capacity(r));
  for (UserId u = 0; u < base.num_users(); ++u) {
    requirements.push_back(base.requirement(u));
    weights.push_back(base.weight(u));
    if (base.weight(u) >= 4)
      for (ResourceId r = kNewGenNodes; r < base.num_resources(); ++r)
        rates[u * base.num_resources() + r] = kOldGenTrainingSpeed;
  }
  return WeightedInstance(std::move(capacities), std::move(requirements),
                          std::move(weights),
                          RateModel::matrix(base.num_users(),
                                            base.num_resources(),
                                            std::move(rates)));
}

void run_cluster(double slack, bool two_generations,
                 WeightedProtocol& scheduler, std::uint64_t cap,
                 TablePrinter& table) {
  Xoshiro256 rng(2026);
  // 400 jobs over 24 nodes; weights 1/2/4/8 with a Zipf(1.0) mix
  // (mostly small inference jobs, a tail of multi-GPU training runs).
  const WeightedInstance uniform_speed =
      make_weighted_feasible(kJobs, kNodes, slack, /*weight_classes=*/4,
                             /*skew=*/1.0, rng);
  const WeightedInstance cluster =
      two_generations ? add_node_generations(uniform_speed) : uniform_speed;

  // Jobs arrive through one submission queue: everything starts on node 0.
  WeightedState state = WeightedState::all_on(cluster, 0);
  Xoshiro256 run_rng(7);
  EngineConfig config;
  config.max_rounds = cap;
  const EngineResult result = Engine(config).run(scheduler, state, run_rng);

  std::size_t heavy_total = 0, heavy_happy = 0;
  for (UserId job = 0; job < cluster.num_users(); ++job) {
    if (cluster.weight(job) < 8) continue;
    ++heavy_total;
    if (state.satisfied(job)) ++heavy_happy;
  }
  table.cell(scheduler.name())
      .cell(two_generations ? "2-gen" : "uniform")
      .cell(slack)
      .cell(static_cast<unsigned long long>(result.rounds))
      .cell(static_cast<unsigned long long>(result.counters.migrations))
      .cell(static_cast<double>(result.final_satisfied) /
            static_cast<double>(cluster.num_users()))
      .cell(heavy_total == 0
                ? 1.0
                : static_cast<double>(heavy_happy) /
                      static_cast<double>(heavy_total))
      .cell(static_cast<double>(result.final_satisfied_weight) /
            static_cast<double>(cluster.total_weight()))
      .end_row();
}

}  // namespace

int main() {
  std::cout << "GPU cluster: 400 jobs (1/2/4/8 GPUs, Zipf mix), 24 nodes "
               "(8 current-gen, 16 old-gen at 60% training speed),\n"
               "all jobs submitted to node 0\n\n";
  TablePrinter table({"scheduler", "speeds", "slack", "rounds", "migrations",
                      "jobs_in_sla", "8gpu_jobs_in_sla", "gpu_weight_in_sla"});
  for (const double slack : {0.05, 0.15, 0.3, 0.5}) {
    for (const bool two_generations : {false, true}) {
      WeightedAdmissionControl gated;
      run_cluster(slack, two_generations, gated, 100000, table);
      // Ungated optimistic migration for contrast.
      WeightedUniformSampling ungated(0.5);
      run_cluster(slack, two_generations, ungated, 100000, table);
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nThe admission gate sorts requesters by threshold, so big jobs get\n"
      "placed before small ones fill the gaps: full SLA in 1-4 rounds with\n"
      "zero wasted migrations on the uniform-speed cluster. The ungated\n"
      "scheduler needs ~2x the rounds and up to +30% migrations at tight\n"
      "slack — overshoot plus the weighted fragmentation effect that\n"
      "bench/e13_weighted quantifies at larger weight spreads.\n"
      "\n"
      "The 2-gen rows add speeds: training jobs' thresholds shrink 40% on\n"
      "the 16 old nodes, so the effective capacity the 8-GPU jobs see is\n"
      "much smaller than the aggregate — at tight slack they end up out of\n"
      "SLA even when every small job is happy, and only extra slack (or\n"
      "pinning them to current-gen nodes) recovers them. The uniform-speed\n"
      "model cannot express this failure mode at all.\n";
  return 0;
}
