// GPU cluster scheduling — a domain scenario for the weighted-user model.
//
// Jobs request 1, 2, 4, or 8 GPUs (their weight); a node's GPUs are shared
// fairly per requested GPU, so a job is in SLA while the node's total
// committed GPU count stays under its per-job threshold. The example shows
// the fragmentation phenomenon weights introduce: after a wave of small jobs
// lands, an 8-GPU training job can be unschedulable on every node even
// though the cluster has plenty of aggregate headroom — and how much
// headroom (slack) makes the problem disappear.

#include <iostream>

#include "qoslb.hpp"

using namespace qoslb;

namespace {

void run_cluster(double slack, WeightedProtocol& scheduler, std::uint64_t cap,
                 TablePrinter& table) {
  Xoshiro256 rng(2026);
  // 400 jobs over 24 nodes; weights 1/2/4/8 with a Zipf(1.0) mix
  // (mostly small inference jobs, a tail of multi-GPU training runs).
  const WeightedInstance cluster =
      make_weighted_feasible(400, 24, slack, /*weight_classes=*/4,
                             /*skew=*/1.0, rng);

  // Jobs arrive through one submission queue: everything starts on node 0.
  WeightedState state = WeightedState::all_on(cluster, 0);
  Xoshiro256 run_rng(7);
  EngineConfig config;
  config.max_rounds = cap;
  const EngineResult result = Engine(config).run_weighted(scheduler, state, run_rng);

  std::size_t heavy_total = 0, heavy_happy = 0;
  for (UserId job = 0; job < cluster.num_users(); ++job) {
    if (cluster.weight(job) < 8) continue;
    ++heavy_total;
    if (state.satisfied(job)) ++heavy_happy;
  }
  table.cell(scheduler.name())
      .cell(slack)
      .cell(static_cast<unsigned long long>(result.rounds))
      .cell(static_cast<unsigned long long>(result.counters.migrations))
      .cell(static_cast<double>(result.final_satisfied) /
            static_cast<double>(cluster.num_users()))
      .cell(heavy_total == 0
                ? 1.0
                : static_cast<double>(heavy_happy) /
                      static_cast<double>(heavy_total))
      .cell(static_cast<double>(result.final_satisfied_weight) /
            static_cast<double>(cluster.total_weight()))
      .end_row();
}

}  // namespace

int main() {
  std::cout << "GPU cluster: 400 jobs (1/2/4/8 GPUs, Zipf mix), 24 nodes, "
               "all jobs submitted to node 0\n\n";
  TablePrinter table({"scheduler", "slack", "rounds", "migrations",
                      "jobs_in_sla", "8gpu_jobs_in_sla", "gpu_weight_in_sla"});
  for (const double slack : {0.05, 0.15, 0.3, 0.5}) {
    WeightedAdmissionControl gated;
    run_cluster(slack, gated, 100000, table);
    // Ungated optimistic migration for contrast.
    WeightedUniformSampling ungated(0.5);
    run_cluster(slack, ungated, 100000, table);
  }
  table.print(std::cout);
  std::cout <<
      "\nThe admission gate sorts requesters by threshold, so big jobs get\n"
      "placed before small ones fill the gaps: full SLA in 1-4 rounds with\n"
      "zero wasted migrations. The ungated scheduler needs ~2x the rounds\n"
      "and up to +30% migrations at tight slack — overshoot plus the\n"
      "weighted fragmentation effect that bench/e13_weighted quantifies at\n"
      "larger weight spreads.\n";
  return 0;
}
