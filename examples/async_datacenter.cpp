// Asynchronous datacenter admission — the message-passing realization.
//
// No rounds, no global clock: every user and server is an independent agent
// exchanging PROBE / LOAD / MIGRATE-REQUEST / GRANT / REJECT / LEAVE messages
// over a network with random per-message latency (the discrete-event engine
// in src/sim). This is the deployment shape of protocol P4: each server only
// needs a load counter and its residents' thresholds; each client only needs
// its own requirement. The example shows the system quiescing — the event
// queue literally drains when everyone is satisfied — and compares message
// budgets across network-jitter levels.

#include <iostream>

#include "qoslb.hpp"

using namespace qoslb;

int main() {
  Xoshiro256 rng(31);
  const Instance instance = make_uniform_feasible(
      /*n=*/2000, /*m=*/100, /*slack=*/0.25, /*heterogeneity=*/1.5, rng);

  std::cout << "async datacenter: 2000 jobs, 100 servers, all jobs start on "
               "server 0 (rack power-on)\n\n";

  TablePrinter table({"jitter", "virtual_time", "events", "probes",
                      "migrations", "rejects", "all_satisfied"});
  for (const double jitter : {0.0, 0.5, 2.0, 8.0}) {
    EngineConfig config;
    config.seed = 5;
    config.latency_jitter = jitter;
    config.random_start = false;
    const EngineResult result = Engine(config).run_async_admission(instance);
    table.cell(jitter, 2)
        .cell(result.virtual_time, 5)
        .cell(static_cast<unsigned long long>(result.events))
        .cell(static_cast<unsigned long long>(result.counters.probes))
        .cell(static_cast<unsigned long long>(result.counters.migrations))
        .cell(static_cast<unsigned long long>(result.counters.rejects))
        .cell(result.all_satisfied ? "yes" : "no")
        .end_row();
  }
  table.print(std::cout);

  std::cout << "\nHigher jitter stretches virtual time but the protocol's\n"
               "message budget stays flat: correctness never depended on\n"
               "synchrony, only the schedule does.\n";
  return 0;
}
