// CDN edge offload — a domain scenario for heterogeneous capacities, QoS
// classes, and restricted assignment.
//
// A metro region has a handful of big edge PoPs and many small cache boxes
// (capacities 8:2:1). Viewers stream at one of three bitrates (the QoS
// classes); a viewer is happy while its server's per-viewer bandwidth share
// covers its bitrate. The small boxes cache only the HD/FHD renditions, so
// 4K viewers simply cannot be served there — a rate of 0, i.e. a restricted-
// assignment instance (docs/heterogeneity.md): the 4K population competes
// for the 8 big-and-mid servers only. The example runs a flash crowd: after
// the region converges, a wave of new 4K viewers arrives concentrated on one
// PoP, and we watch the distributed adaptive protocol re-absorb them within
// the servers they can reach — no central load balancer anywhere.

#include <iostream>
#include <string>

#include "qoslb.hpp"

using namespace qoslb;

namespace {

struct Region {
  std::vector<double> capacities;   // Gbps per server
  std::vector<double> bitrates;     // Gbps per viewer
  std::vector<const char*> tier_of; // parallel to bitrates, for reporting
};

Region build_region(std::size_t viewers, Xoshiro256& rng) {
  Region region;
  // 2 big PoPs (80 Gbps), 6 mid caches (20 Gbps), 16 small boxes (10 Gbps).
  for (int i = 0; i < 2; ++i) region.capacities.push_back(80.0);
  for (int i = 0; i < 6; ++i) region.capacities.push_back(20.0);
  for (int i = 0; i < 16; ++i) region.capacities.push_back(10.0);

  // Viewer mix: 60% HD (5 Mbps), 30% FHD (10 Mbps), 10% 4K (25 Mbps).
  for (std::size_t v = 0; v < viewers; ++v) {
    const double coin = uniform_real(rng);
    if (coin < 0.6) {
      region.bitrates.push_back(0.005);
      region.tier_of.push_back("HD");
    } else if (coin < 0.9) {
      region.bitrates.push_back(0.010);
      region.tier_of.push_back("FHD");
    } else {
      region.bitrates.push_back(0.025);
      region.tier_of.push_back("4K");
    }
  }
  return region;
}

/// Rate matrix: everyone at full rate on the 8 big/mid servers; 4K viewers
/// at rate 0 on the 16 small boxes (no 4K rendition cached there).
RateModel build_rates(const Region& region) {
  const std::size_t servers = region.capacities.size();
  std::vector<double> rates(region.bitrates.size() * servers, 1.0);
  for (std::size_t v = 0; v < region.bitrates.size(); ++v)
    if (std::string(region.tier_of[v]) == "4K")
      for (std::size_t s = 8; s < servers; ++s) rates[v * servers + s] = 0.0;
  return RateModel::matrix(region.bitrates.size(), servers, std::move(rates));
}

void report(const char* phase, const Instance& inst, const State& state,
            const Region& region) {
  std::size_t happy = 0, happy_4k = 0, total_4k = 0;
  for (UserId u = 0; u < inst.num_users(); ++u) {
    const bool is_4k = std::string(region.tier_of[u]) == "4K";
    total_4k += is_4k;
    if (state.satisfied(u)) {
      ++happy;
      happy_4k += is_4k;
    }
  }
  std::cout << phase << ": " << happy << "/" << inst.num_users()
            << " viewers in SLA (" << happy_4k << "/" << total_4k
            << " of the 4K viewers), peak server load " << state.max_load()
            << "\n";
}

}  // namespace

int main() {
  Xoshiro256 rng(7);
  Region region = build_region(12000, rng);
  Instance instance(region.capacities, region.bitrates, build_rates(region));

  // Day starts: viewers attach to arbitrary servers (DNS round-robin-ish;
  // 4K viewers only land where the rendition exists).
  State state = State::random(instance, rng);
  report("before balancing", instance, state, region);

  ProtocolSpec spec;
  spec.kind = "adaptive";
  auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50000;
  Engine engine(config);
  EngineResult result = engine.run(*protocol, state, rng);
  std::cout << "  ... adaptive sampling converged in " << result.rounds
            << " rounds, " << result.counters.migrations << " migrations\n";
  report("steady state", instance, state, region);

  // Flash crowd: 4000 extra 4K viewers land on PoP 0 (a live event).
  const std::size_t old_n = instance.num_users();
  std::vector<ResourceId> assignment(old_n + 4000);
  for (UserId u = 0; u < old_n; ++u) assignment[u] = state.resource_of(u);
  for (std::size_t v = 0; v < 4000; ++v) {
    region.bitrates.push_back(0.025);
    region.tier_of.push_back("4K");
    assignment[old_n + v] = 0;
  }
  Instance crowd_instance(region.capacities, region.bitrates,
                          build_rates(region));
  State crowd_state(crowd_instance, std::move(assignment));
  report("flash crowd hits PoP 0", crowd_instance, crowd_state, region);

  auto crowd_protocol = make_protocol(spec);
  result = engine.run(*crowd_protocol, crowd_state, rng);
  std::cout << "  ... re-converged in " << result.rounds << " rounds, "
            << result.counters.migrations << " migrations\n";
  report("after re-balancing", crowd_instance, crowd_state, region);

  // Per-tier summary table.
  TablePrinter table({"tier", "viewers", "in_sla", "fraction"});
  for (const char* tier : {"HD", "FHD", "4K"}) {
    std::size_t total = 0, happy = 0;
    for (UserId u = 0; u < crowd_instance.num_users(); ++u) {
      if (std::string(region.tier_of[u]) != tier) continue;
      ++total;
      if (crowd_state.satisfied(u)) ++happy;
    }
    table.cell(tier)
        .cell(static_cast<long long>(total))
        .cell(static_cast<long long>(happy))
        .cell(total == 0 ? 1.0 : static_cast<double>(happy) / total)
        .end_row();
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
