// Wireless channel selection — a domain scenario for topology-restricted
// sampling.
//
// Access points are laid out on an 8×8 grid (wrap-around torus of 64 cells);
// a client can only roam to APs adjacent to its current cell. Each AP's
// airtime is shared among its associated clients; a client is in SLA while
// its airtime share covers its traffic class. The example contrasts the
// torus-restricted protocol with the hypothetical "any AP reachable"
// baseline on the same workload, and demonstrates the locality trap: a
// stadium-exit burst (everyone at one AP) is fully absorbed under global
// reach but strands most clients under neighbor-only roaming.

#include <iostream>
#include <string>

#include "qoslb.hpp"

using namespace qoslb;

namespace {

struct Outcome {
  std::uint64_t rounds = 0;
  std::uint64_t migrations = 0;
  double satisfied_frac = 0.0;
};

Outcome run_case(const Instance& instance, const Graph* graph,
                 bool concentrated, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  State state = concentrated ? State::all_on(instance, 0)
                             : State::random(instance, rng);
  ProtocolSpec spec;
  if (graph != nullptr) {
    spec.kind = "nbr-admission";
    spec.graph = graph;
  } else {
    spec.kind = "admission";
  }
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  return Outcome{result.rounds, result.counters.migrations,
                 static_cast<double>(result.final_satisfied) /
                     static_cast<double>(instance.num_users())};
}

}  // namespace

int main() {
  constexpr std::size_t kClients = 1500;
  constexpr std::size_t kAccessPoints = 64;
  const Graph torus = make_torus(8, 8);

  Xoshiro256 gen_rng(11);
  const Instance instance =
      make_uniform_feasible(kClients, kAccessPoints, /*slack=*/0.2,
                            /*heterogeneity=*/1.4, gen_rng);

  std::cout << "wireless scenario: " << kClients << " clients, "
            << kAccessPoints << " APs on an 8x8 torus\n\n";

  TablePrinter table({"workload", "roaming", "rounds", "migrations",
                      "in_sla_frac"});
  struct Case {
    const char* workload;
    const char* roaming;
    const Graph* graph;
    bool concentrated;
  };
  const Case cases[] = {
      {"evening mix (random)", "neighbors-only", &torus, false},
      {"evening mix (random)", "any-AP", nullptr, false},
      {"stadium exit (burst)", "neighbors-only", &torus, true},
      {"stadium exit (burst)", "any-AP", nullptr, true},
  };
  for (const Case& c : cases) {
    const Outcome outcome = run_case(instance, c.graph, c.concentrated, 99);
    table.cell(c.workload)
        .cell(c.roaming)
        .cell(static_cast<long long>(outcome.rounds))
        .cell(static_cast<long long>(outcome.migrations))
        .cell(outcome.satisfied_frac)
        .end_row();
  }
  table.print(std::cout);

  std::cout << "\nThe burst row shows the locality trap: with neighbor-only\n"
               "roaming, the APs adjacent to the stadium fill up and become\n"
               "barriers (satisfied clients do not move), so most of the\n"
               "crowd stays stranded; global reach absorbs everyone.\n";
  return 0;
}
