// Wireless channel selection — a domain scenario for restricted assignment.
//
// Access points are laid out on an 8×8 grid (wrap-around torus of 64 cells),
// one AP per cell. A client physically hears only the APs near it: its home
// cell at full PHY rate and the four adjacent cells at half rate — a sparse
// bipartite access graph (docs/heterogeneity.md), not a roaming policy. Each
// AP's airtime is shared among its associated clients; a client is in SLA
// while its airtime share covers its traffic class, so the half-rate
// neighbors satisfy only half as many clients. The example contrasts the
// radio-limited instance with the hypothetical "any AP reachable" baseline
// on the same workload, and demonstrates the locality trap: a stadium-exit
// burst (every client's home cell in one corner) is fully absorbed under
// global reach but strands most of the crowd when clients can only reach the
// dozen APs they actually hear.

#include <array>
#include <iostream>

#include "qoslb.hpp"

using namespace qoslb;

namespace {

constexpr std::size_t kClients = 1500;
constexpr std::size_t kSide = 8;                  // 8×8 torus of cells
constexpr std::size_t kAccessPoints = kSide * kSide;
// Clients per AP at full rate; the half-rate neighbors take 30. The evening
// mix (~23 clients/cell on average) fits under both, so overflow cells can
// spill; the stadium burst cannot.
constexpr double kHomeThreshold = 60.0;

std::array<ResourceId, 4> torus_neighbors(ResourceId cell) {
  const std::size_t row = cell / kSide, col = cell % kSide;
  const auto id = [](std::size_t r, std::size_t c) {
    return static_cast<ResourceId>((r % kSide) * kSide + c % kSide);
  };
  return {id(row + kSide - 1, col), id(row + 1, col), id(row, col + kSide - 1),
          id(row, col + 1)};
}

/// Radio-limited instance: home AP at rate 1.0, the four adjacent APs at
/// rate 0.5 (half PHY rate at distance), everything else out of range.
Instance build_radio_instance(const std::vector<ResourceId>& home) {
  std::vector<RateEdge> edges;
  for (UserId u = 0; u < home.size(); ++u) {
    edges.push_back({u, home[u], 1.0});
    for (const ResourceId nbr : torus_neighbors(home[u]))
      edges.push_back({u, nbr, 0.5});
  }
  return Instance(std::vector<double>(kAccessPoints, 1.0),
                  std::vector<double>(home.size(), 1.0 / kHomeThreshold),
                  RateModel::bipartite(home.size(), kAccessPoints,
                                       std::move(edges)));
}

/// Ideal-radio baseline: every AP reachable at full rate.
Instance build_ideal_instance(std::size_t clients) {
  return Instance(std::vector<double>(kAccessPoints, 1.0),
                  std::vector<double>(clients, 1.0 / kHomeThreshold));
}

struct Outcome {
  std::uint64_t rounds = 0;
  std::uint64_t migrations = 0;
  double satisfied_frac = 0.0;
};

Outcome run_case(const Instance& instance, const std::vector<ResourceId>& home,
                 std::uint64_t seed) {
  // Every client starts associated with its home AP.
  State state(instance, std::vector<ResourceId>(home));
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 100000;
  Xoshiro256 rng(seed);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  return Outcome{result.rounds, result.counters.migrations,
                 static_cast<double>(result.final_satisfied) /
                     static_cast<double>(instance.num_users())};
}

}  // namespace

int main() {
  std::cout << "wireless scenario: " << kClients << " clients, "
            << kAccessPoints << " APs on an 8x8 torus, radio reach = home "
               "cell (full rate) + 4 neighbors (half rate)\n\n";

  // Evening mix: home cells spread uniformly. Stadium exit: everyone's home
  // cell is in the 2x2 corner around the stadium.
  Xoshiro256 rng(11);
  std::vector<ResourceId> evening(kClients), stadium(kClients);
  const std::array<ResourceId, 4> corner = {0, 1, kSide, kSide + 1};
  for (UserId u = 0; u < kClients; ++u) {
    evening[u] = static_cast<ResourceId>(uniform_u64_below(rng, kAccessPoints));
    stadium[u] = corner[uniform_u64_below(rng, corner.size())];
  }

  TablePrinter table({"workload", "radio", "rounds", "migrations",
                      "in_sla_frac"});
  struct Case {
    const char* workload;
    const char* radio;
    const std::vector<ResourceId>* home;
    bool limited;
  };
  const Case cases[] = {
      {"evening mix (spread)", "radio-limited", &evening, true},
      {"evening mix (spread)", "any-AP", &evening, false},
      {"stadium exit (burst)", "radio-limited", &stadium, true},
      {"stadium exit (burst)", "any-AP", &stadium, false},
  };
  for (const Case& c : cases) {
    const Instance instance = c.limited ? build_radio_instance(*c.home)
                                        : build_ideal_instance(kClients);
    const Outcome outcome = run_case(instance, *c.home, 99);
    table.cell(c.workload)
        .cell(c.radio)
        .cell(static_cast<long long>(outcome.rounds))
        .cell(static_cast<long long>(outcome.migrations))
        .cell(outcome.satisfied_frac)
        .end_row();
  }
  table.print(std::cout);

  std::cout << "\nThe burst row shows the locality trap: the stadium crowd\n"
               "can only hear the corner APs and their half-rate neighbors —\n"
               "a dozen APs whose combined thresholds absorb a fraction of\n"
               "the crowd — so most clients stay stranded no matter how long\n"
               "the protocol runs. The any-AP baseline (physically\n"
               "impossible) absorbs everyone; the gap is the price of radio\n"
               "reach, not of the protocol.\n";
  return 0;
}
