// Quickstart: the whole public API in ~60 lines.
//
//   1. Describe an instance: resource capacities + user QoS requirements.
//   2. Pick an initial state and a protocol.
//   3. Run to convergence and inspect the result.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "qoslb.hpp"

using namespace qoslb;

int main() {
  // 200 users, 10 servers. Each server serves quality capacity/load; a user
  // with requirement q is satisfied when capacity/load >= q. The generator
  // builds a feasible instance with 10% headroom.
  Xoshiro256 rng(2024);
  const Instance instance = make_uniform_feasible(
      /*n=*/200, /*m=*/10, /*slack=*/0.1, /*heterogeneity=*/1.5, rng);

  // Worst-case start: everyone piled onto server 0.
  State state = State::all_on(instance, 0);
  std::cout << "start: " << state.count_unsatisfied() << "/"
            << instance.num_users() << " users unsatisfied\n";

  // The admission-gated sampling protocol (P4): unsatisfied users probe a
  // random server each round; servers grant only what keeps everyone happy.
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);

  EngineConfig config;
  config.record_trajectory = true;
  const EngineResult result = Engine(config).run(*protocol, state, rng);

  std::cout << "protocol " << protocol->name() << " converged after "
            << result.rounds << " rounds, "
            << result.counters.migrations << " migrations, "
            << result.counters.messages() << " messages\n";
  std::cout << "all satisfied: " << (result.all_satisfied ? "yes" : "no")
            << ", equilibrium: "
            << (is_satisfaction_equilibrium(state) ? "yes" : "no") << "\n\n";

  TablePrinter table({"round", "unsatisfied"});
  table.cell(0LL).cell(static_cast<long long>(instance.num_users())).end_row();
  for (std::size_t i = 0; i < result.unsatisfied_trajectory.size(); ++i)
    table.cell(static_cast<long long>(i + 1))
        .cell(static_cast<long long>(result.unsatisfied_trajectory[i]))
        .end_row();
  table.print(std::cout);
  return 0;
}
