// util/json.hpp — the minimal JSON reader behind the bench regression gate.

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

namespace qoslb::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesNestedStructure) {
  const Value doc = parse(R"({
    "bench": "e23_soa_scaling",
    "rows": [
      {"mode": "dense", "threads": 1, "users_per_sec": 1.25e8, "ok": true},
      {"mode": "dense", "threads": 8}
    ]
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("bench")->as_string(), "e23_soa_scaling");
  const Value& rows = *doc.find("rows");
  ASSERT_EQ(rows.items().size(), 2u);
  EXPECT_DOUBLE_EQ(rows.items()[0].find("users_per_sec")->as_number(), 1.25e8);
  EXPECT_TRUE(rows.items()[0].find("ok")->as_bool());
  EXPECT_EQ(rows.items()[1].find("users_per_sec"), nullptr);
}

TEST(Json, MemberOrderIsPreserved) {
  const Value doc = parse(R"({"b": 1, "a": 2, "c": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "c");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\": 1,}"), std::invalid_argument);
  EXPECT_THROW(parse("nul"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("1 2"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
  EXPECT_THROW(parse("--1"), std::invalid_argument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse("{\n  \"a\": ?\n}");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(Json, TypedAccessorsRejectWrongKinds) {
  EXPECT_THROW(parse("1").as_string(), std::invalid_argument);
  EXPECT_THROW(parse("\"x\"").as_number(), std::invalid_argument);
  EXPECT_THROW(parse("[1]").members(), std::invalid_argument);
  EXPECT_THROW(parse("{}").items(), std::invalid_argument);
  EXPECT_THROW(parse("3").find("a"), std::invalid_argument);
}

TEST(Json, ParseFileRoundTripsAndPrefixesErrors) {
  const std::string path = ::testing::TempDir() + "qoslb_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"rows": [{"threads": 4}]})";
  }
  const Value doc = parse_file(path);
  EXPECT_DOUBLE_EQ(
      doc.find("rows")->items()[0].find("threads")->as_number(), 4.0);

  EXPECT_THROW(parse_file(path + ".does-not-exist"), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "{broken";
  }
  try {
    parse_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace qoslb::json
