#include "core/satisfaction.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/potential.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(SatisfiedAfterMove, CountsTheMoverAtTheDestination) {
  // Thresholds: both users 1.
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0});
  const State state(inst, {0, 0});
  // Moving user 0 to resource 1 gives load 1 there: satisfied.
  EXPECT_TRUE(satisfied_after_move(state, 0, 1));
  // "Moving" to its own resource keeps load 2: unsatisfied.
  EXPECT_FALSE(satisfied_after_move(state, 0, 0));
}

TEST(SatisfiedAfterMove, FullDestinationRejected) {
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  const State state(inst, {0, 0, 1});
  // Resource 1 already has load 1; arriving makes 2 > threshold 1.
  EXPECT_FALSE(satisfied_after_move(state, 0, 1));
}

TEST(HasSatisfyingDeviation, FindsFreeResource) {
  const Instance inst = Instance::identical(3, 1.0, {1.0, 1.0});
  const State state(inst, {0, 0});
  EXPECT_TRUE(has_satisfying_deviation(state, 0));
}

TEST(HasSatisfyingDeviation, NoneWhenEverythingFull) {
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  const State state(inst, {0, 0, 1});
  EXPECT_FALSE(has_satisfying_deviation(state, 0));  // resource 1 is full
}

TEST(BestSatisfyingDeviation, PicksHighestQuality) {
  // Capacities 1 and 4: resource 1 offers better post-move quality.
  const Instance inst({1.0, 4.0, 1.0}, {0.9, 0.9, 0.9});
  // user 0 and 1 on resource 2 (load 2 > threshold 1 there).
  const State state(inst, {2, 2, 1});
  // Moving to resource 1: load 2, quality 2. Moving to resource 0: load 1,
  // quality 1. Both satisfy; quality prefers resource 1.
  EXPECT_EQ(best_satisfying_deviation(state, 0), 1u);
}

TEST(BestSatisfyingDeviation, ReturnsNoResourceWhenStuck) {
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  const State state(inst, {0, 0, 1});
  EXPECT_EQ(best_satisfying_deviation(state, 0), kNoResource);
}

TEST(Equilibrium, AllSatisfiedIsStable) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  const State state(inst, {0, 1});
  EXPECT_TRUE(is_satisfaction_equilibrium(state));
}

TEST(Equilibrium, UnsatisfiedWithEscapeIsUnstable) {
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0});
  const State state(inst, {0, 0});
  EXPECT_FALSE(is_satisfaction_equilibrium(state));
}

TEST(Equilibrium, StuckUnsatisfiedIsStable) {
  // Three users threshold 1 on two resources: someone is always stuck.
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  const State state(inst, {0, 0, 1});
  EXPECT_TRUE(is_satisfaction_equilibrium(state));
}

TEST(Equilibrium, SingleResourceInstance) {
  const Instance inst = Instance::identical(1, 1.0, {1.0, 1.0});
  const State state(inst, {0, 0});
  EXPECT_TRUE(is_satisfaction_equilibrium(state));  // nowhere to go
}

TEST(Equilibrium, FastPathMatchesNaiveScan) {
  // Property check: for random identical-capacity states, the O(n+m) fast
  // path must agree with the definitional O(n·m) scan.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + uniform_u64_below(rng, 12);
    const std::size_t m = 2 + uniform_u64_below(rng, 4);
    std::vector<double> reqs(n);
    for (auto& q : reqs)
      q = 1.0 / static_cast<double>(1 + uniform_u64_below(rng, 5));
    const Instance inst = Instance::identical(m, 1.0, std::move(reqs));
    State state = State::random(inst, rng);

    bool naive = true;
    for (UserId u = 0; u < state.num_users() && naive; ++u)
      if (!state.satisfied(u) && has_satisfying_deviation(state, u)) naive = false;

    EXPECT_EQ(is_satisfaction_equilibrium(state), naive) << "trial=" << trial;
  }
}

TEST(UnsatisfiedUsers, ListsExactlyTheUnsatisfied) {
  const Instance inst = Instance::identical(2, 1.0, {0.4, 1.0, 1.0});
  const State state(inst, {0, 0, 1});  // loads 2,1; thresholds 2,1,1
  const auto list = unsatisfied_users(state);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], 1u);
}

// ---- potentials ----

TEST(Potential, RosenthalKnownValue) {
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(3, 0.5));
  const State state(inst, {0, 0, 1});
  // Resource 0: 1+2 = 3; resource 1: 1. Total 4.
  EXPECT_DOUBLE_EQ(rosenthal_potential(state), 4.0);
}

TEST(Potential, RosenthalDecreasesOnBalancingMove) {
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(4, 0.25));
  State state = State::all_on(inst, 0);
  const double before = rosenthal_potential(state);
  state.move(0, 1);
  EXPECT_LT(rosenthal_potential(state), before);
}

TEST(Potential, RosenthalScalesWithCapacity) {
  const Instance inst({2.0}, {1.0, 1.0});
  const State state = State::all_on(inst, 0);
  EXPECT_DOUBLE_EQ(rosenthal_potential(state), 1.5);  // (1+2)/2
}

TEST(Potential, QualityDeficitZeroIffAllSatisfied) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  const State balanced(inst, {0, 1});
  EXPECT_DOUBLE_EQ(quality_deficit(balanced), 0.0);
  const State crowded(inst, {0, 0});
  EXPECT_DOUBLE_EQ(quality_deficit(crowded), 0.0);  // 1/2 == requirement
  const Instance tight = Instance::identical(2, 1.0, {1.0, 1.0});
  const State bad(tight, {0, 0});
  EXPECT_DOUBLE_EQ(quality_deficit(bad), 1.0);  // each misses by 0.5
}

TEST(Potential, LoadVarianceZeroWhenBalanced) {
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(4, 0.5));
  EXPECT_DOUBLE_EQ(load_variance(State(inst, {0, 0, 1, 1})), 0.0);
  EXPECT_GT(load_variance(State::all_on(inst, 0)), 0.0);
}

}  // namespace
}  // namespace qoslb
