#include <gtest/gtest.h>

#include <memory>

#include "core/generators.hpp"
#include "core/protocols/adaptive_sampling.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/berenbrink.hpp"
#include "core/protocols/common.hpp"
#include "core/protocols/neighborhood_sampling.hpp"
#include "core/protocols/registry.hpp"
#include "core/protocols/sequential_best_response.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "core/engine.hpp"
#include "net/generators.hpp"

namespace qoslb {
namespace {

/// Shared fixture pieces: a generously slack feasible instance where every
/// satisfaction protocol must reach full satisfaction.
struct Scenario {
  Scenario(std::size_t n, std::size_t m, double slack, std::uint64_t seed)
      : rng(seed), instance(make_uniform_feasible(n, m, slack, 1.5, rng)),
        state(State::random(instance, rng)) {}
  Xoshiro256 rng;
  Instance instance;
  State state;
};

// ---- cross-protocol convergence (parameterized over registry kinds) ----

class SatisfactionProtocol : public ::testing::TestWithParam<const char*> {};

TEST_P(SatisfactionProtocol, ConvergesToFullSatisfactionOnSlackInstance) {
  Scenario s(200, 10, 0.5, 1234);
  ProtocolSpec spec;
  spec.kind = GetParam();
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 200000;
  const EngineResult result = Engine(config).run(*protocol, s.state, s.rng);
  EXPECT_TRUE(result.converged) << protocol->name();
  EXPECT_TRUE(result.all_satisfied) << protocol->name();
  s.state.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Kinds, SatisfactionProtocol,
                         ::testing::Values("seq-br", "seq-br-rr", "uniform",
                                           "adaptive", "admission"));

class SeededConvergence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(SeededConvergence, DeterministicGivenSeed) {
  const auto [kind, seed] = GetParam();
  ProtocolSpec spec;
  spec.kind = kind;
  spec.lambda = 0.5;

  auto run_once = [&] {
    Scenario s(100, 8, 0.5, seed);
    const auto protocol = make_protocol(spec);
    EngineConfig config;
    config.max_rounds = 100000;
    return Engine(config).run(*protocol, s.state, s.rng).rounds;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, SeededConvergence,
    ::testing::Combine(::testing::Values("uniform", "adaptive", "admission"),
                       ::testing::Values(1ull, 2ull, 3ull)));

// ---- sequential best response ----

TEST(SequentialBestResponse, OneMovePerStep) {
  Scenario s(50, 5, 0.5, 7);
  SequentialBestResponse protocol;
  Counters counters;
  // From a random start at least one user is typically unsatisfied; a single
  // step may migrate at most one user.
  protocol.step(s.state, s.rng, counters);
  EXPECT_LE(counters.migrations, 1u);
}

TEST(SequentialBestResponse, NoOpOnceAllSatisfied) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(1);
  SequentialBestResponse protocol;
  Counters counters;
  protocol.step(state, rng, counters);
  EXPECT_EQ(counters.migrations, 0u);
}

TEST(SequentialBestResponse, MovesToBestQualityTarget) {
  const Instance inst({1.0, 4.0, 1.0}, {0.9, 0.9, 0.9});
  State state(inst, {2, 2, 1});
  Xoshiro256 rng(1);
  SequentialBestResponse protocol;
  Counters counters;
  protocol.step(state, rng, counters);
  EXPECT_EQ(counters.migrations, 1u);
  // The mover must have chosen resource 1 (quality 2 beats quality 1).
  EXPECT_GE(state.load(1), 2);
}

// ---- uniform sampling ----

TEST(UniformSampling, RejectsBadParameters) {
  EXPECT_THROW(UniformSampling(0.0), std::invalid_argument);
  EXPECT_THROW(UniformSampling(1.5), std::invalid_argument);
  EXPECT_THROW(UniformSampling(0.5, 0), std::invalid_argument);
}

TEST(UniformSampling, SatisfiedUsersNeverMove) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(1);
  UniformSampling protocol(1.0);
  Counters counters;
  for (int i = 0; i < 10; ++i) protocol.step(state, rng, counters);
  EXPECT_EQ(counters.migrations, 0u);
  EXPECT_EQ(counters.probes, 0u);
}

TEST(UniformSampling, UndampedFullScanOscillatesOnHerdingInstance) {
  // E5's anomaly: with λ=1 and enough probes to always spot the other
  // resource, the whole unsatisfied population stampedes back and forth.
  const Instance inst = make_herding(100);
  State state = State::all_on(inst, 0);
  Xoshiro256 rng(3);
  UniformSampling protocol(1.0, /*probes=*/8);
  EngineConfig config;
  config.max_rounds = 300;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(state.count_unsatisfied(), 20u);
}

TEST(UniformSampling, DampingTamesHerding) {
  const Instance inst = make_herding(100);
  State state = State::all_on(inst, 0);
  Xoshiro256 rng(3);
  UniformSampling protocol(0.3, /*probes=*/8);
  EngineConfig config;
  config.max_rounds = 10000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

TEST(UniformSampling, NameEncodesParameters) {
  EXPECT_EQ(UniformSampling(0.5).name(), "uniform(lambda=0.5)");
  EXPECT_EQ(UniformSampling(1.0, 4).name(), "uniform(lambda=1,k=4)");
}

// ---- adaptive sampling ----

TEST(AdaptiveSampling, ConvergesOnHerdingWithoutTuning) {
  const Instance inst = make_herding(100);
  State state = State::all_on(inst, 0);
  Xoshiro256 rng(5);
  AdaptiveSampling protocol;
  EngineConfig config;
  config.max_rounds = 20000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

TEST(AdaptiveSampling, ResetClearsContentionState) {
  Scenario s(60, 6, 0.5, 11);
  AdaptiveSampling protocol;
  Counters counters;
  protocol.step(s.state, s.rng, counters);
  protocol.reset();
  // After reset the protocol behaves identically on an identical scenario.
  Scenario s2(60, 6, 0.5, 11);
  AdaptiveSampling fresh;
  Counters counters2;
  Xoshiro256 rng_a(99), rng_b(99);
  protocol.step(s2.state, rng_a, counters2);
  Scenario s3(60, 6, 0.5, 11);
  Counters counters3;
  fresh.step(s3.state, rng_b, counters3);
  EXPECT_EQ(counters2.migrations, counters3.migrations);
}

// ---- admission control ----

TEST(AdmissionControl, SatisfiedCountNeverDecreases) {
  // The central monotonicity property of the gated protocol.
  Scenario s(120, 8, 0.3, 17);
  AdmissionControl protocol;
  Counters counters;
  std::size_t satisfied = s.state.count_satisfied();
  for (int round = 0; round < 200; ++round) {
    protocol.step(s.state, s.rng, counters);
    const std::size_t now = s.state.count_satisfied();
    ASSERT_GE(now, satisfied) << "round " << round;
    satisfied = now;
  }
  s.state.check_invariants();
}

TEST(AdmissionControl, GrantsPlusRejectsEqualRequests) {
  Scenario s(80, 8, 0.4, 23);
  AdmissionControl protocol;
  Counters counters;
  for (int round = 0; round < 50; ++round)
    protocol.step(s.state, s.rng, counters);
  EXPECT_EQ(counters.grants + counters.rejects, counters.migrate_requests);
  EXPECT_EQ(counters.grants, counters.migrations);
}

TEST(AdmissionControl, NeverOvershootsAdmittedThresholds) {
  // After every admission round, every user that was satisfied before the
  // round is still satisfied (spot-check of the gate).
  Scenario s(100, 5, 0.2, 29);
  AdmissionControl protocol;
  Counters counters;
  for (int round = 0; round < 100; ++round) {
    std::vector<bool> was_satisfied(s.state.num_users());
    for (UserId u = 0; u < s.state.num_users(); ++u)
      was_satisfied[u] = s.state.satisfied(u);
    protocol.step(s.state, s.rng, counters);
    for (UserId u = 0; u < s.state.num_users(); ++u)
      if (was_satisfied[u]) {
        ASSERT_TRUE(s.state.satisfied(u)) << "u=" << u;
      }
  }
}

// ---- admission helper unit behaviour ----

TEST(ApplyWithAdmission, AdmitsThresholdDescendingPrefix) {
  // Resource 1 empty; requesters with thresholds 3, 2, 1: admitting all three
  // would put load 3 above the threshold-1 and threshold-2 users, so the
  // gate admits exactly the prefix {3, 2} (final load 2).
  const Instance inst = Instance::identical(2, 1.0, {1.0 / 3, 0.5, 1.0});
  State state(inst, {0, 0, 0});
  Counters counters;
  std::vector<MigrationRequest> requests = {{0, 1}, {1, 1}, {2, 1}};
  apply_with_admission(state, requests, counters);
  EXPECT_EQ(counters.grants, 2u);
  EXPECT_EQ(counters.rejects, 1u);
  EXPECT_EQ(state.load(1), 2);
  EXPECT_TRUE(state.satisfied(0));
  EXPECT_TRUE(state.satisfied(1));
  EXPECT_TRUE(state.satisfied(2));  // rejected but alone on resource 0 now
}

TEST(ApplyWithAdmission, SatisfiedResidentGatesAdmission) {
  // Resource 1 holds a satisfied resident with threshold 1: nobody may join.
  const Instance inst = Instance::identical(2, 1.0, {0.5, 1.0});
  State state(inst, {0, 1});
  Counters counters;
  std::vector<MigrationRequest> requests = {{0, 1}};
  apply_with_admission(state, requests, counters);
  EXPECT_EQ(counters.grants, 0u);
  EXPECT_EQ(counters.rejects, 1u);
  EXPECT_EQ(state.load(1), 1);
}

TEST(ApplyWithAdmission, UnsatisfiedResidentDoesNotGate) {
  // Resource 1 holds two users with threshold 1 (both unsatisfied). A
  // requester with a large threshold may still join.
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 0.2});
  State state(inst, {1, 1, 0});
  Counters counters;
  std::vector<MigrationRequest> requests = {{2, 1}};
  apply_with_admission(state, requests, counters);
  EXPECT_EQ(counters.grants, 1u);
  EXPECT_EQ(state.load(1), 3);
}

// ---- neighborhood sampling ----

TEST(NeighborhoodSampling, ConvergesOnRing) {
  Xoshiro256 rng(31);
  const Instance inst = make_uniform_feasible(120, 12, 0.5, 1.0, rng);
  const Graph ring = make_ring(12);
  State state = State::random(inst, rng);
  NeighborhoodSampling protocol(ring, NeighborhoodSampling::Commit::kAdmission);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

TEST(NeighborhoodSampling, OnlyMovesAlongEdges) {
  Xoshiro256 rng(37);
  const Instance inst = make_uniform_feasible(40, 8, 0.5, 1.0, rng);
  const Graph ring = make_ring(8);
  State state = State::all_on(inst, 0);
  std::vector<ResourceId> before(40);
  for (UserId u = 0; u < 40; ++u) before[u] = state.resource_of(u);
  NeighborhoodSampling protocol(ring, NeighborhoodSampling::Commit::kOptimistic, 0.5);
  Counters counters;
  protocol.step(state, rng, counters);
  for (UserId u = 0; u < 40; ++u) {
    const ResourceId now = state.resource_of(u);
    if (now != before[u]) {
      EXPECT_TRUE(ring.has_edge(before[u], now));
    }
  }
}

TEST(NeighborhoodSampling, StabilityIsNeighborhoodRelative) {
  // Users stuck on a vertex whose neighbors are full are stable even though a
  // two-hop resource is free.
  const Instance inst = Instance::identical(3, 1.0, {1.0, 1.0, 1.0});
  const Graph path = make_path(3);
  // Users 0,1 on vertex 0; user 2 on vertex 1 (full). Vertex 2 is free but
  // not adjacent to vertex 0.
  State state(inst, {0, 0, 1});
  NeighborhoodSampling protocol(path, NeighborhoodSampling::Commit::kAdmission);
  EXPECT_TRUE(protocol.is_stable(state));
  // The complete graph version is NOT stable (vertex 2 reachable).
  AdmissionControl full;
  EXPECT_FALSE(full.is_stable(state));
}

TEST(NeighborhoodSampling, GraphSizeMismatchThrows) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(10, 5, 0.5, 1.0, rng);
  const Graph ring = make_ring(4);
  State state = State::random(inst, rng);
  NeighborhoodSampling protocol(ring, NeighborhoodSampling::Commit::kOptimistic);
  Counters counters;
  EXPECT_THROW(protocol.step(state, rng, counters), std::invalid_argument);
}

// ---- Berenbrink balancing ----

TEST(Berenbrink, BalancesIdenticalResources) {
  Xoshiro256 rng(41);
  const Instance inst = Instance::identical(8, 1.0, std::vector<double>(256, 1e-3));
  State state = State::all_on(inst, 0);
  BerenbrinkBalancing protocol;
  EngineConfig config;
  config.max_rounds = 20000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(state.max_load() - state.min_load(), 1);
}

TEST(Berenbrink, StabilityIsNashNotSatisfaction) {
  // Perfectly balanced but nobody satisfied: Nash-stable for balancing.
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(4, 1.0));
  const State state(inst, {0, 0, 1, 1});
  BerenbrinkBalancing protocol;
  EXPECT_TRUE(protocol.is_stable(state));
  EXPECT_EQ(state.count_satisfied(), 0u);
}

// ---- registry ----

TEST(Registry, BuildsEveryAdvertisedKind) {
  const Graph ring = make_ring(4);
  for (const std::string& kind : protocol_kinds()) {
    ProtocolSpec spec;
    spec.kind = kind;
    spec.graph = &ring;
    const auto protocol = make_protocol(spec);
    ASSERT_NE(protocol, nullptr) << kind;
    EXPECT_FALSE(protocol->name().empty());
  }
}

TEST(Registry, UnknownKindThrows) {
  ProtocolSpec spec;
  spec.kind = "nope";
  EXPECT_THROW(make_protocol(spec), std::invalid_argument);
}

TEST(Registry, NeighborhoodKindsRequireGraph) {
  ProtocolSpec spec;
  spec.kind = "nbr-uniform";
  EXPECT_THROW(make_protocol(spec), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
