#include "opt/partitions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace qoslb {
namespace {

TEST(Partitions, CountsMatchPartitionFunction) {
  // p(n) for unrestricted parts: 1,1,2,3,5,7,11,15,22,30,42.
  const int expected[] = {1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42};
  for (int n = 0; n <= 10; ++n) {
    const std::size_t count =
        for_each_partition(n, n, [](const std::vector<int>&) {});
    EXPECT_EQ(count, static_cast<std::size_t>(expected[n])) << "n=" << n;
  }
}

TEST(Partitions, RestrictedPartsCount) {
  // Partitions of 6 into at most 2 parts: 6, 5+1, 4+2, 3+3 -> 4.
  EXPECT_EQ(for_each_partition(6, 2, [](const std::vector<int>&) {}), 4u);
}

TEST(Partitions, PartsAreNonIncreasingAndSumCorrectly) {
  for_each_partition(9, 4, [](const std::vector<int>& parts) {
    EXPECT_LE(parts.size(), 4u);
    EXPECT_TRUE(std::is_sorted(parts.rbegin(), parts.rend()));
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0), 9);
    for (const int p : parts) EXPECT_GE(p, 1);
  });
}

TEST(Partitions, NoDuplicates) {
  std::set<std::vector<int>> seen;
  for_each_partition(8, 8, [&seen](const std::vector<int>& parts) {
    EXPECT_TRUE(seen.insert(parts).second);
  });
}

TEST(Partitions, ZeroTotalHasOneEmptyPartition) {
  int visits = 0;
  const std::size_t count = for_each_partition(0, 3, [&](const std::vector<int>& p) {
    ++visits;
    EXPECT_TRUE(p.empty());
  });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(visits, 1);
}

TEST(Partitions, ImpossibleWhenTooFewParts) {
  // 5 into at most 1 part: only {5} -> 1; 5 into 0 parts -> 0.
  EXPECT_EQ(for_each_partition(5, 1, [](const std::vector<int>&) {}), 1u);
  EXPECT_EQ(for_each_partition(5, 0, [](const std::vector<int>&) {}), 0u);
}

TEST(Compositions, CountIsStarsAndBars) {
  // Compositions of n into k non-negative parts: C(n+k-1, k-1).
  // n=4, k=3 -> C(6,2) = 15.
  EXPECT_EQ(for_each_composition(4, 3, [](const std::vector<int>&) {}), 15u);
}

TEST(Compositions, PartsSumAndAreOrdered) {
  std::set<std::vector<int>> seen;
  for_each_composition(3, 2, [&seen](const std::vector<int>& parts) {
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0] + parts[1], 3);
    seen.insert(parts);
  });
  // Ordered: (0,3) and (3,0) both present.
  EXPECT_EQ(seen.count({0, 3}), 1u);
  EXPECT_EQ(seen.count({3, 0}), 1u);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Compositions, ZeroParts) {
  EXPECT_EQ(for_each_composition(0, 0, [](const std::vector<int>&) {}), 1u);
  EXPECT_EQ(for_each_composition(2, 0, [](const std::vector<int>&) {}), 0u);
}

}  // namespace
}  // namespace qoslb
