#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 from the canonical splitmix64.c.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng(), 6457827717110365317ULL);
  EXPECT_EQ(rng(), 3203168211198807973ULL);
  EXPECT_EQ(rng(), 9817491932198370423ULL);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t va = a();
  EXPECT_EQ(va, b());
  EXPECT_NE(va, c());
}

TEST(Mix64, AvalanchesDistinctInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 1000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(DeriveSeed, ChildStreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(7, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, DependsOnRoot) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, JumpChangesState) {
  Xoshiro256 a(5);
  Xoshiro256 b = a;
  b.jump();
  EXPECT_FALSE(a == b);
  // Jumped stream does not collide with the base stream early on.
  std::set<std::uint64_t> base;
  for (int i = 0; i < 1000; ++i) base.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(base.count(b()), 0u);
}

TEST(Xoshiro256, SplitStreamsAreIndependentlyDeterministic) {
  Xoshiro256 root(77);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s2 = root.split(2);
  Xoshiro256 s1_again = root.split(1);
  EXPECT_TRUE(s1 == s1_again);
  EXPECT_FALSE(s1 == s2);
}

TEST(Xoshiro256, OutputLooksUniformInHighBit) {
  Xoshiro256 rng(2024);
  int ones = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i)
    if (rng() >> 63) ++ones;
  EXPECT_NEAR(ones, kDraws / 2, 300);  // ±6 sigma
}

TEST(Philox, BlockIsDeterministic) {
  const Philox4x32::counter_type c{1, 2, 3, 4};
  const Philox4x32::key_type k{5, 6};
  EXPECT_EQ(Philox4x32::block(c, k), Philox4x32::block(c, k));
}

TEST(Philox, CounterChangesOutput) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Philox4x32::at(9, i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Philox, KeyChangesOutput) {
  EXPECT_NE(Philox4x32::at(1, 0), Philox4x32::at(2, 0));
}

TEST(PhiloxEngine, RandomAccessMatchesSequential) {
  PhiloxEngine seq(123);
  std::vector<std::uint64_t> first(10);
  for (auto& v : first) v = seq();

  PhiloxEngine seek(123);
  seek.seek(5);
  EXPECT_EQ(seek(), first[5]);
  EXPECT_EQ(seek.position(), 6u);
}

TEST(PhiloxEngine, StreamsDoNotInterfere) {
  PhiloxEngine a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

}  // namespace
}  // namespace qoslb
