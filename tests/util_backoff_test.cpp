#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(ExponentialBackoff, GrowsGeometricallyThenCaps) {
  ExponentialBackoff backoff{/*base=*/2.0, /*factor=*/2.0, /*cap=*/10.0,
                             /*max_retries=*/5, /*jitter_frac=*/0.0};
  EXPECT_DOUBLE_EQ(backoff.delay(0), 2.0);
  EXPECT_DOUBLE_EQ(backoff.delay(1), 4.0);
  EXPECT_DOUBLE_EQ(backoff.delay(2), 8.0);
  EXPECT_DOUBLE_EQ(backoff.delay(3), 10.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.delay(4), 10.0);
}

TEST(ExponentialBackoff, HugeAttemptStaysAtCap) {
  ExponentialBackoff backoff;
  EXPECT_DOUBLE_EQ(backoff.delay(100000u), backoff.cap);  // no overflow
}

TEST(ExponentialBackoff, FactorOneIsConstant) {
  ExponentialBackoff backoff{/*base=*/3.0, /*factor=*/1.0, /*cap=*/9.0,
                             /*max_retries=*/3, /*jitter_frac=*/0.0};
  EXPECT_DOUBLE_EQ(backoff.delay(0), 3.0);
  EXPECT_DOUBLE_EQ(backoff.delay(7), 3.0);
}

TEST(ExponentialBackoff, ExhaustedAfterMaxRetries) {
  ExponentialBackoff backoff;
  backoff.max_retries = 3;
  EXPECT_FALSE(backoff.exhausted(0));
  EXPECT_FALSE(backoff.exhausted(2));
  EXPECT_TRUE(backoff.exhausted(3));
  EXPECT_TRUE(backoff.exhausted(4));
}

TEST(ExponentialBackoff, JitterStretchesWithinBounds) {
  ExponentialBackoff backoff{/*base=*/4.0, /*factor=*/2.0, /*cap=*/64.0,
                             /*max_retries=*/5, /*jitter_frac=*/0.5};
  Xoshiro256 rng(7);
  for (unsigned attempt = 0; attempt < 4; ++attempt) {
    const double plain = backoff.delay(attempt);
    for (int i = 0; i < 50; ++i) {
      const double jittered = backoff.jittered(rng, attempt);
      EXPECT_GE(jittered, plain);
      EXPECT_LT(jittered, plain * 1.5);
    }
  }
}

TEST(ExponentialBackoff, JitterDeterministicPerSeed) {
  ExponentialBackoff backoff;
  Xoshiro256 a(5), b(5);
  for (unsigned k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(backoff.jittered(a, k), backoff.jittered(b, k));
}

TEST(ExponentialBackoff, ZeroJitterIsExact) {
  ExponentialBackoff backoff;
  backoff.jitter_frac = 0.0;
  Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(backoff.jittered(rng, 2), backoff.delay(2));
}

TEST(ExponentialBackoff, RejectsBadParameters) {
  ExponentialBackoff backoff;
  backoff.base = 0.0;
  EXPECT_THROW(backoff.delay(0), std::invalid_argument);
  backoff = ExponentialBackoff{};
  backoff.factor = 0.5;
  EXPECT_THROW(backoff.delay(1), std::invalid_argument);
  backoff = ExponentialBackoff{};
  backoff.cap = backoff.base / 2.0;
  EXPECT_THROW(backoff.delay(0), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
