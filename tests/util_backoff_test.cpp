#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(ExponentialBackoff, GrowsGeometricallyThenCaps) {
  ExponentialBackoff backoff{/*base=*/2.0, /*factor=*/2.0, /*cap=*/10.0,
                             /*max_retries=*/5, /*jitter_frac=*/0.0};
  EXPECT_DOUBLE_EQ(backoff.delay(0), 2.0);
  EXPECT_DOUBLE_EQ(backoff.delay(1), 4.0);
  EXPECT_DOUBLE_EQ(backoff.delay(2), 8.0);
  EXPECT_DOUBLE_EQ(backoff.delay(3), 10.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.delay(4), 10.0);
}

TEST(ExponentialBackoff, HugeAttemptStaysAtCap) {
  ExponentialBackoff backoff;
  EXPECT_DOUBLE_EQ(backoff.delay(100000u), backoff.cap);  // no overflow
}

TEST(ExponentialBackoff, FactorOneIsConstant) {
  ExponentialBackoff backoff{/*base=*/3.0, /*factor=*/1.0, /*cap=*/9.0,
                             /*max_retries=*/3, /*jitter_frac=*/0.0};
  EXPECT_DOUBLE_EQ(backoff.delay(0), 3.0);
  EXPECT_DOUBLE_EQ(backoff.delay(7), 3.0);
}

TEST(ExponentialBackoff, ExhaustedAfterMaxRetries) {
  ExponentialBackoff backoff;
  backoff.max_retries = 3;
  EXPECT_FALSE(backoff.exhausted(0));
  EXPECT_FALSE(backoff.exhausted(2));
  EXPECT_TRUE(backoff.exhausted(3));
  EXPECT_TRUE(backoff.exhausted(4));
}

TEST(ExponentialBackoff, JitterStretchesWithinBounds) {
  ExponentialBackoff backoff{/*base=*/4.0, /*factor=*/2.0, /*cap=*/64.0,
                             /*max_retries=*/5, /*jitter_frac=*/0.5};
  Xoshiro256 rng(7);
  for (unsigned attempt = 0; attempt < 4; ++attempt) {
    const double plain = backoff.delay(attempt);
    for (int i = 0; i < 50; ++i) {
      const double jittered = backoff.jittered(rng, attempt);
      EXPECT_GE(jittered, plain);
      EXPECT_LT(jittered, plain * 1.5);
    }
  }
}

TEST(ExponentialBackoff, JitterDeterministicPerSeed) {
  ExponentialBackoff backoff;
  Xoshiro256 a(5), b(5);
  for (unsigned k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(backoff.jittered(a, k), backoff.jittered(b, k));
}

TEST(ExponentialBackoff, ZeroJitterIsExact) {
  ExponentialBackoff backoff;
  backoff.jitter_frac = 0.0;
  Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(backoff.jittered(rng, 2), backoff.delay(2));
}

TEST(ExponentialBackoff, CapEqualToBaseSaturatesImmediately) {
  ExponentialBackoff backoff{/*base=*/5.0, /*factor=*/3.0, /*cap=*/5.0,
                             /*max_retries=*/4, /*jitter_frac=*/0.0};
  EXPECT_DOUBLE_EQ(backoff.delay(0), 5.0);
  EXPECT_DOUBLE_EQ(backoff.delay(1), 5.0);
  EXPECT_DOUBLE_EQ(backoff.delay(9), 5.0);
}

TEST(ExponentialBackoff, ScheduleIsMonotoneNonDecreasing) {
  ExponentialBackoff backoff{/*base=*/1.5, /*factor=*/1.7, /*cap=*/40.0,
                             /*max_retries=*/16, /*jitter_frac=*/0.0};
  double previous = 0.0;
  for (unsigned attempt = 0; attempt < 16; ++attempt) {
    const double d = backoff.delay(attempt);
    EXPECT_GE(d, previous) << "attempt=" << attempt;
    EXPECT_LE(d, backoff.cap) << "attempt=" << attempt;
    previous = d;
  }
}

TEST(ExponentialBackoff, JitterAtTheCapStaysWithinTheStretchedBound) {
  // Jitter multiplies the capped delay, so the hard ceiling of the schedule
  // is cap * (1 + jitter_frac), not cap.
  ExponentialBackoff backoff{/*base=*/2.0, /*factor=*/2.0, /*cap=*/16.0,
                             /*max_retries=*/8, /*jitter_frac=*/0.25};
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const double jittered = backoff.jittered(rng, /*attempt=*/20);
    EXPECT_GE(jittered, 16.0);
    EXPECT_LT(jittered, 16.0 * 1.25);
  }
}

TEST(ExponentialBackoff, ZeroMaxRetriesIsExhaustedFromTheStart) {
  ExponentialBackoff backoff;
  backoff.max_retries = 0;
  EXPECT_TRUE(backoff.exhausted(0));
}

TEST(ExponentialBackoff, NegativeJitterFractionBehavesAsNoJitter) {
  ExponentialBackoff backoff;
  backoff.jitter_frac = -0.5;  // defensive: treated as "no stretch"
  Xoshiro256 rng(3);
  EXPECT_DOUBLE_EQ(backoff.jittered(rng, 1), backoff.delay(1));
}

TEST(ExponentialBackoff, RejectsBadParameters) {
  ExponentialBackoff backoff;
  backoff.base = 0.0;
  EXPECT_THROW(backoff.delay(0), std::invalid_argument);
  backoff = ExponentialBackoff{};
  backoff.factor = 0.5;
  EXPECT_THROW(backoff.delay(1), std::invalid_argument);
  backoff = ExponentialBackoff{};
  backoff.cap = backoff.base / 2.0;
  EXPECT_THROW(backoff.delay(0), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
