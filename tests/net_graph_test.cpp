#include "net/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace qoslb {
namespace {

TEST(Graph, TriangleBasics) {
  const Edge edges[] = {{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsAreSorted) {
  const Edge edges[] = {{0, 3}, {0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  auto out = g.edges();
  std::sort(out.begin(), out.end());
  std::vector<Edge> expected = edges;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST(Graph, IsolatedVerticesAllowed) {
  const Edge edges[] = {{0, 1}};
  const Graph g = Graph::from_edges(5, edges);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, RejectsSelfLoops) {
  const Edge edges[] = {{1, 1}};
  EXPECT_THROW(Graph::from_edges(3, edges), std::invalid_argument);
}

TEST(Graph, RejectsParallelEdges) {
  const Edge edges[] = {{0, 1}, {1, 0}};
  EXPECT_THROW(Graph::from_edges(2, edges), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  const Edge edges[] = {{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, edges), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeQueries) {
  const Graph g = Graph::from_edges(2, {});
  EXPECT_THROW(g.neighbors(2), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
