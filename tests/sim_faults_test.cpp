#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/des.hpp"

namespace qoslb {
namespace {

/// Records every delivery (time, type, src) it sees.
class RecorderAgent : public DesAgent {
 public:
  struct Delivery {
    double time;
    MsgType type;
    AgentId src;
    bool operator==(const Delivery&) const = default;
  };
  void on_message(const Message& msg, DesEngine& engine) override {
    deliveries.push_back({engine.now(), msg.type, msg.src});
  }
  std::vector<Delivery> deliveries;
};

Message probe_to(AgentId dst, AgentId src = 0) {
  Message m;
  m.type = MsgType::kProbe;
  m.src = src;
  m.dst = dst;
  return m;
}

// ---- FaultPlan ----

TEST(FaultPlan, InertByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
}

TEST(FaultPlan, AnyDetectsEveryChannel) {
  EXPECT_TRUE(FaultPlan{}.drop_all(0.1).any());
  EXPECT_TRUE(FaultPlan{}.dup_all(0.1).any());
  EXPECT_TRUE(FaultPlan{}.heavy_tail(0.1).any());
  EXPECT_TRUE(FaultPlan{}.crash(0, 1.0, 2.0).any());
}

TEST(FaultPlan, TimersAreNeverNetworkFaulted) {
  FaultPlan plan;
  plan.drop_all(0.5).dup_all(0.5);
  EXPECT_EQ(plan.drop[static_cast<std::size_t>(MsgType::kTimer)], 0.0);
  EXPECT_EQ(plan.dup[static_cast<std::size_t>(MsgType::kTimer)], 0.0);
  EXPECT_EQ(plan.drop[static_cast<std::size_t>(MsgType::kRecover)], 0.0);
}

TEST(FaultPlan, RejectsBadParameters) {
  EXPECT_THROW(FaultPlan{}.drop_all(1.0), std::invalid_argument);
  EXPECT_THROW(FaultPlan{}.drop_all(-0.1), std::invalid_argument);
  EXPECT_THROW(FaultPlan{}.crash(0, 5.0, 5.0), std::invalid_argument);
  FaultPlan bad;
  bad.drop[0] = 1.5;
  EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
}

TEST(FaultPlan, ValidateCatchesDirectFieldAssignment) {
  // The chainers validate eagerly; validate() catches plans whose fields
  // were poked directly (config files, tests) before the injector runs.
  FaultPlan plan;
  plan.dup[1] = 1.2;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.heavy_tail_prob = -0.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.heavy_tail_scale = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.heavy_tail_cap = -1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.crashes.push_back(CrashWindow{0, 4.0, 2.0});  // t_recover <= t_crash
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.crashes.push_back(CrashWindow{0, -1.0, 2.0});  // negative start
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsOverlappingCrashWindowsForTheSameAgent) {
  FaultPlan plan;
  plan.crash(3, 1.0, 5.0);
  plan.crash(3, 4.0, 8.0);  // overlaps [1,5) on agent 3
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
  try {
    plan.validate();
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("overlapping"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("agent 3"), std::string::npos);
  }
}

TEST(FaultPlan, AllowsTouchingAndDistinctAgentWindows) {
  // Back-to-back windows ([1,5) then [5,9)) are disjoint under the
  // half-open convention, and different agents never conflict.
  FaultPlan plan;
  plan.crash(2, 1.0, 5.0);
  plan.crash(2, 5.0, 9.0);
  plan.crash(7, 2.0, 6.0);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_NO_THROW(FaultInjector(plan, 1));
}

// ---- injection through the engine ----

TEST(FaultInjector, DropsAreCountedAndConserved) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  FaultInjector injector(FaultPlan{}.drop_all(0.5), /*seed=*/42);
  engine.set_fault_injector(&injector);
  const int sent = 400;
  for (int i = 0; i < sent; ++i) engine.send(probe_to(id));
  engine.run();
  EXPECT_GT(injector.stats().dropped, 0u);
  EXPECT_LT(injector.stats().dropped, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(recorder.deliveries.size() + injector.stats().dropped,
            static_cast<std::size_t>(sent));
}

TEST(FaultInjector, DuplicatesDeliverTwice) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  FaultInjector injector(FaultPlan{}.dup_all(1.0), /*seed=*/7);
  engine.set_fault_injector(&injector);
  for (int i = 0; i < 10; ++i) engine.send(probe_to(id));
  engine.run();
  EXPECT_EQ(recorder.deliveries.size(), 20u);
  EXPECT_EQ(injector.stats().duplicated, 10u);
}

TEST(FaultInjector, TimersPassThroughUnfaulted) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  FaultInjector injector(FaultPlan{}.drop_all(0.999).dup_all(1.0), /*seed=*/3);
  engine.set_fault_injector(&injector);
  for (int i = 0; i < 50; ++i) engine.schedule_timer(id, 1.0 + i);
  engine.run();
  EXPECT_EQ(recorder.deliveries.size(), 50u);  // no drop, no dup
  EXPECT_EQ(injector.stats().dropped, 0u);
}

TEST(FaultInjector, HeavyTailAddsAtLeastScale) {
  DesEngine engine(1, /*jitter=*/0.0);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  FaultPlan plan;
  plan.heavy_tail(1.0, /*scale=*/5.0, /*alpha=*/1.5);
  plan.heavy_tail_cap = 50.0;
  FaultInjector injector(plan, /*seed=*/9);
  engine.set_fault_injector(&injector);
  for (int i = 0; i < 30; ++i) engine.send(probe_to(id), 1.0);
  engine.run();
  ASSERT_EQ(recorder.deliveries.size(), 30u);
  for (const auto& d : recorder.deliveries) {
    EXPECT_GE(d.time, 6.0);         // base delay + Pareto scale
    EXPECT_LE(d.time, 1.0 + 50.0);  // capped
  }
  EXPECT_EQ(injector.stats().delayed, 30u);
}

TEST(FaultInjector, CrashWindowSwallowsInboxHalfOpen) {
  DesEngine engine(1, /*jitter=*/0.0);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  FaultInjector injector(FaultPlan{}.crash(id, 4.0, 10.0), /*seed=*/5);
  engine.set_fault_injector(&injector);
  engine.send(probe_to(id, 1), 2.0);   // before the window: delivered
  engine.send(probe_to(id, 2), 5.0);   // inside: swallowed
  engine.send(probe_to(id, 3), 9.99);  // still inside: swallowed
  engine.send(probe_to(id, 4), 12.0);  // after recovery: delivered
  engine.run();
  // kRecover notice at t=10 plus the two surviving probes.
  ASSERT_EQ(recorder.deliveries.size(), 3u);
  EXPECT_EQ(recorder.deliveries[0].src, 1u);
  EXPECT_EQ(recorder.deliveries[1].type, MsgType::kRecover);
  EXPECT_DOUBLE_EQ(recorder.deliveries[1].time, 10.0);
  EXPECT_EQ(recorder.deliveries[2].src, 4u);
  EXPECT_EQ(injector.stats().crash_dropped, 2u);
}

TEST(FaultInjector, DeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    DesEngine engine(1, /*jitter=*/0.3);
    RecorderAgent recorder;
    const AgentId id = engine.add_agent(&recorder);
    FaultPlan plan;
    plan.drop_all(0.3).dup_all(0.2).heavy_tail(0.2);
    FaultInjector injector(plan, seed);
    engine.set_fault_injector(&injector);
    for (int i = 0; i < 100; ++i) engine.send(probe_to(id));
    engine.run();
    return recorder.deliveries;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST(FaultInjector, NoInjectorMeansNoBehaviorChange) {
  // The hook must be invisible when not attached: same schedule and RNG
  // stream as an engine built before the fault layer existed.
  auto run_once = [](bool attach_then_detach) {
    DesEngine engine(3, /*jitter=*/0.5);
    RecorderAgent recorder;
    const AgentId id = engine.add_agent(&recorder);
    FaultInjector injector(FaultPlan{}.drop_all(0.9), /*seed=*/1);
    if (attach_then_detach) {
      engine.set_fault_injector(&injector);
      engine.set_fault_injector(nullptr);
    }
    for (int i = 0; i < 20; ++i) engine.send(probe_to(id));
    engine.run();
    return recorder.deliveries;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(FaultInjector, AttachAfterRunRejected) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  engine.send(probe_to(id));
  engine.run();
  FaultInjector injector(FaultPlan{}.drop_all(0.1), 1);
  EXPECT_THROW(engine.set_fault_injector(&injector), std::invalid_argument);
}

TEST(FaultStats, Accumulate) {
  FaultStats a, b;
  a.dropped = 1;
  a.delayed = 2;
  b.dropped = 3;
  b.duplicated = 4;
  b.crash_dropped = 5;
  a += b;
  EXPECT_EQ(a.dropped, 4u);
  EXPECT_EQ(a.duplicated, 4u);
  EXPECT_EQ(a.delayed, 2u);
  EXPECT_EQ(a.crash_dropped, 5u);
  EXPECT_EQ(a.total(), 15u);
}

}  // namespace
}  // namespace qoslb
